//! A tour of the RAM–CPU-cache compression layer (§2.1, Figures 2 and 3).
//!
//! ```text
//! cargo run --release --example compression_tour
//! ```
//!
//! Walks through: the paper's Figure 2 example (digits of π under PFOR with
//! 3-bit codes), the naive-vs-patched decoding difference, PFOR-DELTA on a
//! sorted posting list, PDICT on skewed data, and the serialized block
//! format with its backward-growing exception section.

use monetdb_x100::compress::{
    Codec, CompressedBlock, NaiveBlock, PdictBlock, PforBlock, PforDeltaBlock,
};

fn main() {
    // --- Figure 2: the digits of pi under PFOR b=3, base=0 ---------------
    let pi = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2];
    let block = PforBlock::encode(&pi, 3, 0);
    println!("Figure 2 — PFOR(b=3) over the digits of pi: {pi:?}");
    println!(
        "  exceptions (digits needing >3 bits): {:?} at first position {}",
        block.exceptions(),
        block.first_exception()
    );
    println!("  decoded: {:?}", block.decode());
    assert_eq!(block.decode(), pi);

    // --- naive vs patched -------------------------------------------------
    // 30% exceptions: hard on the naive decoder's branch predictor.
    let data: Vec<u32> = (0..100_000u32)
        .map(|i| {
            let h = i.wrapping_mul(2654435761);
            if h % 10 < 3 {
                1_000_000 + h % 999
            } else {
                h % 200
            }
        })
        .collect();
    let naive = NaiveBlock::encode(&data, 8, 0);
    let patched = PforBlock::encode(&data, 8, 0);
    assert_eq!(naive.decode(), patched.decode());
    println!(
        "\nNAIVE vs PATCHED on {} values at {:.0}% exceptions:",
        data.len(),
        naive.exception_rate() * 100.0
    );
    println!(
        "  modelled branch miss rate of the naive if-then-else loop: {:.1}%",
        naive.modelled_branch_miss_rate() * 100.0
    );
    println!("  the patched decoder has no data-dependent branch at all");

    // --- PFOR-DELTA on a sorted docid list --------------------------------
    let docids: Vec<u32> = (0..50_000u32)
        .scan(0u32, |acc, i| {
            *acc += 1 + (i % 9);
            Some(*acc)
        })
        .collect();
    let delta = PforDeltaBlock::encode_with_width(&docids, 8);
    println!(
        "\nPFOR-DELTA over a {}-entry posting list: {:.2} bits/value ({}x vs raw 32)",
        docids.len(),
        delta.bits_per_value(),
        (32.0 / delta.bits_per_value()).round()
    );
    assert_eq!(delta.decode(), docids);

    // --- PDICT on skewed values -------------------------------------------
    let skewed: Vec<u32> = (0..50_000u32)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B9);
            [7u32, 7, 7, 7, 42, 42, 9000, h % 100_000][h as usize % 8]
        })
        .collect();
    let dict = PdictBlock::encode(&skewed, 8);
    println!(
        "PDICT over skewed data: {:.2} bits/value, {:.1}% exceptions",
        dict.bits_per_value(),
        dict.exception_rate() * 100.0
    );
    assert_eq!(dict.decode(), skewed);

    // --- the serialized block format ---------------------------------------
    let serialized = CompressedBlock::encode(&docids, Codec::PforDelta { width: 8 });
    let bytes = serialized.to_bytes();
    let back = CompressedBlock::from_bytes(&bytes).expect("valid block");
    assert_eq!(back, serialized);
    println!(
        "\nserialized block: {} bytes for {} values (header + entry points + \
         forward code section + backward exception section, as in Figure 2)",
        bytes.len(),
        docids.len()
    );

    // Corruption is detected, not propagated.
    let mut corrupt = bytes.to_vec();
    corrupt[0] ^= 0xFF;
    println!(
        "  corrupting the magic number -> {:?}",
        CompressedBlock::from_bytes(&corrupt).unwrap_err()
    );
}
