//! Quickstart: generate a collection, build an index, search it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the 30-second path through the public API: a synthetic
//! collection stands in for a crawled corpus, the inverted index is built
//! as the paper's TD/D/T relational tables, and a BM25 top-10 query runs
//! through the vectorized X100 pipeline. The printed relational plan is the
//! same shape as §3.2 of the paper.

use monetdb_x100::corpus::{CollectionConfig, SyntheticCollection};
use monetdb_x100::ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

fn main() {
    // 1. A small synthetic collection (deterministic from its seed).
    let collection = SyntheticCollection::generate(&CollectionConfig::small());
    println!(
        "collection: {} documents, {} term occurrences, avg doc len {:.1}",
        collection.docs.len(),
        collection.total_occurrences(),
        collection.avg_doc_len()
    );

    // 2. The inverted index as relational tables (compressed columns).
    let index = InvertedIndex::build(&collection, &IndexConfig::compressed());
    println!(
        "index: {} postings; docid column {:.2} bits/tuple, tf column {:.2} bits/tuple",
        index.num_postings(),
        index.column_bits_per_tuple("docid"),
        index.column_bits_per_tuple("tf"),
    );

    // 3. A keyword query through the vectorized engine.
    let engine = QueryEngine::new(&index);
    let terms = ["term12", "term31"];
    println!("\nquery: {terms:?}");
    println!("\nrelational plan (as in the paper, §3.2):");
    println!("{}", engine.plan_text(&terms, SearchStrategy::Bm25, 10));

    let results = engine.search_terms(&terms, SearchStrategy::Bm25, 10);
    println!("\ntop {} documents:", results.len());
    for (rank, hit) in results.iter().enumerate() {
        println!(
            "  {:>2}. {}  score={:.4}  (docid {})",
            rank + 1,
            hit.name,
            hit.score,
            hit.docid
        );
    }
}
