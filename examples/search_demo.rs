//! The paper's §4 "basic search" demonstration, terminal edition.
//!
//! ```text
//! cargo run --release --example search_demo            # canned queries
//! cargo run --release --example search_demo -- term8 term22   # your query
//! ```
//!
//! "Provides the user with a google-like search interface to enter keyword
//! queries and browse the ranked result documents ... alongside with the
//! query results, we display the relational query plan that was executed,
//! annotated with profiling information." This example does exactly that:
//! for each query it prints the plan, the ranked results, and the profiling
//! counters (CPU time, simulated I/O, passes) for a selectable strategy.

use monetdb_x100::corpus::{CollectionConfig, SyntheticCollection};
use monetdb_x100::ir::{boolean, IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

fn run_query(engine: &QueryEngine<'_>, terms: &[&str], strategy: SearchStrategy) {
    println!("\n=== query {terms:?} under {strategy:?} ===");
    println!("plan:\n{}", engine.plan_text(terms, strategy, 10));

    let ids: Vec<u32> = terms
        .iter()
        .filter_map(|t| engine.index().term_id(t))
        .collect();
    match engine.search(&ids, strategy, 10) {
        Ok(resp) => {
            println!(
                "profiling: cpu {:.3} ms, simulated I/O {:.3} ms over {} block reads, {} pass(es)",
                resp.cpu_time.as_secs_f64() * 1e3,
                resp.io.sim_time.as_secs_f64() * 1e3,
                resp.io.reads,
                resp.passes
            );
            if resp.results.is_empty() {
                println!("no documents matched");
            }
            for (rank, hit) in resp.results.iter().enumerate() {
                println!("  {:>2}. {}  score={:.4}", rank + 1, hit.name, hit.score);
            }
        }
        Err(e) => println!("query failed: {e}"),
    }
}

fn main() {
    let collection = SyntheticCollection::generate(&CollectionConfig::small());
    let index = InvertedIndex::build(&collection, &IndexConfig::compressed());
    let engine = QueryEngine::new(&index);

    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        // Canned tour: the same query under different strategies, like the
        // demo's strategy selector.
        let q = ["term8", "term22"];
        for strategy in [
            SearchStrategy::BoolAnd,
            SearchStrategy::BoolOr,
            SearchStrategy::Bm25,
            SearchStrategy::Bm25TwoPass,
        ] {
            run_query(&engine, &q, strategy);
        }
        // The paper's own nested example, §3.2 — AND/OR map to
        // Join/OuterJoin.
        let nested = boolean::parse("term8 AND (term22 OR term31)").expect("valid query");
        println!("\n=== nested boolean: {nested} ===");
        println!("plan:\n{}", nested.plan_text());
        let resp = engine.search_boolean(&nested, 10).expect("search");
        println!("{} matching documents (unranked):", resp.results.len());
        for hit in &resp.results {
            println!("  {}", hit.name);
        }
        return;
    }
    let joined = args.join(" ");
    if joined.to_ascii_uppercase().contains("AND")
        || joined.to_ascii_uppercase().contains("OR")
        || joined.contains('(')
    {
        match boolean::parse(&joined) {
            Ok(q) => {
                println!("plan:\n{}", q.plan_text());
                match engine.search_boolean(&q, 10) {
                    Ok(resp) => {
                        for hit in &resp.results {
                            println!("  {}", hit.name);
                        }
                    }
                    Err(e) => println!("query failed: {e}"),
                }
            }
            Err(e) => println!("parse error: {e}"),
        }
    } else {
        let terms: Vec<&str> = args.iter().map(String::as_str).collect();
        run_query(&engine, &terms, SearchStrategy::Bm25TwoPass);
    }
}
