//! A miniature TREC-TeraByte efficiency run — the Table 2 ladder end to end.
//!
//! ```text
//! cargo run --release --example trec_terabyte
//! ```
//!
//! Builds the four index variants, runs all seven retrieval configurations
//! of the paper's Table 2 over the judged queries, and prints precision and
//! hot-data timings. (The full-scale harness with cold-run I/O accounting is
//! `cargo run --release -p x100-bench --bin table2_trec_runs`.)

use std::time::Instant;

use monetdb_x100::corpus::{precision_at_k, CollectionConfig, SyntheticCollection};
use monetdb_x100::ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

fn main() {
    let collection = SyntheticCollection::generate(&CollectionConfig::small());
    println!(
        "collection: {} docs, {} judged queries, {} efficiency queries",
        collection.docs.len(),
        collection.eval_queries.len(),
        collection.efficiency_log.len()
    );

    let raw = InvertedIndex::build(&collection, &IndexConfig::uncompressed());
    let compressed = InvertedIndex::build(&collection, &IndexConfig::compressed());
    let mat = InvertedIndex::build(&collection, &IndexConfig::materialized_f32());
    let mat_q8 = InvertedIndex::build(&collection, &IndexConfig::materialized_q8());

    let runs: Vec<(&str, &InvertedIndex, SearchStrategy)> = vec![
        ("BoolAND", &raw, SearchStrategy::BoolAnd),
        ("BoolOR", &raw, SearchStrategy::BoolOr),
        ("BM25", &raw, SearchStrategy::Bm25),
        ("BM25T", &raw, SearchStrategy::Bm25TwoPass),
        ("BM25TC", &compressed, SearchStrategy::Bm25TwoPass),
        ("BM25TCM", &mat, SearchStrategy::Bm25MaterializedTwoPass),
        (
            "BM25TCMQ8",
            &mat_q8,
            SearchStrategy::Bm25MaterializedTwoPass,
        ),
    ];

    println!("\n{:<10} {:>8} {:>12}", "run", "p@20", "hot ms/query");
    for (name, index, strategy) in runs {
        let engine = QueryEngine::new(index);

        let mut p20 = 0.0;
        for q in &collection.eval_queries {
            let ranked: Vec<u32> = engine
                .search(&q.terms, strategy, 20)
                .expect("search")
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            p20 += precision_at_k(&ranked, &q.relevant, 20);
        }
        p20 /= collection.eval_queries.len() as f64;

        // Warm, then time the efficiency stream.
        let queries = &collection.efficiency_log;
        for q in queries.iter().take(20) {
            let _ = engine.search(q, strategy, 20);
        }
        let start = Instant::now();
        for q in queries {
            let _ = engine.search(q, strategy, 20);
        }
        let avg_ms = start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

        println!("{name:<10} {p20:>8.4} {avg_ms:>12.3}");
    }

    println!(
        "\nThe shape to look for (paper's Table 2): boolean runs have near-zero \
         precision; every BM25 variant lands on the same plateau; two-pass and \
         materialization cut the hot time."
    );
}
