//! Distributed retrieval (§3.4): partition, broadcast, merge — and the
//! latency/throughput behaviour of Table 3.
//!
//! ```text
//! cargo run --release --example distributed_search
//! ```

use monetdb_x100::corpus::{CollectionConfig, SyntheticCollection};
use monetdb_x100::distributed::{simulate_run, RunConfig, SimulatedCluster};
use monetdb_x100::ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

fn main() {
    let collection = SyntheticCollection::generate(&CollectionConfig::small());
    let cluster = SimulatedCluster::build(&collection, 8, &IndexConfig::compressed());
    println!(
        "cluster: {} nodes over {} documents",
        cluster.num_nodes(),
        collection.docs.len()
    );

    // Correctness: the merged distributed result vs the single-node result.
    let q = &collection.eval_queries[0];
    let merged = cluster.search(&q.terms, SearchStrategy::Bm25, 10);
    println!("\ndistributed top-10 for query {:?}:", q.terms);
    for (rank, hit) in merged.iter().enumerate() {
        println!(
            "  {:>2}. {}  score={:.4}  (from node {})",
            rank + 1,
            hit.name,
            hit.score,
            hit.node
        );
    }

    let index = InvertedIndex::build(&collection, &IndexConfig::compressed());
    let engine = QueryEngine::new(&index);
    let single = engine
        .search(&q.terms, SearchStrategy::Bm25, 10)
        .expect("search");
    let overlap = merged
        .iter()
        .filter(|m| single.results.iter().any(|s| s.docid == m.docid))
        .count();
    println!(
        "\noverlap with the single-node top-10: {overlap}/10 \
         (per-node statistics are 1/n-scaled, so small divergence is expected)"
    );

    // Timing: measure real per-partition compute, then replay through the
    // network/queueing model at different cluster shapes.
    let queries: Vec<Vec<u32>> = collection
        .efficiency_log
        .iter()
        .take(100)
        .cloned()
        .collect();
    let compute = cluster
        .measure_compute(&queries, SearchStrategy::Bm25, 20)
        .expect("healthy cluster: no node should fail during measurement");

    println!("\nserver scaling (1 stream):           streams at 8 servers:");
    println!("  servers  latency  srv max/min         streams  latency  amortized");
    for (&servers, &streams) in [8usize, 4, 2, 1].iter().zip([1usize, 2, 4, 8].iter()) {
        let by_servers = simulate_run(&compute, &RunConfig::servers(servers));
        let by_streams = simulate_run(&compute, &RunConfig::streams(8, streams));
        println!(
            "  {:>7}  {:>6.2}ms  {:>10.2}x         {:>7}  {:>6.2}ms  {:>7.2}ms",
            servers,
            by_servers.avg_latency.as_secs_f64() * 1e3,
            by_servers.server_max.as_secs_f64() / by_servers.server_min.as_secs_f64(),
            streams,
            by_streams.avg_latency.as_secs_f64() * 1e3,
            by_streams.amortized.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\nTable 3's two lessons: the slowest of N servers gates latency \
         (max/min grows with N), while concurrent streams keep servers busy \
         so amortized per-query time — throughput — keeps improving."
    );
}
