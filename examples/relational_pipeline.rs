//! Hand-building a vectorized X100 pipeline (Figure 1, §2).
//!
//! ```text
//! cargo run --release --example relational_pipeline
//! ```
//!
//! The IR layer normally plans queries for you; this example drops one
//! level down and assembles operators by hand — the same open/next/close
//! pipeline the paper's Figure 1 draws, including a selection (with
//! selection vectors, no copying), a projection over vectorized primitives,
//! a merge join of two sorted lists, an aggregation, and a TopN.

use monetdb_x100::exec::prelude::*;
use monetdb_x100::vector::{Batch, ValueType, Vector};

/// A sorted (docid, tf) posting list as an in-memory operator.
fn postings(rows: &[(i32, i32)]) -> Box<dyn Operator> {
    let docid: Vec<i32> = rows.iter().map(|&(d, _)| d).collect();
    let tf: Vec<i32> = rows.iter().map(|&(_, t)| t).collect();
    Box::new(MemSource::new(
        vec![Batch::new(vec![
            Vector::from_i32(&docid),
            Vector::from_i32(&tf),
        ])],
        vec![ValueType::I32, ValueType::I32],
    ))
}

fn main() {
    // Posting lists for two terms.
    let information = postings(&[(1, 3), (4, 1), (7, 2), (9, 5), (12, 1)]);
    let retrieval = postings(&[(2, 1), (4, 2), (9, 1), (12, 4), (15, 2)]);

    // "information AND retrieval" = MergeJoin on docid.
    let joined = MergeJoin::new(information, retrieval, 0, 0, 1024).expect("plan");
    // Columns now: [docid, tf1, docid, tf2].

    // Score = tf1 + 2*tf2 (a toy weighting), computed with vectorized map
    // primitives; keep docid alongside.
    let scored = Project::new(
        Box::new(joined),
        vec![
            Expr::col_i32(0),
            Expr::add(
                Expr::cast_f32(Expr::col_i32(1)),
                Expr::mul(Expr::const_f32(2.0), Expr::cast_f32(Expr::col_i32(3))),
            ),
        ],
    );

    // Keep docs scoring >= 5, without copying survivors (selection vectors).
    let selected = Select::new(Box::new(scored), Predicate::ge_f32(1, 5.0));

    // Top-2 by score.
    let top = TopN::new(Box::new(selected), 1, 2, 1024).expect("plan");
    let batches = collect_batches(top).expect("run");

    println!("TopN(Select(Project(MergeJoin(info, retrieval)))):");
    for b in &batches {
        for r in 0..b.num_rows() {
            println!(
                "  docid {}  score {}",
                b.column(0).as_i32()[r],
                b.column(1).as_f32()[r]
            );
        }
    }

    // An aggregation pipeline over the same inputs: total tf per docid
    // parity (Figure 1's Aggregate node shape).
    let information = postings(&[(1, 3), (4, 1), (7, 2), (9, 5), (12, 1)]);
    let keyed = Project::new(
        information,
        vec![
            // group key: docid % 2 via docid - 2*(docid/2) is unavailable
            // (no integer division) — use gather-free parity by multiply:
            // here we simply group by tf instead to keep the example small.
            Expr::col_i32(1),
            Expr::col_i32(0),
        ],
    );
    let agg = HashAggregate::new(
        Box::new(keyed),
        0,
        vec![AggFunc::CountStar, AggFunc::SumI32(1)],
        1024,
    )
    .expect("plan");
    let batches = collect_batches(agg).expect("run");
    println!("\nAggregate(count, sum(docid)) grouped by tf:");
    for b in &batches {
        for r in 0..b.num_rows() {
            println!(
                "  tf {}  count {}  sum(docid) {}",
                b.column(0).as_i32()[r],
                b.column(1).as_i64()[r],
                b.column(2).as_i64()[r]
            );
        }
    }
}
