//! # monetdb-x100
//!
//! Facade crate for the reproduction of *"Efficient and Flexible Information
//! Retrieval Using MonetDB/X100"* (Héman, Zukowski, de Vries, Boncz — CIDR
//! 2007). It re-exports the public API of every subsystem crate so that
//! examples, integration tests and downstream users can depend on a single
//! crate.
//!
//! The subsystems, bottom-up:
//!
//! * [`vector`] — execution vectors, selection vectors, batches (§2).
//! * [`compress`] — PFOR / PFOR-DELTA / PDICT with patched decompression
//!   (§2.1, Figures 2 and 3).
//! * [`storage`] — ColumnBM column store with a simulated-disk I/O model.
//! * [`exec`] — the vectorized open/next/close operator pipeline.
//! * [`ir`] — inverted index as relational tables, BM25, the Table 2
//!   optimization ladder (§3).
//! * [`corpus`] — synthetic TREC-TeraByte-like workload and evaluation.
//! * [`distributed`] — document-partitioned cluster simulation (§3.4,
//!   Table 3).
//!
//! # Quickstart
//!
//! ```
//! use monetdb_x100::corpus::{CollectionConfig, SyntheticCollection};
//! use monetdb_x100::ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};
//!
//! // Generate a small synthetic collection and index it.
//! let collection = SyntheticCollection::generate(&CollectionConfig::tiny());
//! let index = InvertedIndex::build(&collection, &IndexConfig::default());
//! let engine = QueryEngine::new(&index);
//!
//! // Run a BM25 top-20 query.
//! let results = engine.search_terms(&["term3", "term17"], SearchStrategy::Bm25, 20);
//! assert!(results.len() <= 20);
//! ```

pub use x100_compress as compress;
pub use x100_corpus as corpus;
pub use x100_distributed as distributed;
pub use x100_exec as exec;
pub use x100_ir as ir;
pub use x100_storage as storage;
pub use x100_vector as vector;
