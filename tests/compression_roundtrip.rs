//! Adversarial round-trip tests for the three light-weight codecs of §2.1,
//! cross-checked against the naive reference coder.
//!
//! Every codec must reconstruct its input exactly — including on the inputs
//! that stress the patch machinery hardest: empty vectors, single values,
//! all-identical runs, and vectors where *every* value is an exception.
//! Where the patched and naive coders encode the same (width, base) choice,
//! their decodes must agree element-for-element, and serialization must
//! round-trip byte-exactly.

use monetdb_x100::compress::pfor::choose_base;
use monetdb_x100::compress::{
    Codec, CompressedBlock, NaiveBlock, PdictBlock, PforBlock, PforDeltaBlock, ENTRY_POINT_STRIDE,
};

/// Adversarial inputs: the boundary shapes most likely to break a patched
/// decoder or its exception-chain bookkeeping.
fn adversarial_inputs() -> Vec<(&'static str, Vec<u32>)> {
    let stride = ENTRY_POINT_STRIDE as u32;
    vec![
        ("empty", vec![]),
        ("single_zero", vec![0]),
        ("single_max", vec![u32::MAX]),
        ("single_codeable", vec![42]),
        ("two_exceptions", vec![u32::MAX, u32::MAX - 1]),
        ("all_identical", vec![7; 1000]),
        // Every value far above any 8-bit window: 100% exception rate.
        (
            "all_exceptions",
            (0..1000).map(|i| 1_000_000 + i * 17).collect(),
        ),
        // Alternating codeable/exception stresses the patch linked list.
        (
            "alternating",
            (0..1000)
                .map(|i| if i % 2 == 0 { i % 200 } else { u32::MAX - i })
                .collect(),
        ),
        // Exactly one entry-point stride, and one element either side.
        ("stride_exact", (0..stride).collect()),
        ("stride_minus_one", (0..stride - 1).map(|v| v * 3).collect()),
        (
            "stride_plus_one",
            (0..stride + 1).map(|v| u32::MAX - v).collect(),
        ),
        // Sorted docid-like input with huge final jump (delta exception).
        (
            "sorted_with_jump",
            (0..500)
                .map(|i| i * 2)
                .chain([u32::MAX - 3, u32::MAX])
                .collect(),
        ),
        // Low-cardinality skewed data, PDICT's home turf, plus one outlier.
        (
            "skewed_plus_outlier",
            (0..999)
                .map(|i| [3u32, 9, 27][i as usize % 3])
                .chain([u32::MAX])
                .collect(),
        ),
    ]
}

/// Widths that matter: minimum, a mid width, and wide-enough-for-anything.
const WIDTHS: [u8; 5] = [1, 4, 8, 16, 24];

#[test]
fn pfor_roundtrips_and_matches_naive_on_adversarial_inputs() {
    for (name, values) in adversarial_inputs() {
        for b in WIDTHS {
            let patched = PforBlock::encode_with_width(&values, b);
            assert_eq!(patched.decode(), values, "PFOR {name} width {b}");

            // Same (width, base) choice ⇒ the two decoders must agree even
            // though formats and algorithms differ (the Figure 3 claim).
            let base = choose_base(&values, b);
            let naive = NaiveBlock::encode(&values, b, base);
            assert_eq!(naive.decode(), values, "naive reference {name} width {b}");
            assert_eq!(
                patched.decode(),
                naive.decode(),
                "patched vs naive disagree on {name} width {b}"
            );
        }
    }
}

#[test]
fn pfor_delta_roundtrips_on_adversarial_inputs() {
    for (name, values) in adversarial_inputs() {
        for b in WIDTHS {
            let block = PforDeltaBlock::encode_with_width(&values, b);
            assert_eq!(block.decode(), values, "PFOR-DELTA {name} width {b}");
        }
        let auto = PforDeltaBlock::encode_auto(&values);
        assert_eq!(auto.decode(), values, "PFOR-DELTA auto {name}");
    }
}

#[test]
fn pdict_roundtrips_on_adversarial_inputs() {
    for (name, values) in adversarial_inputs() {
        for b in [1u8, 4, 8, 12] {
            let block = PdictBlock::encode(&values, b);
            assert_eq!(block.decode(), values, "PDICT {name} width {b}");
        }
    }
}

#[test]
fn auto_width_selection_roundtrips_max_exception_rate() {
    // encode_auto must cope even when no width can avoid exceptions.
    let worst: Vec<u32> = (0..2048).map(|i| u32::MAX - i * 31).collect();
    assert_eq!(PforBlock::encode_auto(&worst).decode(), worst);
    let block = PforBlock::encode_with_width(&worst, 1);
    assert!(
        block.exception_rate() > 0.99,
        "width 1 on wild data should except almost everywhere, got {}",
        block.exception_rate()
    );
    assert_eq!(block.decode(), worst);
}

#[test]
fn serialization_roundtrips_byte_exactly_on_adversarial_inputs() {
    for (name, values) in adversarial_inputs() {
        for codec in [
            Codec::Raw,
            Codec::Pfor { width: 8 },
            Codec::PforDelta { width: 8 },
            Codec::Pdict { width: 8 },
        ] {
            let block = CompressedBlock::encode(&values, codec);
            let bytes = block.to_bytes();
            let back = CompressedBlock::from_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{name} {codec:?} failed to deserialize: {e:?}"));
            assert_eq!(back, block, "{name} {codec:?} block not equal after serde");
            // Re-serializing the deserialized block is byte-identical.
            assert_eq!(&*back.to_bytes(), &*bytes, "{name} {codec:?} bytes drift");
            let mut decoded = Vec::new();
            back.decode_into(&mut decoded);
            assert_eq!(decoded, values, "{name} {codec:?} values drift");
        }
    }
}
