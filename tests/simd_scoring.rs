//! SIMD scoring pin: the wide (AVX2) BM25 batch kernels on the fused hot
//! path must be **bit-identical** to the unrolled scalar kernels.
//!
//! The kernels keep multiply and add separate (no FMA contraction) and use
//! only IEEE-exact vector operations (`cvtepi32_ps`, `div_ps`, `mul_ps`,
//! `add_ps`), so this is exact `f32::to_bits` equality, not tolerance
//! comparison. The process-wide [`simd_force_scalar`] toggle switches the
//! dispatch; every test here serializes on one lock since the toggle is
//! global. Without `--features simd` (or off x86_64/AVX2) both runs take
//! the scalar path and the suite degenerates to a self-consistency pin —
//! still valid, so it runs in both CI legs.

use std::sync::{Arc, Mutex, OnceLock};

use x100_compress::{simd_active, simd_available, simd_force_scalar};
use x100_corpus::{CollectionConfig, SyntheticCollection};
use x100_ir::{IndexConfig, InvertedIndex, QueryExecutor, SearchStrategy};

/// The force-scalar switch is process-wide and tests run on parallel
/// threads: every test that toggles it holds this lock.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// Ranked strategies drive the scoring kernels: computed BM25 (tf →
/// score arithmetic) and materialized (f32-bits / quantized decode-sum).
const RANKED: [SearchStrategy; 4] = [
    SearchStrategy::Bm25,
    SearchStrategy::Bm25TwoPass,
    SearchStrategy::Bm25Materialized,
    SearchStrategy::Bm25MaterializedTwoPass,
];

struct Fixture {
    queries: Vec<Vec<u32>>,
    /// f32 materialization exercises the bit-cast decode kernel, q8 the
    /// int-convert one; both run the computed kernel for Bm25/TwoPass.
    indexes: [Arc<InvertedIndex>; 2],
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let mut queries: Vec<Vec<u32>> = c.eval_queries.iter().map(|q| q.terms.clone()).collect();
        queries.extend(c.efficiency_log.iter().take(15).cloned());
        let f32_idx = Arc::new(InvertedIndex::build(&c, &IndexConfig::materialized_f32()));
        let q8_idx = Arc::new(InvertedIndex::build(&c, &IndexConfig::materialized_q8()));
        Fixture {
            queries,
            indexes: [f32_idx, q8_idx],
        }
    })
}

fn hits_bits(
    exec: &QueryExecutor,
    q: &[u32],
    strategy: SearchStrategy,
    n: usize,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    exec.search_hits_into(q, strategy, n, &mut out)
        .expect("search failed");
    out.iter().map(|&(d, s)| (d, s.to_bits())).collect()
}

#[test]
fn wide_scoring_matches_forced_scalar_bit_for_bit() {
    let _g = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let fx = fixture();
    for index in &fx.indexes {
        let exec = QueryExecutor::new(index.clone());
        for &strategy in &RANKED {
            for q in &fx.queries {
                // Varying n exercises full batches, ragged scalar tails
                // inside the wide kernel, and heap-boundary behaviour.
                for n in [1usize, 7, 10, 64] {
                    simd_force_scalar(false);
                    let wide = hits_bits(&exec, q, strategy, n);
                    simd_force_scalar(true);
                    let scalar = hits_bits(&exec, q, strategy, n);
                    simd_force_scalar(false);
                    assert_eq!(
                        wide, scalar,
                        "wide vs scalar scoring diverged: {strategy:?} n={n} terms={q:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn forced_fallback_really_switches_the_dispatch() {
    let _g = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd_force_scalar(true);
    assert!(
        !simd_active(),
        "force-scalar must always win over detection"
    );
    simd_force_scalar(false);
    assert_eq!(
        simd_active(),
        simd_available(),
        "without the override, dispatch follows runtime detection"
    );
}
