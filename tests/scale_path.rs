//! Integration tests for the `--scale` path: streamed generation feeding
//! streamed index construction and the streamed cluster build, end to end.
//!
//! The fast tests pin the streaming/batch equivalence at `tiny`/`small`;
//! the `medium`-scale roundtrip (100 k documents, ~16 M postings) is gated
//! behind `--ignored` so the default test loop stays quick:
//!
//! ```sh
//! cargo test --release -q medium_scale -- --ignored
//! ```

use monetdb_x100::corpus::{CollectionStream, Scale, SyntheticCollection};
use monetdb_x100::distributed::SimulatedCluster;
use monetdb_x100::ir::{
    build_index_streaming, IndexConfig, InvertedIndex, QueryEngine, SearchStrategy,
};

#[test]
fn scale_ladder_parses_and_orders() {
    assert_eq!("medium".parse::<Scale>().unwrap(), Scale::Medium);
    let docs: Vec<usize> = Scale::ALL.iter().map(|s| s.config().num_docs).collect();
    assert!(docs.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn streamed_pipeline_matches_batch_at_small_scale() {
    let cfg = Scale::Small.config();
    let collection = SyntheticCollection::generate(&cfg);
    let batch = InvertedIndex::build(&collection, &IndexConfig::compressed());

    let stream = CollectionStream::new(&cfg);
    let (streamed, tail) = build_index_streaming(
        stream,
        &IndexConfig::compressed(),
        Scale::Small.chunk_size(),
    );

    assert_eq!(streamed.num_postings(), batch.num_postings());
    assert_eq!(tail.efficiency_log, collection.efficiency_log);

    // Identical top-20 rankings on both indexes.
    let (be, se) = (QueryEngine::new(&batch), QueryEngine::new(&streamed));
    for q in collection.eval_queries.iter().take(5) {
        let b: Vec<u32> = be
            .search(&q.terms, SearchStrategy::Bm25TwoPass, 20)
            .unwrap()
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let s: Vec<u32> = se
            .search(&q.terms, SearchStrategy::Bm25TwoPass, 20)
            .unwrap()
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        assert_eq!(b, s);
    }
}

/// The acceptance roundtrip: `medium` scale end-to-end — streamed generate
/// → streamed index → query → streamed cluster build → distributed merge —
/// with the merged results checked against the single-node engine.
///
/// Ignored by default (takes tens of seconds in release mode); the CI
/// weekly smoke job and `cargo test --release -- --ignored` run it.
#[test]
#[ignore = "medium scale: run explicitly with --ignored (release mode recommended)"]
fn medium_scale_roundtrip_end_to_end() {
    let scale = Scale::Medium;
    let cfg = scale.config();

    // Generate + index in one streamed pass.
    let stream = CollectionStream::new(&cfg);
    let (index, tail) =
        build_index_streaming(stream, &IndexConfig::compressed(), scale.chunk_size());
    assert_eq!(index.stats().num_docs as usize, cfg.num_docs);
    assert!(index.num_postings() > cfg.num_docs); // many postings per doc
    assert_eq!(tail.efficiency_log.len(), cfg.num_efficiency_queries);

    // Compression did its job on the hot columns (§3.3 accounting).
    assert!(index.column_bits_per_tuple("docid") < 16.0);
    assert!(index.column_bits_per_tuple("tf") < 10.0);

    // Query: the judged set must rank planted-relevant docs highly.
    let engine = QueryEngine::new(&index);
    let mut p20 = 0.0;
    for q in &tail.eval_queries {
        let ranked: Vec<u32> = engine
            .search(&q.terms, SearchStrategy::Bm25TwoPass, 20)
            .unwrap()
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        p20 += monetdb_x100::corpus::precision_at_k(&ranked, &q.relevant, 20);
    }
    p20 /= tail.eval_queries.len() as f64;
    assert!(p20 > 0.5, "medium-scale p@20 {p20} too low");

    // Distributed: a second streamed pass builds the cluster; the merged
    // top-20 must strongly overlap the single-node ranking.
    let stream = CollectionStream::new(&cfg);
    let (cluster, _) = SimulatedCluster::build_streaming(
        stream,
        8,
        &IndexConfig::compressed(),
        scale.chunk_size(),
    );
    assert_eq!(cluster.num_nodes(), 8);
    let mut overlap = 0usize;
    let mut total = 0usize;
    for q in tail.eval_queries.iter().take(10) {
        let single: Vec<u32> = engine
            .search(&q.terms, SearchStrategy::Bm25TwoPass, 20)
            .unwrap()
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let merged = cluster.search(&q.terms, SearchStrategy::Bm25TwoPass, 20);
        overlap += single
            .iter()
            .filter(|d| merged.iter().any(|m| m.docid == **d))
            .count();
        total += single.len();
    }
    assert!(
        overlap * 100 >= total * 70,
        "merged/single overlap {overlap}/{total}"
    );
}
