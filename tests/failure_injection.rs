//! Failure-injection integration tests: corrupt blocks, degenerate queries,
//! and misuse must fail loudly and cleanly — never silently return wrong
//! results and never panic across a public API boundary.

use monetdb_x100::compress::{Codec, CodecError, CompressedBlock};
use monetdb_x100::corpus::{CollectionConfig, SyntheticCollection};
use monetdb_x100::exec::prelude::*;
use monetdb_x100::ir::{
    IndexConfig, InvertedIndex, QueryEngine, SearchStrategy, SpillConfig, SpillError,
    SpillingIndexBuilder,
};
use monetdb_x100::storage::{BufferManager, BufferMode, Column, DiskModel, StorageError, Table};

fn tiny_index() -> (SyntheticCollection, InvertedIndex) {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
    (c, idx)
}

#[test]
fn corrupted_serialized_blocks_error_at_every_byte() {
    let values: Vec<u32> = (0..5000u32).map(|i| i * 3 % 1000).collect();
    for codec in [
        Codec::Raw,
        Codec::Pfor { width: 8 },
        Codec::PforDelta { width: 8 },
        Codec::Pdict { width: 8 },
    ] {
        let bytes = CompressedBlock::encode(&values, codec).to_bytes();
        // Bit-flip each of the first 64 bytes (headers and entry points):
        // the result must either decode to the original or error — never
        // panic, never return different values "successfully" in a way
        // that passes validation silently. (Payload flips may legitimately
        // decode to different values; header flips must be caught.)
        for i in 0..bytes.len().min(64) {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x01;
            // Clean rejection is fine; accepted blocks must still be
            // internally consistent: decoding must not panic.
            if let Ok(block) = CompressedBlock::from_bytes(&corrupt) {
                let mut out = Vec::new();
                block.decode_into(&mut out);
                assert_eq!(out.len(), block.len());
            }
        }
        // Truncations must all be clean errors.
        for cut in 0..bytes.len().min(128) {
            assert!(
                CompressedBlock::from_bytes(&bytes[..cut]).is_err(),
                "{codec:?} truncated at {cut} must fail"
            );
        }
    }
}

#[test]
fn bad_magic_and_bad_codec_are_specific_errors() {
    let bytes = CompressedBlock::encode(&[1, 2, 3], Codec::Raw).to_bytes();
    let mut bad_magic = bytes.to_vec();
    bad_magic[3] ^= 0xFF;
    assert!(matches!(
        CompressedBlock::from_bytes(&bad_magic),
        Err(CodecError::BadMagic(_))
    ));
    let mut bad_codec = bytes.to_vec();
    bad_codec[4] = 200;
    assert!(matches!(
        CompressedBlock::from_bytes(&bad_codec),
        Err(CodecError::UnknownCodec(200))
    ));
}

#[test]
fn unknown_query_terms_yield_empty_not_error() {
    let (_, idx) = tiny_index();
    let engine = QueryEngine::new(&idx);
    for strategy in [
        SearchStrategy::BoolAnd,
        SearchStrategy::BoolOr,
        SearchStrategy::Bm25,
        SearchStrategy::Bm25TwoPass,
    ] {
        let resp = engine.search(&[9_999_999], strategy, 10).expect("search");
        assert!(resp.results.is_empty(), "{strategy:?}");
    }
}

#[test]
fn empty_query_yields_empty() {
    let (_, idx) = tiny_index();
    let engine = QueryEngine::new(&idx);
    let resp = engine
        .search(&[], SearchStrategy::Bm25, 10)
        .expect("search");
    assert!(resp.results.is_empty());
}

#[test]
fn mixed_known_unknown_terms_use_the_known_ones() {
    let (c, idx) = tiny_index();
    let engine = QueryEngine::new(&idx);
    let known = c.eval_queries[0].terms[0];
    let with_junk = engine
        .search(&[known, 8_888_888], SearchStrategy::Bm25, 10)
        .expect("search");
    let clean = engine
        .search(&[known], SearchStrategy::Bm25, 10)
        .expect("search");
    assert_eq!(with_junk.results, clean.results);
}

#[test]
fn materialized_strategy_without_column_is_a_plan_error() {
    let (_, idx) = tiny_index(); // compressed, not materialized
    let engine = QueryEngine::new(&idx);
    let err = engine
        .search(&[1], SearchStrategy::Bm25Materialized, 10)
        .unwrap_err();
    assert!(err.to_string().contains("materialized"));
}

#[test]
fn unknown_columns_and_ranges_error_cleanly() {
    let mut table = Table::new("t");
    table.add_column(Column::from_values("a", Codec::Raw, &[1, 2, 3]));
    let bm = BufferManager::with_mode(DiskModel::instant(), BufferMode::Hot, 0);
    assert!(matches!(
        table.column("nope"),
        Err(StorageError::UnknownColumn(_))
    ));
    assert!(TableScan::new(&table, &bm, &["nope"], 16).is_err());
    assert!(TableScan::with_range(&table, &bm, &["a"], 0..99, 16).is_err());
}

#[test]
fn zero_length_documents_are_tolerated() {
    // A collection where some documents end up minimal: the index build and
    // all strategies must survive.
    let mut cfg = CollectionConfig::tiny();
    cfg.avg_doc_len = 8; // the generator's floor
    let c = SyntheticCollection::generate(&cfg);
    let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
    let engine = QueryEngine::new(&idx);
    for q in &c.eval_queries {
        let resp = engine
            .search(&q.terms, SearchStrategy::Bm25, 5)
            .expect("search");
        assert!(resp.results.len() <= 5);
    }
}

/// A spilling builder over the tiny collection with a budget small enough
/// to leave several run files on disk, ready to be corrupted.
fn spilled_builder(c: &SyntheticCollection) -> SpillingIndexBuilder {
    let mut b = SpillingIndexBuilder::new(
        c.vocab.len(),
        &IndexConfig::compressed(),
        SpillConfig::with_budget(8 * 1024),
    );
    b.push_docs(&c.docs).unwrap();
    assert!(b.num_runs() >= 2, "fixture must spill multiple runs");
    b
}

#[test]
fn truncated_run_files_error_through_finish() {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let full_len = {
        let b = spilled_builder(&c);
        std::fs::metadata(&b.run_paths()[0]).unwrap().len() as usize
    };
    // Cut the first run at several depths: mid-header, mid-record, one
    // byte short. Every cut must surface as Err from finish() — no panic,
    // no silently dropped postings.
    for cut in [0, 7, 19, full_len / 3, full_len - 1] {
        let b = spilled_builder(&c);
        let victim = &b.run_paths()[0];
        let bytes = std::fs::read(victim).unwrap();
        std::fs::write(victim, &bytes[..cut.min(bytes.len())]).unwrap();
        let err = b.finish(&c.vocab).unwrap_err();
        assert!(matches!(err, SpillError::Run(_)), "cut={cut}: {err}");
    }
}

#[test]
fn bit_flipped_run_files_error_through_finish() {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let full_len = {
        let b = spilled_builder(&c);
        std::fs::metadata(&b.run_paths()[0]).unwrap().len() as usize
    };
    // Flip a single bit at positions spanning the header (magic, version,
    // flags, counts), record headers, posting payload and checksum bytes.
    let positions = [0, 4, 6, 8, 12, 21, 25, 30, full_len / 2, full_len - 1];
    for &pos in &positions {
        let b = spilled_builder(&c);
        let victim = &b.run_paths()[1];
        let mut bytes = std::fs::read(victim).unwrap();
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= 0x01;
        std::fs::write(victim, &bytes).unwrap();
        let err = b.finish(&c.vocab).unwrap_err();
        assert!(matches!(err, SpillError::Run(_)), "flip at {pos}: {err}");
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn deleted_run_file_errors_through_finish() {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let b = spilled_builder(&c);
    std::fs::remove_file(&b.run_paths()[0]).unwrap();
    assert!(matches!(
        b.finish(&c.vocab),
        Err(SpillError::Run(monetdb_x100::storage::RunFileError::Io(_)))
    ));
}

#[test]
fn run_file_posting_swap_is_detected() {
    // Swapping two whole posting words keeps lengths and totals intact —
    // only the record checksum can catch it. It must.
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let b = spilled_builder(&c);
    let victim = &b.run_paths()[0];
    let mut bytes = std::fs::read(victim).unwrap();
    // Header is 20 bytes; first record starts at 20 with term(4)+count(4),
    // so postings start at byte 28. Swap the first two 8-byte words.
    let (a, z) = (28usize, 36usize);
    for i in 0..8 {
        bytes.swap(a + i, z + i);
    }
    std::fs::write(victim, &bytes).unwrap();
    let err = b.finish(&c.vocab).unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");
}

#[test]
fn topn_zero_and_huge_n_are_fine() {
    let (c, idx) = tiny_index();
    let engine = QueryEngine::new(&idx);
    let terms = &c.eval_queries[0].terms;
    let zero = engine.search(terms, SearchStrategy::Bm25, 0).expect("zero");
    assert!(zero.results.is_empty());
    let huge = engine
        .search(terms, SearchStrategy::Bm25, 10_000_000)
        .expect("huge");
    assert!(huge.results.len() <= c.docs.len());
}
