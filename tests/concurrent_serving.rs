//! Concurrency differential suite: concurrent query execution over one
//! shared index and one shared (lock-striped) buffer pool must be
//! *observably sequential* — bit-identical hits for every query under
//! every [`SearchStrategy`], and the same accumulated I/O totals, no
//! matter how many threads interleave.
//!
//! This is the serving-path counterpart of `spill_vs_memory.rs`: there the
//! invariant is "spilling never changes the index"; here it is
//! "concurrency never changes the answer".

use std::sync::Arc;

use x100_corpus::{CollectionConfig, QueryLogGenerator, SyntheticCollection};
use x100_distributed::{run_closed_loop, ServeConfig, SimulatedCluster};
use x100_ir::{IndexConfig, InvertedIndex, QueryExecutor, SearchResult, SearchStrategy};
use x100_storage::{BufferManager, BufferMode, DiskModel, IoStats};

/// Every strategy of the Table 2 ladder.
const ALL_STRATEGIES: [SearchStrategy; 6] = [
    SearchStrategy::BoolAnd,
    SearchStrategy::BoolOr,
    SearchStrategy::Bm25,
    SearchStrategy::Bm25TwoPass,
    SearchStrategy::Bm25Materialized,
    SearchStrategy::Bm25MaterializedTwoPass,
];

const TOP_N: usize = 15;

fn fixture() -> (Vec<Vec<u32>>, Arc<InvertedIndex>) {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    // A materialized-Q8 compressed index runs all six strategies.
    let index = Arc::new(InvertedIndex::build(&c, &IndexConfig::materialized_q8()));
    let mut queries: Vec<Vec<u32>> = c.eval_queries.iter().map(|q| q.terms.clone()).collect();
    queries.extend(c.efficiency_log.iter().take(10).cloned());
    (queries, index)
}

/// A fresh hot pool: misses are charged exactly once per distinct block,
/// so total I/O is a set property of the workload — identical for any
/// execution order, which is what makes the stats differential exact.
fn hot_executor(index: &Arc<InvertedIndex>) -> QueryExecutor {
    QueryExecutor::with_buffer_manager(
        index.clone(),
        Arc::new(BufferManager::with_mode(
            DiskModel::raid12(),
            BufferMode::Hot,
            0,
        )),
    )
}

/// Runs every (query, strategy) job sequentially on a fresh pool.
fn sequential_reference(
    queries: &[Vec<u32>],
    index: &Arc<InvertedIndex>,
) -> (Vec<Vec<SearchResult>>, IoStats) {
    let exec = hot_executor(index);
    let mut results = Vec::new();
    for strategy in ALL_STRATEGIES {
        for q in queries {
            results.push(exec.search(q, strategy, TOP_N).expect("search").results);
        }
    }
    (results, exec.buffers().stats())
}

#[test]
fn threads_hammering_shared_pool_match_sequential_exactly() {
    let (queries, index) = fixture();
    let (reference, reference_io) = sequential_reference(&queries, &index);

    for num_threads in [2usize, 4, 8] {
        let exec = hot_executor(&index);
        // Job list in the same order as the reference.
        let jobs: Vec<(usize, SearchStrategy, &Vec<u32>)> = ALL_STRATEGIES
            .iter()
            .flat_map(|&s| queries.iter().map(move |q| (s, q)))
            .enumerate()
            .map(|(i, (s, q))| (i, s, q))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..num_threads {
                let exec = exec.clone();
                let jobs = &jobs;
                let reference = &reference;
                scope.spawn(move || {
                    // Round-robin partition: every thread works a strided
                    // slice, so all strategies run concurrently with each
                    // other on the shared pool.
                    for &(i, strategy, q) in jobs.iter().skip(t).step_by(num_threads) {
                        let got = exec.search(q, strategy, TOP_N).expect("search").results;
                        assert_eq!(
                            got, reference[i],
                            "thread {t}/{num_threads} diverged on job {i} ({strategy:?})"
                        );
                    }
                });
            }
        });
        // Hot-pool I/O totals are a set property: same distinct blocks
        // touched => same reads, bytes and simulated time, bit for bit.
        assert_eq!(
            exec.buffers().stats(),
            reference_io,
            "{num_threads}-thread IoStats diverged from sequential"
        );
        exec.buffers().assert_consistent();
    }
}

#[test]
fn worker_pool_differential_over_generated_log() {
    // The same differential through the serving stack itself: generated
    // Zipf log, bounded-queue worker pool, per-strategy comparison.
    let (_, index) = fixture();
    let queries: Vec<Vec<u32>> =
        QueryLogGenerator::new(x100_corpus::QueryLogConfig::tiny(), 500, 7)
            .take(40)
            .collect();
    for strategy in ALL_STRATEGIES {
        let exec = hot_executor(&index);
        let reference: Vec<Vec<(u32, f32)>> = queries
            .iter()
            .map(|q| {
                exec.search(q, strategy, TOP_N)
                    .expect("search")
                    .results
                    .iter()
                    .map(|r| (r.docid, r.score))
                    .collect()
            })
            .collect();
        let concurrent = hot_executor(&index);
        let cfg = ServeConfig {
            workers: 3,
            queue_depth: 4,
            strategy,
            top_n: TOP_N,
            short_query_max_terms: None,
            long_lane_guarantee: 4,
        };
        let report = run_closed_loop(&concurrent, &cfg, &queries);
        assert_eq!(report.completed, queries.len());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.hits, reference[i], "{strategy:?} query {i}");
        }
        assert_eq!(
            concurrent.buffers().stats(),
            exec.buffers().stats(),
            "{strategy:?} pool totals diverged"
        );
    }
}

#[test]
fn scatter_gather_under_concurrent_load_matches_broadcast() {
    // Cluster serving: concurrent workers each scatter-gathering across
    // partitions must reproduce the sequential broadcast exactly.
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let cluster = Arc::new(SimulatedCluster::build(&c, 4, &IndexConfig::compressed()));
    let queries: Vec<Vec<u32>> = c.efficiency_log.iter().take(12).cloned().collect();
    let reference: Vec<Vec<(u32, f32)>> = queries
        .iter()
        .map(|q| {
            cluster
                .search(q, SearchStrategy::Bm25TwoPass, TOP_N)
                .into_iter()
                .map(|r| (r.docid, r.score))
                .collect()
        })
        .collect();
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 2,
        strategy: SearchStrategy::Bm25TwoPass,
        top_n: TOP_N,
        short_query_max_terms: None,
        long_lane_guarantee: 4,
    };
    let report = run_closed_loop(&cluster, &cfg, &queries);
    for (i, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(outcome.hits, reference[i], "query {i}");
    }
}

#[test]
fn concurrent_queries_under_capacity_pressure_stay_correct() {
    // With a pool far smaller than the index, concurrent queries evict each
    // other's blocks constantly. I/O totals are then schedule-dependent —
    // but results must still be bit-identical, and the pool must stay
    // internally consistent and within budget.
    let (queries, index) = fixture();
    // Half the index's compressed bytes: every block individually fits,
    // but the columns together do not — guaranteed eviction churn.
    let capacity = ["docid", "tf", "score"]
        .iter()
        .filter_map(|n| index.td().column(n).ok())
        .flat_map(|c| (0..c.block_count()).map(move |b| c.block(b).compressed_bytes()))
        .sum::<usize>()
        / 2;
    let exec = QueryExecutor::with_buffer_manager(
        index.clone(),
        Arc::new(BufferManager::with_mode(
            DiskModel::raid12(),
            BufferMode::Cold,
            capacity,
        )),
    );
    let reference: Vec<Vec<SearchResult>> = {
        let seq = hot_executor(&index);
        queries
            .iter()
            .map(|q| {
                seq.search(q, SearchStrategy::Bm25, TOP_N)
                    .expect("search")
                    .results
            })
            .collect()
    };
    std::thread::scope(|scope| {
        for t in 0..4 {
            let exec = exec.clone();
            let queries = &queries;
            let reference = &reference;
            scope.spawn(move || {
                for _ in 0..3 {
                    for (i, q) in queries.iter().enumerate() {
                        let got = exec.search(q, SearchStrategy::Bm25, TOP_N).expect("search");
                        assert_eq!(got.results, reference[i], "thread {t} query {i}");
                    }
                }
            });
        }
    });
    exec.buffers().assert_consistent();
    assert!(
        exec.buffers().resident_bytes() <= capacity,
        "pool settled over its budget"
    );
    assert!(exec.buffers().stats().reads > 0);
}
