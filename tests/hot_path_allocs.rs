//! The allocation pin: steady-state query execution on the fused hot path
//! performs **zero heap allocations** per query.
//!
//! This binary installs [`x100_bench::alloc::CountingAlloc`] as its global
//! allocator (per-thread counters over `System`) and wraps warm queries in
//! `assert_no_allocs`. A warmup pass first grows every reusable buffer to
//! its steady-state size — the scratch arena's cursors, batch arrays and
//! heap, the caller's hits vector, the buffer pool's resident set — after
//! which each query must run without touching the allocator at all, for
//! every strategy of the Table 2 ladder, on the single-node executor, on
//! a segment-backed (disk-resident, warm) index, and inside per-node
//! scatter-gather worker threads.
//!
//! The counters are per-thread, so the parallel test harness cannot leak
//! another test's allocations into an assertion here.

use std::sync::Arc;

use x100_bench::alloc::{assert_no_allocs, count_allocs, CountingAlloc};
use x100_corpus::{CollectionConfig, SyntheticCollection};
use x100_distributed::SimulatedCluster;
use x100_ir::{IndexConfig, InvertedIndex, QueryExecutor, SearchStrategy};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Every strategy of the Table 2 ladder plus the block-max pruned modes.
const ALL_STRATEGIES: [SearchStrategy; 8] = [
    SearchStrategy::BoolAnd,
    SearchStrategy::BoolOr,
    SearchStrategy::Bm25,
    SearchStrategy::Bm25TwoPass,
    SearchStrategy::Bm25Materialized,
    SearchStrategy::Bm25MaterializedTwoPass,
    SearchStrategy::Bm25Pruned,
    SearchStrategy::Bm25MaterializedPruned,
];

const TOP_N: usize = 10;

fn fixture() -> (Vec<Vec<u32>>, Arc<InvertedIndex>) {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    // A materialized-Q8 compressed index runs all eight strategies.
    let index = Arc::new(InvertedIndex::build(&c, &IndexConfig::materialized_q8()));
    let mut queries: Vec<Vec<u32>> = c.eval_queries.iter().map(|q| q.terms.clone()).collect();
    queries.extend(c.efficiency_log.iter().take(10).cloned());
    (queries, index)
}

/// Guards the whole suite against a silent no-op: if the counting
/// allocator were not actually installed, every `assert_no_allocs` below
/// would pass vacuously.
#[test]
fn counting_allocator_is_live() {
    let (_, allocs, deallocs) = count_allocs(|| drop(std::hint::black_box(vec![1u8, 2, 3])));
    assert!(
        allocs >= 1 && deallocs >= 1,
        "counting allocator not installed: saw {allocs} allocs / {deallocs} deallocs"
    );
}

fn assert_steady_state_clean(
    label: &str,
    exec: &QueryExecutor,
    queries: &[Vec<u32>],
    strategies: &[SearchStrategy],
) {
    let mut out = Vec::new();
    // Warmup: grows the arena and hits buffer, faults every posting block
    // into the pool, and (under `--features simd`) runs CPU feature
    // detection once.
    for &strategy in strategies {
        for q in queries {
            exec.search_hits_into(q, strategy, TOP_N, &mut out)
                .expect("warmup query failed");
        }
    }
    for &strategy in strategies {
        for (qi, q) in queries.iter().enumerate() {
            let context = format!("{label}: {strategy:?} query {qi}");
            assert_no_allocs(&context, || {
                exec.search_hits_into(q, strategy, TOP_N, &mut out)
                    .expect("warm query failed")
            });
        }
    }
    // The conjunctive skipping path shares the arena's cursors and heap.
    for q in queries {
        exec.search_conjunctive_skipping_hits_into(q, TOP_N, &mut out)
            .expect("warmup skipping query failed");
    }
    for (qi, q) in queries.iter().enumerate() {
        let context = format!("{label}: conjunctive-skipping query {qi}");
        assert_no_allocs(&context, || {
            exec.search_conjunctive_skipping_hits_into(q, TOP_N, &mut out)
                .expect("warm skipping query failed")
        });
    }
}

#[test]
fn executor_steady_state_performs_zero_allocations() {
    let (queries, index) = fixture();
    let exec = QueryExecutor::new(index);
    assert_steady_state_clean("in-memory executor", &exec, &queries, &ALL_STRATEGIES);
}

#[test]
fn segment_backed_executor_is_allocation_free_once_warm() {
    let (queries, index) = fixture();
    let mut path = std::env::temp_dir();
    path.push(format!("x100-hot-path-allocs-{}.seg", std::process::id()));
    index.write_segment(&path).expect("write segment");
    let reopened = Arc::new(InvertedIndex::open_segment(&path).expect("open segment"));
    // Disk-backed blocks are `pread` and decoded on first touch (which
    // allocates); once resident, a block load is a slot hit handing out a
    // shared ref — the warmup inside drives all of that, after which the
    // assertions see the same zero-allocation path as the in-memory index.
    let exec = QueryExecutor::new(reopened);
    assert_steady_state_clean("segment-backed executor", &exec, &queries, &ALL_STRATEGIES);
    std::fs::remove_file(&path).expect("remove segment");
}

#[test]
fn scatter_gather_node_workers_are_allocation_free() {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let cluster = SimulatedCluster::build(&c, 3, &IndexConfig::materialized_q8());
    let queries: Vec<Vec<u32>> = c.eval_queries.iter().map(|q| q.terms.clone()).collect();
    // One thread per node, as in `search_scatter`: each worker thread
    // warms its node (pooling one scratch arena), then asserts its own
    // per-thread counters stay untouched across warm queries. Spawning
    // and the per-node result handling may allocate — only the node-local
    // search itself is pinned.
    std::thread::scope(|s| {
        for (ni, node) in cluster.nodes().iter().enumerate() {
            let queries = &queries;
            s.spawn(move || {
                let mut out = Vec::new();
                for &strategy in &ALL_STRATEGIES {
                    for q in queries {
                        node.search_hits_into(q, strategy, TOP_N, &mut out)
                            .expect("warmup node query failed");
                    }
                }
                for &strategy in &ALL_STRATEGIES {
                    for (qi, q) in queries.iter().enumerate() {
                        let context = format!("node {ni}: {strategy:?} query {qi}");
                        assert_no_allocs(&context, || {
                            node.search_hits_into(q, strategy, TOP_N, &mut out)
                                .expect("warm node query failed")
                        });
                    }
                }
            });
        }
    });
}
