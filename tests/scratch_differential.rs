//! Differential suite: the fused scratch-arena query path versus the
//! relational engine, bit for bit.
//!
//! The relational path (`QueryEngine::search`) allocates a fresh operator
//! tree per query and is kept as the oracle; the fused path
//! (`QueryExecutor::search` / `search_hits_into`) reuses a scratch arena
//! across queries. This suite holds the two against each other — docids,
//! score **bits** (`f32::to_bits`, not approximate equality), pass counts
//! and error outcomes — across every strategy of the Table 2 ladder, over
//! compressed, materialized-f32 and materialized-q8 indexes, in-memory
//! and segment-backed, with randomized queries that include unknown terms
//! and duplicates.
//!
//! Between queries the executor's arena is deliberately **poisoned**
//! (overwritten with seed-derived garbage, including NaNs and stale
//! cursor positions): equality afterwards proves the hot path depends
//! only on state each query re-initializes, never on leftovers — the
//! exact property that makes arena reuse safe.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use x100_corpus::{CollectionConfig, SyntheticCollection};
use x100_ir::{
    IndexConfig, InvertedIndex, QueryEngine, QueryExecutor, QueryScratch, SearchResult,
    SearchStrategy,
};

/// Every strategy of the Table 2 ladder plus the block-max pruned modes.
/// For the pruned strategies the relational oracle runs the *exhaustive*
/// disjunctive plan, so these comparisons are precisely the "pruning must
/// not change one output bit" guarantee.
const ALL_STRATEGIES: [SearchStrategy; 8] = [
    SearchStrategy::BoolAnd,
    SearchStrategy::BoolOr,
    SearchStrategy::Bm25,
    SearchStrategy::Bm25TwoPass,
    SearchStrategy::Bm25Materialized,
    SearchStrategy::Bm25MaterializedTwoPass,
    SearchStrategy::Bm25Pruned,
    SearchStrategy::Bm25MaterializedPruned,
];

struct Fixture {
    queries: Vec<Vec<u32>>,
    /// One index per materialization mode; all eight strategies run on the
    /// materialized ones, the materialized ones error on the plain
    /// compressed one (and must error identically on both paths).
    indexes: Vec<Arc<InvertedIndex>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let mut queries: Vec<Vec<u32>> = c.eval_queries.iter().map(|q| q.terms.clone()).collect();
        queries.extend(c.efficiency_log.iter().take(10).cloned());
        let indexes = [
            IndexConfig::compressed(),
            IndexConfig::materialized_f32(),
            IndexConfig::materialized_q8(),
        ]
        .iter()
        .map(|cfg| Arc::new(InvertedIndex::build(&c, cfg)))
        .collect();
        Fixture { queries, indexes }
    })
}

/// Exact-comparison form of a result list: docid plus the score's bits.
fn bits(results: &[SearchResult]) -> Vec<(u32, u32)> {
    results
        .iter()
        .map(|r| (r.docid, r.score.to_bits()))
        .collect()
}

/// Asserts the fused path (through `exec`, arena poisoned first) agrees
/// with the relational oracle on one query, including error outcomes.
fn check_one(
    exec: &QueryExecutor,
    oracle: &QueryEngine<'_>,
    terms: &[u32],
    strategy: SearchStrategy,
    n: usize,
    poison_seed: u64,
) {
    exec.poison_scratch(poison_seed);
    let fused = exec.search(terms, strategy, n);
    let relational = oracle.search(terms, strategy, n);
    match (fused, relational) {
        (Ok(f), Ok(r)) => {
            assert_eq!(
                bits(&f.results),
                bits(&r.results),
                "fused vs relational diverged: {strategy:?} n={n} terms={terms:?}"
            );
            // Names ride along identically (same docids, same D table).
            assert_eq!(f.results, r.results);
            assert_eq!(f.passes, r.passes, "{strategy:?} n={n} terms={terms:?}");
        }
        (Err(_), Err(_)) => {} // both reject (e.g. materialized strategy, plain index)
        (f, r) => panic!(
            "outcome mismatch for {strategy:?} n={n} terms={terms:?}: \
             fused {:?} vs relational {:?}",
            f.map(|x| x.results.len()),
            r.map(|x| x.results.len()),
        ),
    }
}

#[test]
fn every_strategy_matches_relational_oracle_with_poisoned_arena() {
    let fx = fixture();
    for index in &fx.indexes {
        let exec = QueryExecutor::new(index.clone());
        let oracle = QueryEngine::new(index);
        let mut seed = 0x5EED_0001u64;
        for &strategy in &ALL_STRATEGIES {
            for n in [0usize, 1, 3, 10, 100] {
                for q in &fx.queries {
                    seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                    check_one(&exec, &oracle, q, strategy, n, seed);
                }
            }
        }
    }
}

#[test]
fn segment_backed_fused_path_matches_relational_oracle() {
    let fx = fixture();
    let mut path = std::env::temp_dir();
    path.push(format!("x100-scratch-diff-{}.seg", std::process::id()));
    // The q8 index runs all eight strategies; reopened from its segment the
    // posting blocks (and the block-max metadata the pruned modes skip by)
    // are disk-resident and flow through the buffer pool.
    fx.indexes[2].write_segment(&path).expect("write segment");
    let reopened = Arc::new(InvertedIndex::open_segment(&path).expect("open segment"));
    let exec = QueryExecutor::new(reopened.clone());
    let oracle = QueryEngine::new(&reopened);
    for &strategy in &ALL_STRATEGIES {
        for (qi, q) in fx.queries.iter().enumerate() {
            check_one(&exec, &oracle, q, strategy, 10, 0xD15C_0000 ^ qi as u64);
        }
    }
    std::fs::remove_file(&path).expect("remove segment");
}

#[test]
fn one_scratch_arena_survives_interleaved_strategies_and_poisoning() {
    // A single engine-level arena serving wildly different queries in
    // sequence — strategies, result sizes and term counts interleaved,
    // poison in between — must match per-query fresh execution.
    let fx = fixture();
    let index = &fx.indexes[2];
    let engine = QueryEngine::new(index);
    let mut scratch = QueryScratch::new();
    let mut seed = 7u64;
    for round in 0..3u64 {
        for (qi, q) in fx.queries.iter().enumerate() {
            let strategy = ALL_STRATEGIES[(qi + round as usize) % ALL_STRATEGIES.len()];
            let n = [0usize, 2, 10, 50][qi % 4];
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(round);
            scratch.poison(seed);
            let reused = engine
                .search_with_scratch(q, strategy, n, &mut scratch)
                .unwrap();
            let fresh = engine.search(q, strategy, n).unwrap();
            assert_eq!(bits(&reused.results), bits(&fresh.results));
            assert_eq!(reused.passes, fresh.passes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized queries (unknown terms, duplicates, empty), random n,
    /// random strategy, random poison seed, over every index flavor.
    #[test]
    fn random_queries_agree_bit_for_bit(
        raw_terms in prop::collection::vec(any::<u32>(), 0..6),
        strategy_idx in 0usize..ALL_STRATEGIES.len(),
        n in 0usize..25,
        poison_seed in any::<u64>(),
    ) {
        let fx = fixture();
        let strategy = ALL_STRATEGIES[strategy_idx];
        for index in &fx.indexes {
            // Fold raw ids into a band slightly wider than the vocabulary
            // so most terms exist but unknown ids stay represented.
            let span = index.num_terms() as u32 + 7;
            let terms: Vec<u32> = raw_terms.iter().map(|&t| t % span).collect();
            let exec = QueryExecutor::new(index.clone());
            let oracle = QueryEngine::new(index);
            check_one(&exec, &oracle, &terms, strategy, n, poison_seed);
        }
    }
}
