//! Cross-crate property tests: the vectorized pipeline against straight-line
//! reference implementations.

use proptest::prelude::*;

use monetdb_x100::compress::Codec;
use monetdb_x100::exec::collect_batches;
use monetdb_x100::exec::prelude::*;
use monetdb_x100::storage::{BufferManager, BufferMode, Column, DiskModel, Table};
use monetdb_x100::vector::{Batch, ValueType, Vector};

/// Sorted unique docids with payloads — a posting list.
fn posting_list() -> impl Strategy<Value = Vec<(i32, i32)>> {
    prop::collection::btree_map(0i32..5000, 1i32..100, 0..300).prop_map(|m| m.into_iter().collect())
}

fn postings_op(rows: &[(i32, i32)]) -> Box<dyn Operator> {
    let docid: Vec<i32> = rows.iter().map(|&(d, _)| d).collect();
    let tf: Vec<i32> = rows.iter().map(|&(_, t)| t).collect();
    Box::new(MemSource::new(
        vec![Batch::new(vec![
            Vector::from_i32(&docid),
            Vector::from_i32(&tf),
        ])],
        vec![ValueType::I32, ValueType::I32],
    ))
}

fn rows_of(batches: &[Batch]) -> Vec<Vec<i32>> {
    let mut rows = Vec::new();
    for b in batches {
        for r in 0..b.num_rows() {
            rows.push(
                (0..b.num_columns())
                    .map(|c| b.column(c).as_i32()[r])
                    .collect(),
            );
        }
    }
    rows
}

proptest! {
    /// MergeJoin == sorted set intersection.
    #[test]
    fn merge_join_is_intersection(a in posting_list(), b in posting_list(), vs in 1usize..200) {
        let join = MergeJoin::new(postings_op(&a), postings_op(&b), 0, 0, vs).unwrap();
        let got: Vec<i32> = rows_of(&collect_batches(join).unwrap())
            .into_iter()
            .map(|r| r[0])
            .collect();
        let bset: std::collections::BTreeSet<i32> = b.iter().map(|&(d, _)| d).collect();
        let expect: Vec<i32> = a.iter().map(|&(d, _)| d).filter(|d| bset.contains(d)).collect();
        prop_assert_eq!(got, expect);
    }

    /// MergeOuterJoin == sorted set union, with zero-filled misses.
    #[test]
    fn merge_outer_join_is_union(a in posting_list(), b in posting_list(), vs in 1usize..200) {
        let join = MergeOuterJoin::new(postings_op(&a), postings_op(&b), 0, 0, vs).unwrap();
        let rows = rows_of(&collect_batches(join).unwrap());
        let got: Vec<i32> = rows.iter().map(|r| r[0].max(r[2])).collect();
        let mut expect: Vec<i32> = a
            .iter()
            .map(|&(d, _)| d)
            .chain(b.iter().map(|&(d, _)| d))
            .collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(got, expect);
        // tf columns: 0 exactly when the side is missing.
        let aset: std::collections::BTreeMap<i32, i32> = a.iter().copied().collect();
        for r in &rows {
            let d = r[0].max(r[2]);
            match aset.get(&d) {
                Some(&tf) => prop_assert_eq!(r[1], tf),
                None => prop_assert_eq!(r[1], 0),
            }
        }
    }

    /// TopN == take(n) of the fully sorted input (with the same tie rule).
    #[test]
    fn topn_is_sort_prefix(
        scores in prop::collection::vec(-1000i32..1000, 0..400),
        n in 0usize..50,
        vs in 1usize..100,
    ) {
        let ids: Vec<i32> = (0..scores.len() as i32).collect();
        let src = Box::new(MemSource::new(
            vec![Batch::new(vec![
                Vector::from_i32(&ids),
                Vector::from_i32(&scores),
            ])],
            vec![ValueType::I32, ValueType::I32],
        ));
        let top = TopN::new(src, 1, n, vs).unwrap();
        let got: Vec<(i32, i32)> = rows_of(&collect_batches(top).unwrap())
            .into_iter()
            .map(|r| (r[0], r[1]))
            .collect();
        let mut expect: Vec<(i32, i32)> = ids.iter().copied().zip(scores.iter().copied()).collect();
        // Descending score; ties keep earlier (smaller id first).
        expect.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        expect.truncate(n);
        prop_assert_eq!(got, expect);
    }

    /// A stored, compressed table scanned at any vector size round-trips.
    #[test]
    fn stored_scan_roundtrips(
        values in prop::collection::vec(0u32..1_000_000, 1..3000),
        vs in 1usize..300,
    ) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut table = Table::new("t");
        table.add_column(Column::from_values("docid", Codec::PforDelta { width: 8 }, &sorted));
        let bm = BufferManager::with_mode(DiskModel::instant(), BufferMode::Hot, 0);
        let scan = TableScan::new(&table, &bm, &["docid"], vs).unwrap();
        let got = monetdb_x100::exec::collect_i32_column(scan, 0).unwrap();
        let expect: Vec<i32> = sorted.iter().map(|&v| v as i32).collect();
        prop_assert_eq!(got, expect);
    }

    /// Select + Project through the pipeline == iterator filter + map.
    #[test]
    fn select_project_matches_iterator(
        values in prop::collection::vec(-500i32..500, 0..500),
        threshold in -500i32..500,
        addend in -10i32..10,
    ) {
        let src = Box::new(MemSource::from_batch(Batch::new(vec![Vector::from_i32(&values)])));
        let sel = Select::new(src, Predicate::ge_i32(0, threshold));
        let proj = Project::new(
            Box::new(sel),
            vec![Expr::add(Expr::col_i32(0), Expr::const_i32(addend))],
        );
        let got = monetdb_x100::exec::collect_i32_column(proj, 0).unwrap();
        let expect: Vec<i32> = values
            .iter()
            .filter(|&&v| v >= threshold)
            .map(|&v| v.wrapping_add(addend))
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// HashAggregate sums == BTreeMap reference.
    #[test]
    fn aggregate_matches_reference(
        rows in prop::collection::vec((0i32..20, -100i32..100), 0..500),
    ) {
        let keys: Vec<i32> = rows.iter().map(|&(k, _)| k).collect();
        let vals: Vec<i32> = rows.iter().map(|&(_, v)| v).collect();
        let src = Box::new(MemSource::new(
            vec![Batch::new(vec![
                Vector::from_i32(&keys),
                Vector::from_i32(&vals),
            ])],
            vec![ValueType::I32, ValueType::I32],
        ));
        let agg = HashAggregate::new(src, 0, vec![AggFunc::SumI32(1), AggFunc::CountStar], 64).unwrap();
        let batches = collect_batches(agg).unwrap();
        let mut got: Vec<(i32, i64, i64)> = Vec::new();
        for b in &batches {
            for r in 0..b.num_rows() {
                got.push((
                    b.column(0).as_i32()[r],
                    b.column(1).as_i64()[r],
                    b.column(2).as_i64()[r],
                ));
            }
        }
        let mut expect: std::collections::BTreeMap<i32, (i64, i64)> = Default::default();
        for &(k, v) in &rows {
            let e = expect.entry(k).or_insert((0, 0));
            e.0 += i64::from(v);
            e.1 += 1;
        }
        let expect: Vec<(i32, i64, i64)> =
            expect.into_iter().map(|(k, (s, c))| (k, s, c)).collect();
        prop_assert_eq!(got, expect);
    }
}
