//! Differential oracle for spill-to-disk index construction: for any
//! posting-memory budget, [`SpillingIndexBuilder`] must produce exactly the
//! index that [`StreamingIndexBuilder`] and the batch
//! [`InvertedIndex::build`] produce — same posting columns, same document
//! statistics, same BM25 top-k — down to the pathological budget that
//! forces a spill after every single document.

use monetdb_x100::compress::Codec;
use monetdb_x100::corpus::{CollectionConfig, CollectionStream, Scale, SyntheticCollection};
use monetdb_x100::distributed::SimulatedCluster;
use monetdb_x100::ir::{
    build_index_streaming, build_index_streaming_spill, IndexConfig, InvertedIndex, Materialize,
    QueryEngine, SearchStrategy, SpillConfig, SpillingIndexBuilder, StreamingIndexBuilder,
};
use monetdb_x100::storage::ColumnBuilder;

/// Full structural equality: posting columns, range index, document
/// metadata and collection statistics.
fn assert_indexes_equal(a: &InvertedIndex, b: &InvertedIndex, vocab_len: usize) {
    assert_eq!(a.num_postings(), b.num_postings());
    assert_eq!(
        a.td().column("docid").unwrap().read_all(),
        b.td().column("docid").unwrap().read_all()
    );
    assert_eq!(
        a.td().column("tf").unwrap().read_all(),
        b.td().column("tf").unwrap().read_all()
    );
    if a.has_materialized_scores() {
        assert_eq!(
            a.td().column("score").unwrap().read_all(),
            b.td().column("score").unwrap().read_all()
        );
    }
    for t in 0..vocab_len as u32 {
        assert_eq!(a.term_range(t), b.term_range(t), "term {t}");
        assert_eq!(a.doc_freq(t), b.doc_freq(t), "term {t}");
    }
    assert_eq!(a.doc_lens(), b.doc_lens());
    assert_eq!(a.stats().num_docs, b.stats().num_docs);
    assert_eq!(a.stats().avg_doc_len, b.stats().avg_doc_len);
    assert_eq!(a.doc_name(0), b.doc_name(0));
}

/// Identical BM25 rankings (docids *and* scores) on the judged queries.
fn assert_same_topk(a: &InvertedIndex, b: &InvertedIndex, c: &SyntheticCollection) {
    let (ea, eb) = (QueryEngine::new(a), QueryEngine::new(b));
    for strategy in [SearchStrategy::Bm25, SearchStrategy::Bm25TwoPass] {
        for q in &c.eval_queries {
            let ra = ea.search(&q.terms, strategy, 10).unwrap().results;
            let rb = eb.search(&q.terms, strategy, 10).unwrap().results;
            assert_eq!(ra, rb, "{strategy:?} diverged on {:?}", q.terms);
        }
    }
}

fn build_all_three(
    c: &SyntheticCollection,
    config: &IndexConfig,
    budget: usize,
) -> (InvertedIndex, InvertedIndex, InvertedIndex, usize) {
    let batch = InvertedIndex::build(c, config);
    let mut streaming = StreamingIndexBuilder::new(c.vocab.len(), config);
    streaming.push_docs(&c.docs);
    let streamed = streaming.finish(&c.vocab);
    let mut spilling =
        SpillingIndexBuilder::new(c.vocab.len(), config, SpillConfig::with_budget(budget));
    spilling.push_docs(&c.docs).unwrap();
    let (spilled, stats) = spilling.finish(&c.vocab).unwrap();
    assert!(
        stats.peak_accum_bytes <= budget,
        "peak {} exceeded budget {budget}",
        stats.peak_accum_bytes
    );
    (batch, streamed, spilled, stats.runs)
}

#[test]
fn three_builders_agree_at_tiny_across_budgets_and_configs() {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let max_doc_bytes = c.docs.iter().map(|d| d.terms.len() * 8).max().unwrap();
    for config in [
        IndexConfig::uncompressed(),
        IndexConfig::compressed(),
        IndexConfig::materialized_f32(),
        IndexConfig::materialized_q8(),
    ] {
        for budget in [usize::MAX, 64 * 1024, 8 * 1024, max_doc_bytes] {
            let (batch, streamed, spilled, _) = build_all_three(&c, &config, budget);
            assert_indexes_equal(&streamed, &batch, c.vocab.len());
            assert_indexes_equal(&spilled, &batch, c.vocab.len());
            if config.materialize == Materialize::None {
                assert_same_topk(&spilled, &batch, &c);
            }
        }
    }
}

/// The streaming columnar finish (k-way merge → `IndexColumnsWriter` →
/// block-at-a-time compression) against the pre-streaming reference
/// discipline: materialize the whole (term, docid)-sorted posting columns,
/// then compress them in one shot. Every block must serialize to the exact
/// same bytes, at every budget — including the never-spilled in-memory
/// drain and the one-run-per-document pathology — and the finish-phase
/// peak accounting must be populated.
#[test]
fn streaming_columnar_finish_bit_identical_to_materialize_then_compress() {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let mut config = IndexConfig::compressed();
    config.block_size = 256; // force many blocks even at tiny scale

    // Reference: the old materialize-then-compress path, reconstructed from
    // first principles (sort all postings, compress the full columns).
    let mut rows: Vec<(u32, u32, u32)> = Vec::new();
    for (docid, doc) in c.docs.iter().enumerate() {
        for &(term, tf) in &doc.terms {
            rows.push((term, docid as u32, tf));
        }
    }
    rows.sort_unstable();
    let mut ref_docid =
        ColumnBuilder::with_block_size("docid", Codec::PforDelta { width: 8 }, config.block_size);
    let mut ref_tf =
        ColumnBuilder::with_block_size("tf", Codec::Pfor { width: 8 }, config.block_size);
    for &(_, d, f) in &rows {
        ref_docid.push(d);
        ref_tf.push(f);
    }
    let (ref_docid, ref_tf) = (ref_docid.finish(), ref_tf.finish());
    assert!(
        ref_docid.block_count() > 10,
        "fixture too small to be probative"
    );

    let batch = InvertedIndex::build(&c, &config);
    for budget in [usize::MAX, 32 * 1024, 4 * 1024, 1] {
        let mut b =
            SpillingIndexBuilder::new(c.vocab.len(), &config, SpillConfig::with_budget(budget));
        b.push_docs(&c.docs).unwrap();
        let (idx, stats) = b.finish(&c.vocab).unwrap();
        assert!(stats.finish_peak_bytes > 0, "budget {budget}");
        for (name, reference) in [("docid", &ref_docid), ("tf", &ref_tf)] {
            let col = idx.td().column(name).unwrap();
            assert_eq!(col.len(), reference.len(), "{name} budget={budget}");
            assert_eq!(
                col.block_count(),
                reference.block_count(),
                "{name} budget={budget}"
            );
            for i in 0..col.block_count() {
                assert_eq!(
                    col.block(i).to_bytes(),
                    reference.block(i).to_bytes(),
                    "{name} block {i} diverged at budget {budget}"
                );
            }
            assert_eq!(
                col.read_all(),
                reference.read_all(),
                "{name} budget={budget}"
            );
        }
        assert_same_topk(&idx, &batch, &c);
    }
}

#[test]
fn pathological_budget_spills_after_every_document() {
    // A budget smaller than any document: every push flushes the previous
    // document as its own run, so the build degenerates to one run per
    // document — and must *still* merge back to the exact batch index.
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let config = IndexConfig::compressed();
    let batch = InvertedIndex::build(&c, &config);
    let mut spilling =
        SpillingIndexBuilder::new(c.vocab.len(), &config, SpillConfig::with_budget(1));
    spilling.push_docs(&c.docs).unwrap();
    let (spilled, stats) = spilling.finish(&c.vocab).unwrap();
    assert_eq!(stats.runs, c.docs.len(), "one run per document");
    assert_eq!(stats.spilled_postings as usize, batch.num_postings());
    assert_indexes_equal(&spilled, &batch, c.vocab.len());
    assert_same_topk(&spilled, &batch, &c);
}

#[test]
fn small_scale_streamed_spill_matches_unbudgeted() {
    let cfg = Scale::Small.config();
    let (plain, plain_tail) = build_index_streaming(
        CollectionStream::new(&cfg),
        &IndexConfig::compressed(),
        Scale::Small.chunk_size(),
    );
    let (spilled, tail, stats) = build_index_streaming_spill(
        CollectionStream::new(&cfg),
        &IndexConfig::compressed(),
        Scale::Small.chunk_size(),
        SpillConfig::with_budget(256 * 1024),
    )
    .unwrap();
    assert!(
        stats.runs > 4,
        "only {} runs at a 256 KiB budget",
        stats.runs
    );
    assert!(stats.peak_accum_bytes <= 256 * 1024);
    // The streamed finish stays far below the total posting volume: its
    // peak is the largest merged posting list plus two pending blocks.
    assert!(stats.finish_peak_bytes > 0);
    assert!(
        stats.finish_peak_bytes < spilled.num_postings() * 8 / 2,
        "finish peak {} should be well under the {}-byte materialized columns",
        stats.finish_peak_bytes,
        spilled.num_postings() * 8
    );
    assert_eq!(tail.efficiency_log, plain_tail.efficiency_log);
    assert_indexes_equal(&spilled, &plain, cfg.vocab_size);

    // Identical top-20 on the efficiency workload too.
    let (ep, es) = (QueryEngine::new(&plain), QueryEngine::new(&spilled));
    for q in tail.efficiency_log.iter().take(50) {
        assert_eq!(
            ep.search(q, SearchStrategy::Bm25TwoPass, 20)
                .unwrap()
                .results,
            es.search(q, SearchStrategy::Bm25TwoPass, 20)
                .unwrap()
                .results
        );
    }
}

#[test]
fn spilled_cluster_matches_unbudgeted_cluster() {
    let cfg = CollectionConfig::tiny();
    let (plain, _) = SimulatedCluster::build_streaming(
        CollectionStream::new(&cfg),
        4,
        &IndexConfig::compressed(),
        64,
    );
    let (spilled, tail, stats) = SimulatedCluster::build_streaming_spill(
        CollectionStream::new(&cfg),
        4,
        &IndexConfig::compressed(),
        64,
        16 * 1024,
    )
    .unwrap();
    assert!(stats.iter().all(|s| s.runs > 0));
    for q in &tail.eval_queries {
        assert_eq!(
            spilled.search(&q.terms, SearchStrategy::Bm25, 20),
            plain.search(&q.terms, SearchStrategy::Bm25, 20)
        );
    }
}

/// The medium-scale spill roundtrip the weekly CI smoke job runs: a 32 MiB
/// budget over ~16 M postings (~128 MiB of packed accumulator) forces a
/// real multi-run merge, and the result must match the unbudgeted build
/// posting-for-posting and ranking-for-ranking.
#[test]
#[ignore = "medium scale: run explicitly with --ignored (release mode recommended)"]
fn medium_scale_spill_roundtrip() {
    let scale = Scale::Medium;
    let cfg = scale.config();
    let (plain, _) = build_index_streaming(
        CollectionStream::new(&cfg),
        &IndexConfig::compressed(),
        scale.chunk_size(),
    );
    let (spilled, tail, stats) = build_index_streaming_spill(
        CollectionStream::new(&cfg),
        &IndexConfig::compressed(),
        scale.chunk_size(),
        SpillConfig::with_budget(32 << 20),
    )
    .unwrap();
    assert!(
        stats.runs >= 3,
        "only {} runs at a 32 MiB budget",
        stats.runs
    );
    assert!(stats.peak_accum_bytes <= 32 << 20);
    // ~128 MiB of packed postings merge through a finish phase that stays
    // within the budget too: the columns compress block by block.
    assert!(stats.finish_peak_bytes > 0);
    assert!(
        stats.finish_peak_bytes <= 32 << 20,
        "finish peak {} exceeded the budget",
        stats.finish_peak_bytes
    );
    assert_eq!(stats.spilled_postings as usize, plain.num_postings());
    assert_eq!(spilled.num_postings(), plain.num_postings());
    assert_eq!(
        spilled.td().column("docid").unwrap().read_all(),
        plain.td().column("docid").unwrap().read_all()
    );
    assert_eq!(
        spilled.td().column("tf").unwrap().read_all(),
        plain.td().column("tf").unwrap().read_all()
    );
    let (ep, es) = (QueryEngine::new(&plain), QueryEngine::new(&spilled));
    for q in &tail.eval_queries {
        assert_eq!(
            ep.search(&q.terms, SearchStrategy::Bm25TwoPass, 20)
                .unwrap()
                .results,
            es.search(&q.terms, SearchStrategy::Bm25TwoPass, 20)
                .unwrap()
                .results
        );
    }
}
