//! Networked-serving differential suite: the socket scatter-gather path
//! ([`x100_distributed::net`]) must be **bit-identical** to the in-process
//! [`SimulatedCluster::search_scatter`] oracle — same docids, same
//! `f32::to_bits` scores, same tie-breaks — for every strategy of the
//! Table 2 ladder, and must stay that way under injected node faults
//! (kill, stall, garbage frames, worker panics) as long as a replica
//! survives. When no replica survives, the failure must surface as a
//! typed [`NetError`], never a panic reaching the coordinator.

use std::time::Duration;

use x100_corpus::{CollectionConfig, SyntheticCollection};
use x100_distributed::{
    CoordinatorConfig, Fault, NetCluster, NetError, NetSearchOutcome, SimulatedCluster,
};
use x100_ir::{IndexConfig, SearchStrategy};

const TOP_N: usize = 15;

fn fixture(partitions: usize) -> (Vec<Vec<u32>>, SimulatedCluster) {
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    // Materialized-Q8 runs all six strategies of the ladder.
    let cluster = SimulatedCluster::build(&c, partitions, &IndexConfig::materialized_q8());
    let mut queries: Vec<Vec<u32>> = c.eval_queries.iter().map(|q| q.terms.clone()).collect();
    queries.extend(c.efficiency_log.iter().take(10).cloned());
    (queries, cluster)
}

/// A config with a short hedge delay so stall tests complete quickly,
/// but a generous deadline so slow CI machines never time out a healthy
/// query.
fn test_config() -> CoordinatorConfig {
    CoordinatorConfig {
        deadline: Duration::from_secs(10),
        hedge_after: Duration::from_millis(40),
        hedge_min_samples: u64::MAX, // keep the hedge delay deterministic
        connect_timeout: Duration::from_millis(500),
    }
}

/// Asserts the networked outcome is bit-identical to the in-process
/// scatter for one query.
fn assert_bit_identical(
    cluster: &SimulatedCluster,
    net: &NetSearchOutcome,
    terms: &[u32],
    strategy: SearchStrategy,
) {
    let oracle = cluster.search_scatter(terms, strategy, TOP_N);
    assert!(oracle.failures.is_empty());
    assert_eq!(
        net.hits.len(),
        oracle.results.len(),
        "{strategy:?}: networked and in-process hit counts differ"
    );
    for (i, (got, want)) in net.hits.iter().zip(&oracle.results).enumerate() {
        assert_eq!(
            (got.0, got.1.to_bits()),
            (want.docid, want.score.to_bits()),
            "{strategy:?}: rank {i} differs from the in-process oracle"
        );
    }
}

#[test]
fn networked_results_bit_identical_across_all_strategies() {
    let (queries, cluster) = fixture(3);
    let net = NetCluster::serve(&cluster, 1, test_config()).expect("spawn servers");
    for strategy in SearchStrategy::ALL {
        for terms in &queries {
            let outcome = net
                .coordinator()
                .search(terms, strategy, TOP_N)
                .expect("healthy cluster serves");
            assert_bit_identical(&cluster, &outcome, terms, strategy);
        }
    }
    let stats = net.coordinator().stats();
    assert_eq!(stats.unavailable, 0);
    assert_eq!(stats.failed_over, 0);
}

#[test]
fn killed_server_fails_over_bit_identically() {
    let (queries, cluster) = fixture(3);
    let net = NetCluster::serve(&cluster, 2, test_config()).expect("spawn servers");

    // Warm every partition (and replica 0's connection pools) first, so
    // the kill hits live pooled connections, not a cold coordinator.
    let warm = net
        .coordinator()
        .search(&queries[0], SearchStrategy::Bm25, TOP_N)
        .expect("healthy cluster serves");
    assert_bit_identical(&cluster, &warm, &queries[0], SearchStrategy::Bm25);

    // Kill partition 1's replica 0 outright: existing connections reset,
    // new ones are refused.
    net.kill_server(1, 0);

    for strategy in SearchStrategy::ALL {
        for terms in &queries {
            let outcome = net
                .coordinator()
                .search(terms, strategy, TOP_N)
                .expect("replica must absorb the killed server");
            assert_bit_identical(&cluster, &outcome, terms, strategy);
        }
    }

    let stats = net.coordinator().stats();
    assert_eq!(stats.unavailable, 0, "failover must hide the dead server");
    let p1 = &stats.partitions[1];
    assert!(
        p1.failed_over >= 1 || p1.hedged >= 1,
        "partition 1 must have taken the failover path: {p1:?}"
    );
    assert!(
        p1.served_by_replica[1] > 0,
        "partition 1's surviving replica must have served"
    );
    assert!(p1.replicas_down[0], "the killed replica is marked down");
    assert!(!p1.replicas_down[1], "the serving replica stays healthy");
}

#[test]
fn stalled_server_is_hedged_around_bit_identically() {
    let (queries, cluster) = fixture(2);
    let net = NetCluster::serve(&cluster, 2, test_config()).expect("spawn servers");

    // Replica 0 of partition 0 accepts requests but never answers; the
    // hedge must fire and replica 1's answer must win, bit-identically.
    net.server(0, 0).set_fault(Fault::Stall);

    for (i, terms) in queries.iter().take(4).enumerate() {
        let strategy = SearchStrategy::ALL[i % SearchStrategy::ALL.len()];
        let outcome = net
            .coordinator()
            .search(terms, strategy, TOP_N)
            .expect("hedge must rescue the stalled partition");
        assert_bit_identical(&cluster, &outcome, terms, strategy);
    }

    let stats = net.coordinator().stats();
    assert_eq!(stats.unavailable, 0);
    assert!(
        stats.partitions[0].hedged >= 1,
        "the stall must be visible as hedged queries: {stats:?}"
    );
    // The healthy partition never needed help.
    assert_eq!(stats.partitions[1].hedged, 0);
    assert_eq!(stats.partitions[1].failed_over, 0);
}

#[test]
fn garbage_frames_fail_over_bit_identically() {
    let (queries, cluster) = fixture(2);
    let net = NetCluster::serve(&cluster, 2, test_config()).expect("spawn servers");

    // Replica 0 of partition 1 answers every request with a frame whose
    // checksum is wrong: the client must reject it (never decode garbage
    // hits) and fail over.
    net.server(1, 0).set_fault(Fault::Garbage);

    for (i, terms) in queries.iter().take(4).enumerate() {
        let strategy = SearchStrategy::ALL[i % SearchStrategy::ALL.len()];
        let outcome = net
            .coordinator()
            .search(terms, strategy, TOP_N)
            .expect("failover must absorb the corrupting replica");
        assert_bit_identical(&cluster, &outcome, terms, strategy);
    }

    let stats = net.coordinator().stats();
    assert_eq!(stats.unavailable, 0);
    assert!(
        stats.partitions[1].failed_over >= 1,
        "checksum rejection must surface as failovers: {stats:?}"
    );

    // Clearing the fault lets the replica re-enter rotation: the next
    // successful exchange marks it back up.
    net.server(1, 0).set_fault(Fault::None);
    for terms in queries.iter().take(8) {
        let outcome = net
            .coordinator()
            .search(terms, SearchStrategy::Bm25, TOP_N)
            .expect("recovered cluster serves");
        assert_bit_identical(&cluster, &outcome, terms, SearchStrategy::Bm25);
    }
}

#[test]
fn exhausted_replicas_yield_typed_error_not_panic() {
    let (queries, cluster) = fixture(2);
    let config = CoordinatorConfig {
        // Tight deadline: every attempt is an instant connection refusal,
        // so nothing in this test actually needs the budget.
        deadline: Duration::from_secs(2),
        ..test_config()
    };
    let net = NetCluster::serve(&cluster, 2, config).expect("spawn servers");

    // Kill *both* replicas of partition 0.
    net.kill_server(0, 0);
    net.kill_server(0, 1);

    match net
        .coordinator()
        .search(&queries[0], SearchStrategy::Bm25, TOP_N)
    {
        Err(NetError::PartitionUnavailable {
            partition,
            attempts,
        }) => {
            assert_eq!(partition, 0);
            assert_eq!(attempts, 2, "both replicas must have been tried");
        }
        other => panic!("expected PartitionUnavailable, got {other:?}"),
    }
    let stats = net.coordinator().stats();
    assert!(stats.unavailable >= 1);
    // The healthy partition's state is untouched by its neighbor's death.
    assert_eq!(stats.partitions[1].unavailable, 0);
}

#[test]
fn worker_panic_is_contained_to_a_typed_error() {
    // A panic inside the node's search (the injected data-level fault)
    // kills the connection worker on *every* replica — they share the
    // partition's node state, so failover cannot mask a data fault. The
    // coordinator must report the partition as unavailable through the
    // typed path; no panic may cross the sockets.
    let (queries, cluster) = fixture(3);
    let net = NetCluster::serve(&cluster, 2, test_config()).expect("spawn servers");

    cluster.nodes()[2].inject_search_panic_for_tests(true);
    match net
        .coordinator()
        .search(&queries[0], SearchStrategy::Bm25, TOP_N)
    {
        Err(NetError::PartitionUnavailable {
            partition,
            attempts,
        }) => {
            assert_eq!(partition, 2);
            assert_eq!(attempts, 2);
        }
        other => panic!("expected PartitionUnavailable, got {other:?}"),
    }

    // Disarming heals the partition: replicas re-enter rotation on their
    // next success and results are bit-identical again.
    cluster.nodes()[2].inject_search_panic_for_tests(false);
    for strategy in SearchStrategy::ALL {
        let outcome = net
            .coordinator()
            .search(&queries[0], strategy, TOP_N)
            .expect("recovered partition serves");
        assert_bit_identical(&cluster, &outcome, &queries[0], strategy);
    }
    let down = &net.coordinator().stats().partitions[2].replicas_down;
    assert!(!down[0], "first replica healed by its success");
}

#[test]
fn remote_planning_errors_propagate_as_typed_remote() {
    // A strategy the index cannot plan (materialized scoring on a
    // non-materialized index) is a deterministic remote refusal: it must
    // come back as NetError::Remote — not a panic, and not a futile
    // failover (every replica would refuse identically).
    let c = SyntheticCollection::generate(&CollectionConfig::tiny());
    let cluster = SimulatedCluster::build(&c, 2, &IndexConfig::compressed());
    let net = NetCluster::serve(&cluster, 2, test_config()).expect("spawn servers");
    let terms = c.eval_queries[0].terms.clone();

    match net
        .coordinator()
        .search(&terms, SearchStrategy::Bm25Materialized, TOP_N)
    {
        Err(NetError::Remote(msg)) => {
            assert!(
                !msg.is_empty(),
                "remote error must carry the node's message"
            );
        }
        other => panic!("expected Remote error, got {other:?}"),
    }
    let stats = net.coordinator().stats();
    assert_eq!(
        stats.failed_over, 0,
        "deterministic refusals must not trigger failover"
    );
    assert!(
        stats
            .partitions
            .iter()
            .all(|p| p.replicas_down.iter().all(|&d| !d)),
        "a planning refusal is a healthy transport; nothing goes down"
    );
}
