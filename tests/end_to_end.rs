//! End-to-end integration: collection → index → query → evaluation,
//! spanning every crate through the facade.

use std::collections::HashSet;

use monetdb_x100::corpus::{precision_at_k, CollectionConfig, SyntheticCollection};
use monetdb_x100::distributed::SimulatedCluster;
use monetdb_x100::ir::{
    Bm25Params, IndexConfig, InvertedIndex, Materialize, QueryEngine, SearchStrategy,
};
use monetdb_x100::storage::{BufferMode, DiskModel};

fn collection() -> SyntheticCollection {
    SyntheticCollection::generate(&CollectionConfig::tiny())
}

#[test]
fn full_ladder_runs_and_ranks() {
    let c = collection();
    let raw = InvertedIndex::build(&c, &IndexConfig::uncompressed());
    let compressed = InvertedIndex::build(&c, &IndexConfig::compressed());
    let mat = InvertedIndex::build(&c, &IndexConfig::materialized_f32());
    let q8 = InvertedIndex::build(&c, &IndexConfig::materialized_q8());

    let cases: Vec<(&InvertedIndex, SearchStrategy)> = vec![
        (&raw, SearchStrategy::BoolAnd),
        (&raw, SearchStrategy::BoolOr),
        (&raw, SearchStrategy::Bm25),
        (&raw, SearchStrategy::Bm25TwoPass),
        (&compressed, SearchStrategy::Bm25TwoPass),
        (&mat, SearchStrategy::Bm25MaterializedTwoPass),
        (&q8, SearchStrategy::Bm25MaterializedTwoPass),
    ];
    for (index, strategy) in cases {
        let engine = QueryEngine::new(index);
        for q in &c.eval_queries {
            let resp = engine.search(&q.terms, strategy, 20).expect("search");
            assert!(resp.results.len() <= 20);
            assert!(
                resp.results.windows(2).all(|w| w[0].score >= w[1].score),
                "{strategy:?} results must be score-ordered"
            );
            // Every returned doc actually exists and its name matches.
            for r in &resp.results {
                assert!((r.docid as usize) < c.docs.len());
                assert_eq!(r.name, c.docs[r.docid as usize].name);
            }
        }
    }
}

#[test]
fn ranked_strategies_agree_across_index_encodings() {
    // Compression must be invisible to query results.
    let c = collection();
    let raw = InvertedIndex::build(&c, &IndexConfig::uncompressed());
    let compressed = InvertedIndex::build(&c, &IndexConfig::compressed());
    let e_raw = QueryEngine::new(&raw);
    let e_comp = QueryEngine::new(&compressed);
    for q in &c.eval_queries {
        for strategy in [
            SearchStrategy::BoolAnd,
            SearchStrategy::BoolOr,
            SearchStrategy::Bm25,
            SearchStrategy::Bm25TwoPass,
        ] {
            let a = e_raw.search(&q.terms, strategy, 15).expect("raw");
            let b = e_comp.search(&q.terms, strategy, 15).expect("compressed");
            assert_eq!(a.results, b.results, "{strategy:?}");
        }
    }
}

#[test]
fn bm25_outranks_boolean_at_scale() {
    let c = SyntheticCollection::generate(&CollectionConfig::small());
    let index = InvertedIndex::build(&c, &IndexConfig::compressed());
    let engine = QueryEngine::new(&index);
    let (mut p_bool, mut p_bm25) = (0.0, 0.0);
    for q in &c.eval_queries {
        let and: Vec<u32> = engine
            .search(&q.terms, SearchStrategy::BoolAnd, c.docs.len())
            .expect("bool")
            .results
            .iter()
            .take(20)
            .map(|r| r.docid)
            .collect();
        let bm: Vec<u32> = engine
            .search(&q.terms, SearchStrategy::Bm25, 20)
            .expect("bm25")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        p_bool += precision_at_k(&and, &q.relevant, 20);
        p_bm25 += precision_at_k(&bm, &q.relevant, 20);
    }
    assert!(
        p_bm25 > p_bool * 3.0,
        "Table 2 shape: BM25 ({p_bm25}) must dominate boolean ({p_bool})"
    );
}

#[test]
fn materialized_scores_do_not_change_the_ranking() {
    let c = collection();
    let mat = InvertedIndex::build(&c, &IndexConfig::materialized_f32());
    let engine = QueryEngine::new(&mat);
    for q in &c.eval_queries {
        let computed: Vec<u32> = engine
            .search(&q.terms, SearchStrategy::Bm25, 15)
            .expect("computed")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let materialized: Vec<u32> = engine
            .search(&q.terms, SearchStrategy::Bm25Materialized, 15)
            .expect("materialized")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        assert_eq!(computed, materialized);
    }
}

#[test]
fn cold_hot_io_accounting_through_the_stack() {
    let c = collection();
    let index = InvertedIndex::build(&c, &IndexConfig::compressed());
    let engine = QueryEngine::with_buffering(&index, DiskModel::raid12(), BufferMode::Hot, 0);
    let q = &c.eval_queries[0];

    let cold = engine
        .search(&q.terms, SearchStrategy::Bm25, 10)
        .expect("cold");
    assert!(cold.io.reads > 0 && cold.io.sim_time > std::time::Duration::ZERO);
    let hot = engine
        .search(&q.terms, SearchStrategy::Bm25, 10)
        .expect("hot");
    assert_eq!(hot.io.reads, 0, "resident blocks must not re-charge I/O");
    assert_eq!(cold.results, hot.results);

    // Eviction makes it cold again.
    engine.buffers().evict_all();
    let recold = engine
        .search(&q.terms, SearchStrategy::Bm25, 10)
        .expect("recold");
    assert!(recold.io.reads > 0);
}

#[test]
fn compressed_index_charges_less_io_than_raw() {
    let c = SyntheticCollection::generate(&CollectionConfig::small());
    let raw = InvertedIndex::build(&c, &IndexConfig::uncompressed());
    let compressed = InvertedIndex::build(&c, &IndexConfig::compressed());
    let e_raw = QueryEngine::new(&raw);
    let e_comp = QueryEngine::new(&compressed);
    let mut raw_bytes = 0u64;
    let mut comp_bytes = 0u64;
    for q in c.efficiency_log.iter().take(30) {
        e_raw.buffers().evict_all();
        e_comp.buffers().evict_all();
        raw_bytes += e_raw
            .search(q, SearchStrategy::Bm25, 20)
            .expect("raw")
            .io
            .bytes;
        comp_bytes += e_comp
            .search(q, SearchStrategy::Bm25, 20)
            .expect("comp")
            .io
            .bytes;
    }
    assert!(
        comp_bytes * 2 < raw_bytes,
        "compression must at least halve cold I/O volume: {comp_bytes} vs {raw_bytes}"
    );
}

#[test]
fn two_pass_fallback_fires_on_rare_conjunctions() {
    let c = SyntheticCollection::generate(&CollectionConfig::small());
    let index = InvertedIndex::build(&c, &IndexConfig::compressed());
    let engine = QueryEngine::new(&index);
    let mut second = 0usize;
    for q in &c.efficiency_log {
        let resp = engine
            .search(q, SearchStrategy::Bm25TwoPass, 20)
            .expect("search");
        if resp.passes == 2 {
            second += 1;
        }
    }
    // The efficiency log is calibrated to include rare tail terms; a
    // meaningful fraction of queries must take the second pass (paper: ~15%).
    let rate = second as f64 / c.efficiency_log.len() as f64;
    assert!(
        (0.02..0.6).contains(&rate),
        "second-pass rate {rate} out of plausible range"
    );
}

#[test]
fn distributed_cluster_matches_single_node_on_two_partitions() {
    let c = collection();
    let cluster = SimulatedCluster::build(&c, 2, &IndexConfig::compressed());
    let index = InvertedIndex::build(&c, &IndexConfig::compressed());
    let engine = QueryEngine::new(&index);
    let mut overlap = 0usize;
    let mut total = 0usize;
    for q in &c.eval_queries {
        let single: HashSet<u32> = engine
            .search(&q.terms, SearchStrategy::Bm25, 10)
            .expect("single")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let dist: HashSet<u32> = cluster
            .search(&q.terms, SearchStrategy::Bm25, 10)
            .iter()
            .map(|r| r.docid)
            .collect();
        overlap += single.intersection(&dist).count();
        total += single.len();
    }
    assert!(overlap * 100 >= total * 80, "{overlap}/{total}");
}

#[test]
fn quantization_loses_little_precision() {
    let c = SyntheticCollection::generate(&CollectionConfig::small());
    let f32_idx = InvertedIndex::build(&c, &IndexConfig::materialized_f32());
    let q8_idx = InvertedIndex::build(&c, &IndexConfig::materialized_q8());
    assert_eq!(f32_idx.config().materialize, Materialize::F32);
    assert!(q8_idx.quantizer().is_some());
    let ef = QueryEngine::new(&f32_idx);
    let eq = QueryEngine::new(&q8_idx);
    let (mut pf, mut pq) = (0.0, 0.0);
    for q in &c.eval_queries {
        let rf: Vec<u32> = ef
            .search(&q.terms, SearchStrategy::Bm25Materialized, 20)
            .expect("f32")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let rq: Vec<u32> = eq
            .search(&q.terms, SearchStrategy::Bm25Materialized, 20)
            .expect("q8")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        pf += precision_at_k(&rf, &q.relevant, 20);
        pq += precision_at_k(&rq, &q.relevant, 20);
    }
    let n = c.eval_queries.len() as f64;
    assert!(
        (pf / n - pq / n).abs() < 0.05,
        "p@20 f32 {} vs q8 {}",
        pf / n,
        pq / n
    );
}

#[test]
fn custom_bm25_parameters_flow_through() {
    let c = collection();
    let mut config = IndexConfig::compressed();
    config.params = Bm25Params { k1: 2.0, b: 0.5 };
    let index = InvertedIndex::build(&c, &config);
    let engine = QueryEngine::new(&index);
    let default_index = InvertedIndex::build(&c, &IndexConfig::compressed());
    let default_engine = QueryEngine::new(&default_index);
    let q = &c.eval_queries[0];
    let a = engine
        .search(&q.terms, SearchStrategy::Bm25, 10)
        .expect("a");
    let b = default_engine
        .search(&q.terms, SearchStrategy::Bm25, 10)
        .expect("b");
    // Different parameters must actually change the scores.
    assert_ne!(
        a.results.first().map(|r| r.score),
        b.results.first().map(|r| r.score)
    );
}
