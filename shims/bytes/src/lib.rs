//! Offline stand-in for the subset of the [`bytes` 1.x](https://docs.rs/bytes)
//! API this workspace uses: `Bytes`, `BytesMut`, and the little-endian
//! cursor methods of `Buf` (for `&[u8]`) / `BufMut` (for `BytesMut`).
//!
//! `Bytes` here is a plain owned buffer rather than a refcounted slice — the
//! serialization paths in `x100-compress` only need value semantics.

use std::ops::Deref;

/// Immutable owned byte buffer. Dereferences to `[u8]`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// Growable byte buffer; freeze it into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Little-endian read cursor. Implemented for `&[u8]`, which advances
/// through the slice as values are read.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Little-endian write cursor, implemented for [`BytesMut`].
pub trait BufMut {
    fn put_slice(&mut self, data: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 13);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn advance_moves_the_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.get_u8(), 3);
        assert_eq!(cursor.remaining(), 1);
    }
}
