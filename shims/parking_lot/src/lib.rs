//! Offline stand-in for the subset of the
//! [`parking_lot` 0.12](https://docs.rs/parking_lot/0.12) API this workspace
//! uses: `Mutex`/`RwLock` with non-poisoning `lock()`/`read()`/`write()`.
//!
//! Backed by `std::sync` primitives; poisoning is swallowed (a poisoned lock
//! simply hands back the inner guard), which matches parking_lot's
//! no-poisoning semantics for the ways this workspace uses locks.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
