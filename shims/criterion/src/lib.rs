//! Offline stand-in for the subset of the
//! [`criterion` 0.5](https://docs.rs/criterion) API this workspace uses:
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a short warm-up,
//! then a fixed number of timed samples, and reports the median per-iteration
//! time (plus MB/s when a byte throughput is set). Good enough to compare
//! codecs and track regressions locally; swap in real criterion for
//! publication-grade numbers.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// When true (no `--bench` flag, i.e. `cargo test --benches`), each
/// benchmark payload runs exactly once as a smoke test instead of being
/// measured — mirroring real criterion's test mode.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

#[doc(hidden)]
pub fn configure_test_mode_from_args() {
    if !std::env::args().any(|a| a == "--bench") {
        TEST_MODE.store(true, Ordering::Relaxed);
    }
}

/// Top-level benchmark driver, one per `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.to_string(), sample_size, None, f);
        self
    }
}

/// Throughput annotation; per-second rates are derived from it.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named collection of related benchmarks sharing sample size and
/// throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, e.g. `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if TEST_MODE.load(Ordering::Relaxed) {
            black_box(f());
            return;
        }
        // Warm up and pick an iteration count so one sample is ~1ms.
        let warmup_start = Instant::now();
        black_box(f());
        let one = warmup_start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters);
        }
        self.samples.sort();
    }

    fn median(&self) -> Duration {
        self.samples
            .get(self.samples.len() / 2)
            .copied()
            .unwrap_or_default()
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if TEST_MODE.load(Ordering::Relaxed) {
        eprintln!("  {name:<48} ok (test mode)");
        return;
    }
    let median = bencher.median();
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if median > Duration::ZERO => {
            let mbps = bytes as f64 / median.as_secs_f64() / 1e6;
            format!("  {mbps:>10.1} MB/s")
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let eps = n as f64 / median.as_secs_f64() / 1e6;
            format!("  {eps:>10.2} Melem/s")
        }
        _ => String::new(),
    };
    eprintln!("  {name:<48} {median:>12.2?}/iter{rate}");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; its absence means we're under
            // `cargo test --benches`, where payloads run once, unmeasured.
            $crate::configure_test_mode_from_args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_a_sane_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("self-test");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
