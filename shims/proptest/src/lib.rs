//! Offline stand-in for the subset of the
//! [`proptest` 1.x](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! the strategy combinators, macros and config the test suites need:
//!
//! * `Strategy` with `prop_map` / `prop_flat_map` / `boxed`;
//! * range, `any::<T>()`, `Just`, tuple and `prop_oneof!` strategies;
//! * `prop::collection::{vec, hash_set, btree_map}`;
//! * the `proptest!` test macro with `#![proptest_config(..)]`,
//!   `prop_assert!` and `prop_assert_eq!`;
//! * `ProptestConfig::with_cases` plus the `PROPTEST_CASES` env override.
//!
//! Differences from real proptest: sampling is purely random (no input
//! *shrinking* on failure) and each test gets a fixed RNG seed derived from
//! its name, so runs are deterministic — which is exactly what CI wants.
//! Swap in the real crate when a registry is available; the test sources
//! need no changes.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore, SeedableRng};

pub use rand::rngs::StdRng as TestRng;

/// Runner configuration. Only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases by default (real proptest uses 256); override with the
    /// `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Applies the `PROPTEST_CASES` env override, mirroring real proptest.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Error type carried by `prop_assert!` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG: seeded from the test's name so different
/// tests explore different streams but every run repeats exactly.
pub fn new_rng(test_name: &str) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(seed)
}

/// A generator of values. Unlike real proptest there is no shrinking tree;
/// `sample` draws one value directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union(branches)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let ix = rng.gen_range(0..self.0.len());
        self.0[ix].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Full-range strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — arbitrary values of `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator, with edge cases over-weighted the way
/// real proptest's binary search-ish distributions stress boundaries.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // 1-in-8 draws pick an edge value; the rest are uniform.
                if rng.gen_range(0u32..8) == 0 {
                    *[<$t>::MIN, <$t>::MAX, 0 as $t, 1 as $t]
                        .iter()
                        .nth(rng.gen_range(0usize..4))
                        .unwrap()
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/a)
    (A/a, B/b)
    (A/a, B/b, C/c)
    (A/a, B/b, C/c, D/d)
    (A/a, B/b, C/c, D/d, E/e)
    (A/a, B/b, C/c, D/d, E/e, F/f)
    (A/a, B/b, C/c, D/d, E/e, F/f, G/g)
    (A/a, B/b, C/c, D/d, E/e, F/f, G/g, H/h)
}

/// Collection size specification: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    pub start: usize,
    pub end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *r.start(),
            end: *r.end() + 1,
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.start..self.size.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::hash_set(element, sizes)`. If the element domain
    /// is too small to reach the drawn size, yields as many distinct
    /// elements as it can find in a bounded number of draws.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = rng.gen_range(self.size.start..self.size.end);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `prop::collection::btree_map(key, value, sizes)`. Sizes are treated
    /// as an upper bound when the key domain is small, like `hash_set`.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = rng.gen_range(self.size.start..self.size.end);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// Lets `prop::collection::vec(..)` paths resolve, as in real proptest.
    pub use crate as prop;
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// The test-suite macro: expands each `fn name(arg in strategy, ..) { body }`
/// into a `#[test]` that samples the strategies `cases` times and runs the
/// body, reporting the failing inputs on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = $crate::resolve_cases(&config);
            let mut rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $crate::Strategy::boxed($strategy);)*
            for case in 0..cases {
                $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)*
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_and_oneof_sample_in_domain() {
        let mut rng = crate::new_rng("shim-self-test");
        let s = prop_oneof![Just(5u32), 10u32..20];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v == 5 || (10..20).contains(&v));
        }
        let wide = any::<u32>();
        let distinct: std::collections::HashSet<u32> =
            (0..64).map(|_| wide.sample(&mut rng)).collect();
        assert!(distinct.len() > 8, "any::<u32>() should vary");
        let vecs = prop::collection::vec(0u32..4, 2..5);
        for _ in 0..50 {
            let v = vecs.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u32..100, b in any::<u8>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(u32::from(b) + a, a + u32::from(b));
        }
    }
}
