//! Offline stand-in for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API this workspace uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` over integer and float ranges.
//!
//! The build environment has no crates.io access, so this crate provides the
//! exact surface in-tree. The generator is xoshiro256** seeded via SplitMix64
//! — statistically strong enough for synthetic-workload generation and fully
//! deterministic, which the corpus tests rely on. Replace with the real
//! `rand` crate (and delete this shim) once a registry is available.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by `rng.gen_range(..)`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256** — the same family the real `rand`'s `SmallRng` uses.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with SplitMix64, as recommended by the xoshiro
        // authors, so that nearby seeds give unrelated streams.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should span [0,1)");
    }
}
