//! Differential suite for the wide (AVX2) unpack kernels.
//!
//! Every bit width 1–32 is held against the generic oracle *and* against
//! the unrolled scalar kernels (via [`simd_force_scalar`]) on structured
//! extremes — all-zero, all-max, alternating — and on random data, at
//! group-aligned and unaligned range starts, including buffers short
//! enough that the wide path must hand trailing groups back to the scalar
//! kernels. Without the `simd` feature (or off x86_64/AVX2) the wide path
//! is inert and the suite degenerates to scalar-vs-oracle — still a valid
//! pin, so it runs in both CI legs.
//!
//! The force-scalar toggle is process-wide, so everything here lives in
//! one `#[test]` per concern, sequenced inside this file's process.

use std::sync::Mutex;

use proptest::prelude::*;
use x100_compress::{bitpack, simd_available, simd_force_scalar};

/// The force-scalar switch is process-wide and the harness runs tests on
/// parallel threads: every test that toggles it holds this lock.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

/// Decodes `values.len()` codes from `packed` twice — wide path allowed,
/// then forced scalar — and pins both against the generic oracle and the
/// expected (masked) values.
fn check_full(packed: &[u64], n: usize, b: u8, expect: &[u32]) {
    let mut oracle = Vec::new();
    bitpack::unpack_generic(packed, n, b, &mut oracle);
    assert_eq!(oracle, expect, "oracle vs masked input, width {b}");

    let mut wide = Vec::new();
    simd_force_scalar(false);
    bitpack::unpack(packed, n, b, &mut wide);
    let mut scalar = Vec::new();
    simd_force_scalar(true);
    bitpack::unpack(packed, n, b, &mut scalar);
    simd_force_scalar(false);

    assert_eq!(wide, oracle, "wide path vs oracle, width {b}, n {n}");
    assert_eq!(scalar, oracle, "scalar kernels vs oracle, width {b}, n {n}");
}

fn masked(values: &[u32], b: u8) -> Vec<u32> {
    values
        .iter()
        .map(|&v| (u64::from(v) & bitpack::mask(b)) as u32)
        .collect()
}

/// The fixed patterns of the satellite spec: all-zero, all-max (for the
/// width), alternating zero/max, plus a deterministic pseudo-random fill.
fn patterns(n: usize, b: u8) -> Vec<Vec<u32>> {
    let max = bitpack::mask(b) as u32;
    let mut rng_state = 0x9E37_79B9u32 ^ u32::from(b);
    let mut random = Vec::with_capacity(n);
    for _ in 0..n {
        // xorshift32: deterministic, width-seeded.
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 17;
        rng_state ^= rng_state << 5;
        random.push(rng_state);
    }
    vec![
        vec![0u32; n],
        vec![max; n],
        (0..n as u32)
            .map(|i| if i % 2 == 0 { max } else { 0 })
            .collect(),
        random,
    ]
}

#[test]
fn every_width_every_pattern_matches_oracle_and_scalar() {
    let _g = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Lengths probing group boundaries and the wide path's trailing-group
    // fallback (short buffers where batch loads would run off the end).
    for n in [0usize, 1, 31, 32, 33, 64, 127, 128, 129, 256, 1000] {
        for b in 1..=32u8 {
            for values in patterns(n, b) {
                let packed = bitpack::pack(&values, b);
                check_full(&packed, n, b, &masked(&values, b));
            }
        }
    }
}

#[test]
fn range_decodes_match_scalar_at_every_alignment() {
    let _g = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n = 700usize;
    for b in 1..=32u8 {
        for values in patterns(n, b) {
            let packed = bitpack::pack(&values, b);
            let expect = masked(&values, b);
            for (start, len) in [(0usize, n), (128, 512), (32, 33), (5, 200), (672, 28)] {
                let mut wide = Vec::new();
                simd_force_scalar(false);
                bitpack::unpack_range(&packed, start, len, b, &mut wide);
                let mut scalar = Vec::new();
                simd_force_scalar(true);
                bitpack::unpack_range(&packed, start, len, b, &mut scalar);
                simd_force_scalar(false);
                assert_eq!(wide, &expect[start..start + len], "b={b} start={start}");
                assert_eq!(scalar, &expect[start..start + len], "b={b} start={start}");
            }
        }
    }
}

#[test]
fn forced_fallback_is_really_scalar() {
    let _g = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The toggle must actually switch paths on SIMD-capable builds (and be
    // an inert no-op elsewhere) — this keeps the scalar kernels covered on
    // CI machines where the wide path would otherwise always win.
    simd_force_scalar(true);
    assert!(!x100_compress::simd_active());
    simd_force_scalar(false);
    assert_eq!(x100_compress::simd_active(), simd_available());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_values_and_widths_agree(
        values in prop::collection::vec(any::<u32>(), 0..1200),
        b in 1u8..=32,
        start_group in 0usize..8,
    ) {
        let _g = TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let packed = bitpack::pack(&values, b);
        let expect = masked(&values, b);
        check_full(&packed, values.len(), b, &expect);

        // Aligned range decode from a random group start.
        let start = (start_group * 32).min(values.len());
        let len = values.len() - start;
        let mut wide = Vec::new();
        simd_force_scalar(false);
        bitpack::unpack_range(&packed, start, len, b, &mut wide);
        let mut scalar = Vec::new();
        simd_force_scalar(true);
        bitpack::unpack_range(&packed, start, len, b, &mut scalar);
        simd_force_scalar(false);
        prop_assert_eq!(&wide, &expect[start..], "wide range b={} start={}", b, start);
        prop_assert_eq!(&scalar, &expect[start..], "scalar range b={} start={}", b, start);
    }
}
