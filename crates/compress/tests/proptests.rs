//! Property-based tests for the compression codecs.
//!
//! Core invariants:
//! * every codec round-trips arbitrary `u32` data, at any width;
//! * patched and naive decompression agree on the values they reconstruct;
//! * range decoding agrees with full decoding on every aligned window;
//! * serialization round-trips bit-exactly;
//! * the per-width unrolled bitpack kernels match the generic oracle on
//!   adversarial inputs, at every width 1–32.

use proptest::prelude::*;
use x100_compress::{
    bitpack, Codec, CompressedBlock, NaiveBlock, PdictBlock, PforBlock, PforDeltaBlock,
    ENTRY_POINT_STRIDE,
};

/// Value distributions that stress different codec paths: uniform small
/// (codeable), uniform full-range (exception-heavy), and clustered.
fn value_vec() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        prop::collection::vec(0u32..256, 0..2000),
        prop::collection::vec(any::<u32>(), 0..600),
        prop::collection::vec(
            prop_oneof![
                Just(5u32),
                Just(17u32),
                1_000_000u32..1_000_100,
                any::<u32>()
            ],
            0..1500
        ),
    ]
}

proptest! {
    #[test]
    fn pfor_roundtrips(values in value_vec(), b in 1u8..=24) {
        let block = PforBlock::encode_with_width(&values, b);
        prop_assert_eq!(block.decode(), values);
    }

    #[test]
    fn pfor_auto_roundtrips(values in value_vec()) {
        let block = PforBlock::encode_auto(&values);
        prop_assert_eq!(block.decode(), values);
    }

    #[test]
    fn pfor_delta_roundtrips(values in value_vec(), b in 1u8..=24) {
        let block = PforDeltaBlock::encode_with_width(&values, b);
        prop_assert_eq!(block.decode(), values);
    }

    #[test]
    fn pdict_roundtrips(values in value_vec(), b in 1u8..=12) {
        let block = PdictBlock::encode(&values, b);
        prop_assert_eq!(block.decode(), values);
    }

    #[test]
    fn naive_roundtrips(values in value_vec(), b in 1u8..=24) {
        let base = values.iter().copied().min().unwrap_or(0);
        let block = NaiveBlock::encode(&values, b, base);
        prop_assert_eq!(block.decode(), values);
    }

    /// The headline Figure 3 equivalence: the patched decoder and the naive
    /// decoder are different *algorithms and formats* but must reconstruct
    /// identical data from identical input.
    #[test]
    fn patched_equals_naive(values in value_vec(), b in 1u8..=24) {
        let patched = PforBlock::encode_with_width(&values, b).decode();
        let base = x100_compress::pfor::choose_base(&values, b);
        let naive = NaiveBlock::encode(&values, b, base).decode();
        prop_assert_eq!(patched, naive);
    }

    /// Every aligned window of a PFOR block range-decodes to the same values
    /// as the corresponding slice of the full decode.
    #[test]
    fn pfor_range_decode_consistent(values in value_vec(), b in 1u8..=16) {
        let block = PforBlock::encode_with_width(&values, b);
        let full = block.decode();
        let mut out = Vec::new();
        for start in (0..values.len()).step_by(ENTRY_POINT_STRIDE) {
            let len = (values.len() - start).min(ENTRY_POINT_STRIDE * 2);
            block.decode_range_into(start, len, &mut out).unwrap();
            prop_assert_eq!(&out, &full[start..start + len]);
        }
    }

    #[test]
    fn pfor_delta_range_decode_consistent(values in value_vec(), b in 1u8..=16) {
        let block = PforDeltaBlock::encode_with_width(&values, b);
        let full = block.decode();
        let mut out = Vec::new();
        for start in (0..values.len()).step_by(ENTRY_POINT_STRIDE) {
            let len = (values.len() - start).min(ENTRY_POINT_STRIDE + 37);
            block.decode_range_into(start, len, &mut out).unwrap();
            prop_assert_eq!(&out, &full[start..start + len]);
        }
    }

    #[test]
    fn serialization_roundtrips(values in value_vec()) {
        for codec in [
            Codec::Raw,
            Codec::Pfor { width: 8 },
            Codec::PforDelta { width: 8 },
            Codec::Pdict { width: 8 },
        ] {
            let block = CompressedBlock::encode(&values, codec);
            let back = CompressedBlock::from_bytes(&block.to_bytes()).unwrap();
            prop_assert_eq!(&back, &block);
        }
    }

    /// Deserialization must never panic on arbitrary bytes — corrupt input
    /// yields an error, not UB or an abort.
    #[test]
    fn from_bytes_never_panics(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = CompressedBlock::from_bytes(&data);
    }

    /// Deserializing a truncated valid block must fail or produce the same
    /// values, never garbage.
    #[test]
    fn truncated_blocks_fail_cleanly(values in value_vec(), cut_frac in 0.0f64..1.0) {
        let bytes = CompressedBlock::encode(&values, Codec::Pfor { width: 8 }).to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(CompressedBlock::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Compressed size accounting is an upper bound on what serialization
    /// actually produces (within the per-section length words).
    #[test]
    fn bits_per_value_sane(values in prop::collection::vec(0u32..200, 1..2000)) {
        let block = PforBlock::encode_with_width(&values, 8);
        prop_assert!(block.bits_per_value() >= 8.0);
        prop_assert!(block.bits_per_value() < 32.0 + 200.0 / values.len() as f64 * 8.0);
    }
}

/// Adversarial value shapes for the bitpack kernels: all-zero (every word
/// identical), max-value (every code saturates its width), alternating
/// extremes (exception-heavy PFOR blocks look like this after encoding),
/// and arbitrary noise. Lengths deliberately straddle the 32-value group
/// boundary so both the unrolled body and the generic tail are exercised.
fn kernel_values() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        prop::collection::vec(Just(0u32), 0..300),
        prop::collection::vec(Just(u32::MAX), 0..300),
        (0usize..300).prop_map(|n| (0..n)
            .map(|i| if i % 2 == 0 { u32::MAX } else { 0 })
            .collect()),
        prop::collection::vec(any::<u32>(), 0..300),
    ]
}

proptest! {
    /// Every per-bit-width unrolled kernel reconstructs exactly what the
    /// generic oracle does, for every width — the correctness contract of
    /// the `BENCH_bitpack.json` speedups.
    #[test]
    fn unrolled_kernels_match_generic_oracle(values in kernel_values(), b in 1u8..=32) {
        let packed = bitpack::pack(&values, b);
        let mut fast = Vec::new();
        let mut oracle = Vec::new();
        bitpack::unpack(&packed, values.len(), b, &mut fast);
        bitpack::unpack_generic(&packed, values.len(), b, &mut oracle);
        prop_assert_eq!(&fast, &oracle, "width {}", b);
        // And both equal the masked input (pack truncates to b bits).
        let expect: Vec<u32> = values
            .iter()
            .map(|&v| (u64::from(v) & bitpack::mask(b)) as u32)
            .collect();
        prop_assert_eq!(fast, expect, "width {}", b);
    }

    /// Range decoding through the kernels agrees with the oracle at every
    /// start alignment (group-aligned starts take the unrolled path,
    /// unaligned starts the generic fallback).
    #[test]
    fn unrolled_range_matches_generic_oracle(
        values in kernel_values(),
        b in 1u8..=32,
        start_frac in 0.0f64..1.0,
    ) {
        let start = ((values.len() as f64) * start_frac) as usize;
        let len = values.len() - start;
        let packed = bitpack::pack(&values, b);
        let mut fast = Vec::new();
        let mut oracle = Vec::new();
        bitpack::unpack_range(&packed, start, len, b, &mut fast);
        bitpack::unpack_range_generic(&packed, start, len, b, &mut oracle);
        prop_assert_eq!(fast, oracle, "width {} start {}", b, start);
    }

    /// Exception-heavy PFOR blocks (the Figure 3 worst case) decode
    /// identically through the kernel-backed unpack.
    #[test]
    fn exception_heavy_pfor_roundtrips_through_kernels(
        exc_rate in 0.0f64..1.0,
        b in 1u8..=24,
        n in 0usize..800,
    ) {
        let values: Vec<u32> = (0..n)
            .map(|i| {
                let r = (i as f64 * 0.618_033_988_749) % 1.0;
                if r < exc_rate { 1_000_000 + i as u32 } else { (i % 100) as u32 }
            })
            .collect();
        let block = PforBlock::encode_with_width(&values, b);
        prop_assert_eq!(block.decode(), values);
    }
}
