//! NAIVE frame-of-reference decompression — the baseline of Figure 3.
//!
//! The naive scheme marks exception slots with a sentinel code `MAXCODE =
//! 2^b - 1` and tests for it inside the decode loop:
//!
//! ```text
//! for i in 0..n:
//!     if code[i] < MAXCODE: out[i] = base + code[i]
//!     else:                 out[i] = next exception value
//! ```
//!
//! The data-dependent `if` defeats loop pipelining, and once the exception
//! rate approaches 50 % the branch becomes unpredictable — Figure 3 shows the
//! branch miss rate peaking there while throughput collapses. This module
//! exists purely as the measured baseline; the production path is
//! [`crate::pfor`].

use crate::bitpack;
use crate::branch::TwoBitPredictor;

/// A block compressed in the NAIVE sentinel format.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBlock {
    n: u32,
    b: u8,
    base: u32,
    packed: Vec<u64>,
    exceptions: Vec<u32>,
}

impl NaiveBlock {
    /// Compresses `values` as `b`-bit offsets from `base`, using the
    /// top code `2^b - 1` as the exception sentinel.
    ///
    /// # Panics
    /// Panics if `b` is outside `1..=24`.
    pub fn encode(values: &[u32], b: u8, base: u32) -> Self {
        assert!((1..=24).contains(&b), "NAIVE width {b} outside 1..=24");
        let maxcode = (1u64 << b) - 1;
        let mut codes = Vec::with_capacity(values.len());
        let mut exceptions = Vec::new();
        for &v in values {
            let offset = u64::from(v.wrapping_sub(base));
            if offset < maxcode {
                codes.push(offset as u32);
            } else {
                codes.push(maxcode as u32);
                exceptions.push(v);
            }
        }
        NaiveBlock {
            n: values.len() as u32,
            b,
            base,
            packed: bitpack::pack(&codes, b),
            exceptions,
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of exception values.
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Fraction of values stored as exceptions.
    pub fn exception_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.exceptions.len() as f64 / self.n as f64
        }
    }

    /// Decompresses with the paper's NAIVE if-then-else loop.
    ///
    /// Deliberately *not* split into two loops: the point of this routine is
    /// to exhibit the branch-misprediction behaviour of Figure 3.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        let n = self.n as usize;
        let maxcode = ((1u64 << self.b) - 1) as u32;
        let mut codes = Vec::new();
        bitpack::unpack(&self.packed, n, self.b, &mut codes);
        out.clear();
        out.reserve(n);
        let mut j = 0usize;
        for &code in &codes {
            if code < maxcode {
                out.push(self.base.wrapping_add(code));
            } else {
                out.push(self.exceptions[j]);
                j += 1;
            }
        }
    }

    /// Convenience wrapper allocating the output.
    pub fn decode(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// Replays the decode loop's exception-test branch through a two-bit
    /// saturating branch predictor and returns the modelled miss rate in
    /// `[0, 1]`. This regenerates the BMR curve of Figure 3 without CPU
    /// event counters (see DESIGN.md, substitution table).
    pub fn modelled_branch_miss_rate(&self) -> f64 {
        let n = self.n as usize;
        if n == 0 {
            return 0.0;
        }
        let maxcode = ((1u64 << self.b) - 1) as u32;
        let mut codes = Vec::new();
        bitpack::unpack(&self.packed, n, self.b, &mut codes);
        let mut predictor = TwoBitPredictor::default();
        let mut misses = 0usize;
        for &code in &codes {
            let taken = code >= maxcode; // the "exception" branch
            if predictor.predict() != taken {
                misses += 1;
            }
            predictor.update(taken);
        }
        misses as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed() {
        let values: Vec<u32> = (0..1000)
            .map(|i| if i % 13 == 0 { 9_999_999 } else { i % 100 })
            .collect();
        let block = NaiveBlock::encode(&values, 8, 0);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn roundtrip_empty_and_single() {
        assert!(NaiveBlock::encode(&[], 8, 0).decode().is_empty());
        assert_eq!(NaiveBlock::encode(&[5], 8, 0).decode(), vec![5]);
    }

    #[test]
    fn sentinel_value_is_exception() {
        // A value exactly at base + maxcode cannot be coded (sentinel).
        let maxcode = (1u32 << 8) - 1;
        let values = [maxcode, maxcode - 1, 0];
        let block = NaiveBlock::encode(&values, 8, 0);
        assert_eq!(block.exception_count(), 1);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn naive_codeable_range_is_one_smaller_than_pfor() {
        // NAIVE reserves the top code, PFOR does not.
        let values = vec![255u32; 100];
        let naive = NaiveBlock::encode(&values, 8, 0);
        let pfor = crate::pfor::PforBlock::encode(&values, 8, 0);
        assert_eq!(naive.exception_count(), 100);
        assert_eq!(pfor.exception_count(), 0);
    }

    #[test]
    fn branch_miss_rate_low_at_extremes_high_in_middle() {
        // Deterministic pseudo-random exception placement.
        let gen = |rate_pct: u32| -> NaiveBlock {
            let values: Vec<u32> = (0..20_000u32)
                .map(|i| {
                    let h = i.wrapping_mul(2654435761) % 100;
                    if h < rate_pct {
                        1_000_000 + i
                    } else {
                        i % 100
                    }
                })
                .collect();
            NaiveBlock::encode(&values, 8, 0)
        };
        let low = gen(0).modelled_branch_miss_rate();
        let mid = gen(50).modelled_branch_miss_rate();
        let high = gen(100).modelled_branch_miss_rate();
        assert!(low < 0.01, "no exceptions => predictable: {low}");
        assert!(high < 0.01, "all exceptions => predictable: {high}");
        assert!(mid > 0.25, "50% exceptions => chaotic: {mid}");
    }

    #[test]
    fn wrapping_base() {
        let values = [u32::MAX, 3, 7];
        let block = NaiveBlock::encode(&values, 4, u32::MAX - 1);
        assert_eq!(block.decode(), values);
    }
}
