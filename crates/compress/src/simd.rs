//! Runtime-dispatched wide unpack kernels (AVX2) behind the `simd` feature.
//!
//! The unrolled scalar kernels in [`crate::bitpack`] stay the differential
//! oracle; this module adds an 8-lane AVX2 variant of the same two-word
//! extraction and a process-wide switch deciding which one the dispatch in
//! `bitpack::unpack_aligned` (and the BM25 scoring loop in `x100-ir`) uses:
//!
//! * compiled without the `simd` feature, [`simd_available`] is `false` and
//!   every query goes down the scalar path — nothing else changes;
//! * compiled with it, AVX2 support is detected once at runtime, and
//!   [`simd_force_scalar`] can force the scalar path back on (the
//!   forced-fallback tests use this so the scalar kernels stay covered on
//!   SIMD-capable machines).
//!
//! The AVX2 kernel decodes one 32-value group as 4×8 lanes. For a batch of
//! 8 lanes it issues two overlapping unaligned 256-bit loads (the batch's
//! first 32-bit word, and the same plus one word), permutes each lane's
//! `lo`/`hi` word into place with a per-width constant index vector, then
//! applies per-lane variable shifts — x86 variable shifts zero out at
//! counts ≥ 32, which makes the `hi << (32 - 0)` edge case branch-free. A
//! batch may read up to 8 words past the lane it decodes, which can exceed
//! the single padding word [`crate::bitpack::packed_len`] guarantees, so
//! trailing groups whose loads would run off the buffer fall back to the
//! scalar kernel ([`crate::bitpack::unpack`] computes that bound per call).

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, [`simd_active`] reports `false` even on AVX2-capable builds:
/// the scalar kernels run everywhere. Test-only in spirit, but harmless to
/// flip in production — results are bit-identical by construction.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Whether this build can run the wide kernels at all: the `simd` feature
/// is compiled in, the target is x86_64, and the CPU reports AVX2.
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Whether the wide kernels are the currently selected unpack path:
/// [`simd_available`] and not forced back to scalar.
pub fn simd_active() -> bool {
    simd_available() && !FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Forces the scalar kernels even when AVX2 is available (`true`), or
/// restores runtime detection (`false`). Process-wide; used by the
/// forced-fallback and differential tests.
pub fn simd_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) use avx2::unpack_groups;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::simd_active;
    use crate::bitpack::GROUP_SIZE;

    /// Per-(width, batch) lane constants: for each of the 8 lanes, which
    /// 32-bit word (relative to the batch's first word) holds the low part,
    /// and the right/left shift counts assembling the value from `lo`/`hi`.
    #[derive(Clone, Copy)]
    struct Lanes {
        idx: [u32; 8],
        shr: [u32; 8],
        shl: [u32; 8],
    }

    /// `LANES[b - 1][j]` drives batch `j` (lanes `j*8 .. j*8+8`) of a
    /// `b`-bit group. Lane `l` of batch `j` starts at bit `(j*8 + l) * b`
    /// within the group; all three constants fold out of that.
    static LANES: [[Lanes; 4]; 32] = build_lanes();

    const fn build_lanes() -> [[Lanes; 4]; 32] {
        let zero = Lanes {
            idx: [0; 8],
            shr: [0; 8],
            shl: [0; 8],
        };
        let mut t = [[zero; 4]; 32];
        let mut b = 1usize;
        while b <= 32 {
            let mut j = 0usize;
            while j < 4 {
                let base_bit = j * 8 * b;
                let base_w = base_bit >> 5;
                let mut l = 0usize;
                while l < 8 {
                    let bit = base_bit + l * b;
                    let off = (bit & 31) as u32;
                    t[b - 1][j].idx[l] = ((bit >> 5) - base_w) as u32;
                    t[b - 1][j].shr[l] = off;
                    // 32 when off == 0: x86 variable shifts produce 0 at
                    // counts >= 32, exactly the "no hi contribution" case.
                    t[b - 1][j].shl[l] = 32 - off;
                    l += 1;
                }
                j += 1;
            }
            b += 1;
        }
        t
    }

    /// Decodes a prefix of the `groups` aligned groups starting at absolute
    /// group `first_group` into `out`, returning how many groups it took.
    /// Returns 0 (and touches nothing) when the wide path is inactive;
    /// stops early where the overlapping loads would run past `buf`, so the
    /// caller's scalar kernel finishes the tail groups.
    pub(crate) fn unpack_groups(
        buf: &[u64],
        first_group: usize,
        groups: usize,
        b: u8,
        out: &mut [u32],
    ) -> usize {
        if groups == 0 || !simd_active() {
            return 0;
        }
        let b = b as usize;
        // Batch j=3 of group g loads 8 words at 32-bit word
        // `g*b + ((24*b) >> 5) + 1`; the last word touched is that + 7.
        // Group g is safe iff that stays within the 2*buf.len() words.
        let words32 = buf.len() * 2;
        let Some(avail) = (words32 - 1).checked_sub(8 + ((24 * b) >> 5)) else {
            return 0;
        };
        let g_last = avail / b;
        if g_last < first_group {
            return 0;
        }
        let n = groups.min(g_last - first_group + 1);
        // SAFETY: simd_active() established AVX2 support; the group bound
        // above keeps every load inside `buf`; `out` holds `groups` full
        // groups by the caller's contract.
        unsafe { unpack_groups_avx2(buf, first_group, n, b, out) };
        n
    }

    /// # Safety
    /// Requires AVX2, `out.len() >= n * GROUP_SIZE`, and every 32-bit word
    /// `g*b + ((24*b) >> 5) + 8` for `g` in `first_group .. first_group+n`
    /// in bounds of `buf` (checked by [`unpack_groups`]).
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_groups_avx2(
        buf: &[u64],
        first_group: usize,
        n: usize,
        b: usize,
        out: &mut [u32],
    ) {
        use core::arch::x86_64::*;
        let words = buf.as_ptr() as *const i32;
        let mask = _mm256_set1_epi32((((1u64 << b) - 1) & 0xFFFF_FFFF) as u32 as i32);
        let lanes = &LANES[b - 1];
        for g in 0..n {
            let w0 = (first_group + g) * b;
            let dst = out.as_mut_ptr().add(g * GROUP_SIZE);
            for (j, l) in lanes.iter().enumerate() {
                let base_w = w0 + ((j * 8 * b) >> 5);
                let v0 = _mm256_loadu_si256(words.add(base_w) as *const __m256i);
                let v1 = _mm256_loadu_si256(words.add(base_w + 1) as *const __m256i);
                let idx = _mm256_loadu_si256(l.idx.as_ptr() as *const __m256i);
                let lo = _mm256_permutevar8x32_epi32(v0, idx);
                let hi = _mm256_permutevar8x32_epi32(v1, idx);
                let shr = _mm256_loadu_si256(l.shr.as_ptr() as *const __m256i);
                let shl = _mm256_loadu_si256(l.shl.as_ptr() as *const __m256i);
                let val = _mm256_or_si256(_mm256_srlv_epi32(lo, shr), _mm256_sllv_epi32(hi, shl));
                _mm256_storeu_si256(dst.add(j * 8) as *mut __m256i, _mm256_and_si256(val, mask));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_round_trips() {
        assert_eq!(simd_active(), simd_available());
        simd_force_scalar(true);
        assert!(!simd_active());
        simd_force_scalar(false);
        assert_eq!(simd_active(), simd_available());
    }

    #[cfg(not(feature = "simd"))]
    #[test]
    fn unavailable_without_feature() {
        assert!(!simd_available());
    }
}
