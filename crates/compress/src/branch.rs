//! A two-bit saturating-counter branch-predictor model.
//!
//! The paper measured branch misprediction rates with CPU event counters
//! (§2.1, footnote 1). We have no portable access to those, so Figure 3's
//! BMR series is regenerated with the textbook two-bit saturating counter —
//! the canonical model of a per-site dynamic predictor. Its qualitative
//! behaviour matches real hardware for this workload: a branch that is
//! almost-always or almost-never taken predicts near-perfectly, while a
//! branch taken ~50 % of the time at random mispredicts close to half the
//! time.

/// Predictor state: a saturating counter over four states.
#[allow(clippy::enum_variant_names)] // the textbook state names all end in Taken
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum State {
    #[default]
    StrongNotTaken,
    WeakNotTaken,
    WeakTaken,
    StrongTaken,
}

/// Two-bit saturating branch predictor for a single branch site.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoBitPredictor {
    state: State,
}

impl TwoBitPredictor {
    /// Creates a predictor in the strongly-not-taken state (exceptions are
    /// assumed rare, matching how a cold BTB entry behaves for this loop).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current prediction: `true` = taken.
    #[inline]
    pub fn predict(&self) -> bool {
        matches!(self.state, State::WeakTaken | State::StrongTaken)
    }

    /// Trains the predictor with the actual outcome.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        use State::*;
        self.state = match (self.state, taken) {
            (StrongNotTaken, false) => StrongNotTaken,
            (StrongNotTaken, true) => WeakNotTaken,
            (WeakNotTaken, false) => StrongNotTaken,
            (WeakNotTaken, true) => WeakTaken,
            (WeakTaken, false) => WeakNotTaken,
            (WeakTaken, true) => StrongTaken,
            (StrongTaken, false) => WeakTaken,
            (StrongTaken, true) => StrongTaken,
        };
    }

    /// Replays a branch-outcome trace, returning the miss rate in `[0, 1]`.
    pub fn miss_rate(trace: impl IntoIterator<Item = bool>) -> f64 {
        let mut p = TwoBitPredictor::new();
        let mut total = 0usize;
        let mut misses = 0usize;
        for taken in trace {
            total += 1;
            if p.predict() != taken {
                misses += 1;
            }
            p.update(taken);
        }
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_converges() {
        // After warm-up, an always-taken branch never mispredicts.
        let rate = TwoBitPredictor::miss_rate((0..1000).map(|_| true));
        assert!(rate < 0.01, "{rate}");
    }

    #[test]
    fn never_taken_is_perfect_from_cold() {
        let rate = TwoBitPredictor::miss_rate((0..1000).map(|_| false));
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn alternating_pattern_defeats_two_bit_counter() {
        // T,N,T,N... is the classic worst-ish case for a 2-bit counter.
        let rate = TwoBitPredictor::miss_rate((0..10_000).map(|i| i % 2 == 0));
        assert!(rate > 0.4, "{rate}");
    }

    #[test]
    fn random_half_taken_misses_about_half() {
        // xorshift-ish deterministic pseudo-random trace.
        let mut x = 0x243F6A88u32;
        let trace: Vec<bool> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x & 1 == 1
            })
            .collect();
        let rate = TwoBitPredictor::miss_rate(trace);
        assert!((0.35..0.65).contains(&rate), "{rate}");
    }

    #[test]
    fn rare_taken_stays_cheap() {
        let rate = TwoBitPredictor::miss_rate((0..100_000).map(|i| i % 100 == 0));
        assert!(rate < 0.05, "{rate}");
    }

    #[test]
    fn empty_trace_is_zero() {
        assert_eq!(TwoBitPredictor::miss_rate(std::iter::empty()), 0.0);
    }
}
