//! Branch-free bit packing of small integer codes.
//!
//! PFOR code sections are "densely packed" (Figure 2): `n` codes of `b` bits
//! each occupy `ceil(n*b/64)` 64-bit words. The unpack loop is written
//! without any per-value `if`, in line with the paper's guideline that
//! "operations for (de)compressing subsequent values must be independent and
//! expressible as a simple loop without any if-then-else": every value is
//! extracted with an unconditional two-word read (the buffer is padded with
//! one trailing word to make this safe).

/// Maximum supported code width in bits. The paper uses 1..=24; we allow up
/// to 32 so that "uncompressed" round-trips are expressible too.
pub const MAX_WIDTH: u8 = 32;

/// Number of `u64` words needed to hold `n` codes of `b` bits, **plus one
/// padding word** that lets the unpacker read two words unconditionally.
pub fn packed_len(n: usize, b: u8) -> usize {
    if n == 0 {
        return 1;
    }
    let bits = n * b as usize;
    bits.div_ceil(64) + 1
}

/// Packs `values[i] & mask(b)` into a fresh padded buffer.
///
/// Values wider than `b` bits are truncated — callers (the PFOR encoders)
/// guarantee values fit.
///
/// # Panics
/// Panics if `b == 0` or `b > MAX_WIDTH`.
pub fn pack(values: &[u32], b: u8) -> Vec<u64> {
    assert!(
        (1..=MAX_WIDTH).contains(&b),
        "bit width {b} out of range 1..=32"
    );
    let mut buf = vec![0u64; packed_len(values.len(), b)];
    let mask = mask(b);
    for (i, &v) in values.iter().enumerate() {
        let bit = i * b as usize;
        let word = bit >> 6;
        let off = (bit & 63) as u32;
        let val = (u64::from(v) & mask) << off;
        buf[word] |= val;
        // Spill into the next word when the code straddles a boundary.
        // `checked_shr` keeps this branch-free at the ISA level on x86
        // (compiles to a conditional move); correctness is what matters here.
        let spill_shift = 64 - off;
        if spill_shift < 64 {
            buf[word + 1] |= (u64::from(v) & mask).checked_shr(spill_shift).unwrap_or(0);
        }
    }
    buf
}

/// Unpacks `n` codes of `b` bits from `buf` into `out` (cleared first).
///
/// The loop body is free of data-dependent branches: each value is
/// reconstructed from an unconditional two-word read. This is the LOOP1
/// building block of patched decompression.
///
/// # Panics
/// Panics if `buf` is shorter than [`packed_len`]`(n, b)` or `b` is out of
/// range.
pub fn unpack(buf: &[u64], n: usize, b: u8, out: &mut Vec<u32>) {
    assert!(
        (1..=MAX_WIDTH).contains(&b),
        "bit width {b} out of range 1..=32"
    );
    assert!(
        buf.len() >= packed_len(n, b),
        "packed buffer too short: {} < {}",
        buf.len(),
        packed_len(n, b)
    );
    out.clear();
    out.reserve(n);
    let m = mask(b);
    for i in 0..n {
        let bit = i * b as usize;
        let word = bit >> 6;
        let off = (bit & 63) as u32;
        // Two-word branchless read; the padding word makes word+1 valid.
        let lo = buf[word] >> off;
        let hi = buf[word + 1].checked_shl(64 - off).unwrap_or(0);
        out.push(((lo | hi) & m) as u32);
    }
}

/// Unpacks codes `start..start + len` of `b` bits from `buf` into `out`
/// (cleared first). Range decoding at entry-point granularity uses this to
/// avoid touching the whole code section.
pub fn unpack_range(buf: &[u64], start: usize, len: usize, b: u8, out: &mut Vec<u32>) {
    assert!(
        (1..=MAX_WIDTH).contains(&b),
        "bit width {b} out of range 1..=32"
    );
    assert!(
        buf.len() >= packed_len(start + len, b),
        "packed buffer too short for range end {}",
        start + len
    );
    out.clear();
    out.reserve(len);
    let m = mask(b);
    for i in start..start + len {
        let bit = i * b as usize;
        let word = bit >> 6;
        let off = (bit & 63) as u32;
        let lo = buf[word] >> off;
        let hi = buf[word + 1].checked_shl(64 - off).unwrap_or(0);
        out.push(((lo | hi) & m) as u32);
    }
}

/// Extracts the single code at position `i`.
///
/// Used by entry-point based range decoding; the bulk path is [`unpack`].
#[inline]
pub fn get(buf: &[u64], i: usize, b: u8) -> u32 {
    let bit = i * b as usize;
    let word = bit >> 6;
    let off = (bit & 63) as u32;
    let lo = buf[word] >> off;
    let hi = buf[word + 1].checked_shl(64 - off).unwrap_or(0);
    ((lo | hi) & mask(b)) as u32
}

/// The low-`b`-bits mask.
#[inline]
pub fn mask(b: u8) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32], b: u8) {
        let packed = pack(values, b);
        let mut out = Vec::new();
        unpack(&packed, values.len(), b, &mut out);
        let expect: Vec<u32> = values
            .iter()
            .map(|&v| (u64::from(v) & mask(b)) as u32)
            .collect();
        assert_eq!(out, expect, "width {b}");
    }

    #[test]
    fn roundtrip_every_width() {
        let values: Vec<u32> = (0..300u32)
            .map(|i| i.wrapping_mul(2654435761) % 97)
            .collect();
        for b in 1..=32u8 {
            roundtrip(&values, b);
        }
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[], 7);
    }

    #[test]
    fn roundtrip_single_value() {
        roundtrip(&[42], 8);
        roundtrip(&[1], 1);
    }

    #[test]
    fn roundtrip_max_values() {
        for b in 1..=32u8 {
            let max = (mask(b)) as u32;
            roundtrip(&[max, 0, max, max, 0], b);
        }
    }

    #[test]
    fn truncates_oversized_values() {
        let packed = pack(&[0xFFFF_FFFF], 4);
        let mut out = Vec::new();
        unpack(&packed, 1, 4, &mut out);
        assert_eq!(out, vec![0xF]);
    }

    #[test]
    fn get_matches_unpack() {
        let values: Vec<u32> = (0..257).map(|i| (i * 31) % 1000).collect();
        for b in [3u8, 8, 10, 17, 24] {
            let packed = pack(&values, b);
            let mut out = Vec::new();
            unpack(&packed, values.len(), b, &mut out);
            for (i, &expect) in out.iter().enumerate() {
                assert_eq!(get(&packed, i, b), expect, "i={i} b={b}");
            }
        }
    }

    #[test]
    fn packed_len_includes_padding() {
        assert_eq!(packed_len(0, 8), 1);
        assert_eq!(packed_len(8, 8), 2); // 64 bits data + 1 pad
        assert_eq!(packed_len(9, 8), 3); // 72 bits -> 2 words + pad
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_rejected() {
        pack(&[1], 0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_checks_buffer_length() {
        let mut out = Vec::new();
        unpack(&[0u64], 100, 8, &mut out);
    }
}
