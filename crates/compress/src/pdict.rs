//! PDICT — patched dictionary compression (§2.1).
//!
//! PDICT maps frequent values to small `b`-bit dictionary codes; infrequent
//! values become exceptions handled with the same positional linked-list
//! patching as PFOR. Decompression is again two branch-free loops — LOOP1 is
//! a gather through the dictionary (`out[i] = dict[code[i]]`), LOOP2 patches
//! the exception slots.
//!
//! The dictionary is padded to the full `2^b` entries so that the gather in
//! LOOP1 can run unconditionally even over exception slots (whose code words
//! hold gap values, not dictionary indexes).

use std::collections::HashMap;

use crate::bitpack;
use crate::patch::{build_entry_points, plan_exception_positions, EntryPoint, NO_EXCEPTION};
use crate::CodecError;

pub use crate::patch::ENTRY_POINT_STRIDE;

/// Maximum PDICT code width. Capped below PFOR's 24 to bound the padded
/// dictionary at 65 536 entries; IR columns (quantized scores, `tf`) need
/// at most a few thousand distinct values anyway.
pub const MAX_PDICT_WIDTH: u8 = 16;

/// A PDICT-compressed block of `u32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct PdictBlock {
    n: u32,
    b: u8,
    first_exception: u32,
    packed: Vec<u64>,
    exceptions: Vec<u32>,
    entry_points: Vec<EntryPoint>,
    /// Padded to `2^b` entries.
    dict: Vec<u32>,
}

impl PdictBlock {
    /// Compresses `values` with a dictionary of at most `2^b` entries built
    /// from the most frequent values.
    ///
    /// # Panics
    /// Panics if `b` is outside `1..=16`.
    pub fn encode(values: &[u32], b: u8) -> Self {
        assert!(
            (1..=MAX_PDICT_WIDTH).contains(&b),
            "PDICT width {b} outside 1..=16"
        );
        let dict_cap = 1usize << b;
        let max_gap = dict_cap - 1;

        // Frequency count, then keep the most frequent values.
        let mut freq: HashMap<u32, u32> = HashMap::new();
        for &v in values {
            *freq.entry(v).or_insert(0) += 1;
        }
        let mut by_freq: Vec<(u32, u32)> = freq.into_iter().collect();
        // Sort by descending frequency, ties by value for determinism.
        by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_freq.truncate(dict_cap);
        let mut dict: Vec<u32> = by_freq.iter().map(|&(v, _)| v).collect();
        let codes_of: HashMap<u32, u32> = dict
            .iter()
            .enumerate()
            .map(|(c, &v)| (v, c as u32))
            .collect();
        dict.resize(dict_cap, 0); // pad so LOOP1's gather never goes out of bounds

        let natural: Vec<bool> = values.iter().map(|v| !codes_of.contains_key(v)).collect();
        let exc_positions = plan_exception_positions(&natural, max_gap);

        let mut codes: Vec<u32> = Vec::with_capacity(values.len());
        let mut exceptions: Vec<u32> = Vec::with_capacity(exc_positions.len());
        let mut exc_idx = 0usize;
        let mut next_exc = exc_positions.first().copied();
        for (i, &v) in values.iter().enumerate() {
            if next_exc == Some(i as u32) {
                let gap = exc_positions
                    .get(exc_idx + 1)
                    .map(|&nx| nx - i as u32)
                    .unwrap_or(1);
                codes.push(gap);
                exceptions.push(v);
                exc_idx += 1;
                next_exc = exc_positions.get(exc_idx).copied();
            } else {
                codes.push(codes_of[&v]);
            }
        }

        let first_exception = exc_positions.first().copied().unwrap_or(NO_EXCEPTION);
        let entry_points = build_entry_points(values.len(), &exc_positions);
        PdictBlock {
            n: values.len() as u32,
            b,
            first_exception,
            packed: bitpack::pack(&codes, b),
            exceptions,
            entry_points,
            dict,
        }
    }

    /// Reassembles a block from its serialized parts (see [`crate::block`]).
    pub(crate) fn from_raw_parts(
        n: u32,
        b: u8,
        first_exception: u32,
        packed: Vec<u64>,
        exceptions: Vec<u32>,
        entry_points: Vec<EntryPoint>,
        dict: Vec<u32>,
    ) -> Self {
        PdictBlock {
            n,
            b,
            first_exception,
            packed,
            exceptions,
            entry_points,
            dict,
        }
    }

    /// The packed code section.
    pub fn packed_codes(&self) -> &[u64] {
        &self.packed
    }

    /// Position of the first exception, or [`NO_EXCEPTION`].
    pub fn first_exception(&self) -> u32 {
        self.first_exception
    }

    /// Entry points (one per [`ENTRY_POINT_STRIDE`] values).
    pub fn entry_points(&self) -> &[EntryPoint] {
        &self.entry_points
    }

    /// Exception values in position order.
    pub fn exceptions(&self) -> &[u32] {
        &self.exceptions
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code width in bits.
    pub fn width(&self) -> u8 {
        self.b
    }

    /// Number of exceptions.
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Fraction of values stored as exceptions.
    pub fn exception_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.exceptions.len() as f64 / self.n as f64
        }
    }

    /// The (padded) dictionary.
    pub fn dict(&self) -> &[u32] {
        &self.dict
    }

    /// Compressed size in bytes: header, codes, exceptions, entry points and
    /// the *used* dictionary.
    pub fn compressed_bytes(&self) -> usize {
        let header = 4 + 1 + 4;
        let codes = (self.n as usize * self.b as usize).div_ceil(8);
        let exceptions = self.exceptions.len() * 4;
        let entries = self.entry_points.len() * 8;
        let dict = self.dict.len() * 4;
        header + codes + exceptions + entries + dict
    }

    /// Effective bits per encoded value.
    pub fn bits_per_value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.compressed_bytes() as f64 * 8.0 / self.n as f64
        }
    }

    /// Decompresses the whole block: branch-free dictionary gather, then the
    /// patch loop (which reads gaps from the raw code words).
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        let n = self.n as usize;
        let mut codes = Vec::new();
        bitpack::unpack(&self.packed, n, self.b, &mut codes);
        out.clear();
        out.reserve(n);
        // LOOP1: gather through the padded dictionary — no bounds branch
        // because codes (including gap values) are < 2^b == dict.len().
        out.extend(codes.iter().map(|&c| self.dict[c as usize]));
        // LOOP2: patch.
        let mut i = self.first_exception as usize;
        for &exc in &self.exceptions {
            let gap = codes[i] as usize;
            out[i] = exc;
            i += gap;
        }
    }

    /// Convenience wrapper allocating the output.
    pub fn decode(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// Decompresses `len` values starting at entry-aligned `start`.
    pub fn decode_range_into(
        &self,
        start: usize,
        len: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), CodecError> {
        if !start.is_multiple_of(ENTRY_POINT_STRIDE) {
            return Err(CodecError::Misaligned {
                position: start,
                stride: ENTRY_POINT_STRIDE,
            });
        }
        let end = start.saturating_add(len);
        if end > self.n as usize {
            return Err(CodecError::OutOfBounds {
                position: end,
                len: self.n as usize,
            });
        }
        let mut codes = Vec::new();
        bitpack::unpack_range(&self.packed, start, len, self.b, &mut codes);
        out.clear();
        out.reserve(len);
        out.extend(codes.iter().map(|&c| self.dict[c as usize]));
        if len == 0 {
            return Ok(());
        }
        let entry = self.entry_points[start / ENTRY_POINT_STRIDE];
        let mut i = entry.next_exception as usize;
        let mut rank = entry.exception_rank as usize;
        // Bound by the exception count as well as the range end: the last
        // exception's code word holds a filler gap, not a real link.
        while rank < self.exceptions.len() && i < end {
            let gap = codes[i - start] as usize;
            out[i - start] = self.exceptions[rank];
            rank += 1;
            i += gap;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_skewed_values() {
        // Zipf-ish: a few very frequent values, a long tail of rare ones.
        let values: Vec<u32> = (0..5000u32)
            .map(|i| if i % 10 < 8 { i % 4 } else { 1_000_000 + i })
            .collect();
        let block = PdictBlock::encode(&values, 8);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn frequent_values_are_coded_not_exceptions() {
        let values: Vec<u32> = (0..1000u32).map(|i| i % 3).collect();
        let block = PdictBlock::encode(&values, 2);
        assert_eq!(block.exception_count(), 0);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn rare_values_become_exceptions() {
        // b=1: the dictionary holds only the two most frequent values (7 and
        // 8), so both rare values are exceptions — plus the compulsory chain
        // entries that bridge them (max gap is 1 for b=1).
        let mut values: Vec<u32> = (0..500u32).map(|i| 7 + (i % 2)).collect();
        values[100] = 123_456;
        values[300] = 654_321;
        let block = PdictBlock::encode(&values, 1);
        assert!(block.exception_count() >= 2);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn roundtrip_empty_and_single() {
        assert!(PdictBlock::encode(&[], 4).decode().is_empty());
        assert_eq!(PdictBlock::encode(&[9], 4).decode(), vec![9]);
    }

    #[test]
    fn more_distinct_values_than_dict_entries() {
        let values: Vec<u32> = (0..600u32).collect(); // 600 distinct, dict 16
        let block = PdictBlock::encode(&values, 4);
        assert_eq!(block.decode(), values);
        assert!(block.exception_rate() > 0.9);
    }

    #[test]
    fn decode_range_matches_full() {
        let values: Vec<u32> = (0..1500u32)
            .map(|i| if i % 5 == 0 { 888_888 + i } else { i % 7 })
            .collect();
        let block = PdictBlock::encode(&values, 3);
        let full = block.decode();
        assert_eq!(full, values);
        let mut out = Vec::new();
        for start in (0..values.len()).step_by(ENTRY_POINT_STRIDE) {
            let len = (values.len() - start).min(200);
            block.decode_range_into(start, len, &mut out).unwrap();
            assert_eq!(out, &full[start..start + len], "start={start}");
        }
    }

    #[test]
    fn deterministic_dictionary_order() {
        let values = [5u32, 5, 3, 3, 9, 9, 1];
        let a = PdictBlock::encode(&values, 2);
        let b = PdictBlock::encode(&values, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn compressed_smaller_than_raw_for_skewed_data() {
        let values: Vec<u32> = (0..100_000u32).map(|i| i % 16).collect();
        let block = PdictBlock::encode(&values, 4);
        assert!(block.compressed_bytes() < values.len() * 4 / 4);
    }
}
