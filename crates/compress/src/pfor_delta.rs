//! PFOR-DELTA — PFOR over the differences of subsequent values (§2.1).
//!
//! "PFOR-DELTA encodes the differences between subsequent values in a column
//! with PFOR." It is the codec of choice for the partially ordered `docid`
//! column of the inverted index: consecutive document ids in a term's
//! posting list are close together, so their deltas are small integers that
//! compress to ~8 bits (the paper reaches 11.98 bits/tuple from 32).
//!
//! To preserve the fine-granularity range access of the block format, the
//! running value at every [`ENTRY_POINT_STRIDE`]-aligned position is kept as
//! a **restart value**, so a range decode never has to prefix-sum from the
//! start of the block.

use crate::pfor::{PforBlock, ENTRY_POINT_STRIDE, MAX_PFOR_WIDTH};
use crate::CodecError;

/// A PFOR-DELTA-compressed block of `u32` values.
///
/// Deltas use wrapping arithmetic, so arbitrary (not only sorted) inputs
/// round-trip; sorted inputs are simply where the codec pays off.
#[derive(Debug, Clone, PartialEq)]
pub struct PforDeltaBlock {
    inner: PforBlock,
    /// `values[k * ENTRY_POINT_STRIDE]` for each stride — decode restarts.
    restarts: Vec<u32>,
}

impl PforDeltaBlock {
    /// Compresses `values`, choosing delta width and base automatically.
    pub fn encode_auto(values: &[u32]) -> Self {
        let deltas = to_deltas(values);
        let (b, base) = crate::pfor::choose_parameters(&deltas);
        Self::from_deltas(values, &deltas, b, base)
    }

    /// Compresses `values` with a fixed code width (the paper uses 8 bits
    /// for `docid` deltas), choosing the base automatically.
    pub fn encode_with_width(values: &[u32], b: u8) -> Self {
        assert!(
            (1..=MAX_PFOR_WIDTH).contains(&b),
            "PFOR-DELTA width {b} outside 1..=24"
        );
        let deltas = to_deltas(values);
        let base = crate::pfor::choose_base(&deltas, b);
        Self::from_deltas(values, &deltas, b, base)
    }

    fn from_deltas(values: &[u32], deltas: &[u32], b: u8, base: u32) -> Self {
        let inner = PforBlock::encode(deltas, b, base);
        let restarts = values.iter().step_by(ENTRY_POINT_STRIDE).copied().collect();
        PforDeltaBlock { inner, restarts }
    }

    /// Reassembles a block from its serialized parts (see [`crate::block`]).
    pub(crate) fn from_raw_parts(inner: PforBlock, restarts: Vec<u32>) -> Self {
        PforDeltaBlock { inner, restarts }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Code width in bits.
    pub fn width(&self) -> u8 {
        self.inner.width()
    }

    /// Number of exceptions in the underlying delta stream.
    pub fn exception_count(&self) -> usize {
        self.inner.exception_count()
    }

    /// Fraction of deltas stored as exceptions.
    pub fn exception_rate(&self) -> f64 {
        self.inner.exception_rate()
    }

    /// The underlying PFOR block over deltas.
    pub fn inner(&self) -> &PforBlock {
        &self.inner
    }

    /// Restart values (one per entry-point stride).
    pub fn restarts(&self) -> &[u32] {
        &self.restarts
    }

    /// Compressed size in bytes, including restart values.
    pub fn compressed_bytes(&self) -> usize {
        self.inner.compressed_bytes() + self.restarts.len() * 4
    }

    /// Effective bits per encoded value.
    pub fn bits_per_value(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.compressed_bytes() as f64 * 8.0 / self.len() as f64
        }
    }

    /// Decompresses the whole block: patched PFOR decode of the deltas,
    /// then a prefix sum. Both loops are branch-free.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        self.inner.decode_into(out);
        let mut acc = 0u32;
        for v in out.iter_mut() {
            acc = acc.wrapping_add(*v);
            *v = acc;
        }
    }

    /// Convenience wrapper allocating the output.
    pub fn decode(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// Decompresses `len` values starting at entry-aligned `start`, using
    /// the restart value to seed the prefix sum.
    pub fn decode_range_into(
        &self,
        start: usize,
        len: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), CodecError> {
        self.inner.decode_range_into(start, len, out)?;
        if len == 0 {
            return Ok(());
        }
        // `start` is stride-aligned (checked by the inner call), so a
        // restart value exists for it.
        let mut acc = self.restarts[start / ENTRY_POINT_STRIDE];
        out[0] = acc;
        for v in out.iter_mut().skip(1) {
            acc = acc.wrapping_add(*v);
            *v = acc;
        }
        Ok(())
    }
}

/// Deltas with `deltas[0] = values[0]` (delta from zero), wrapping.
fn to_deltas(values: &[u32]) -> Vec<u32> {
    let mut deltas = Vec::with_capacity(values.len());
    let mut prev = 0u32;
    for &v in values {
        deltas.push(v.wrapping_sub(prev));
        prev = v;
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sorted_docids() {
        let values: Vec<u32> = (0..5000u32).map(|i| i * 3 + (i % 7)).collect();
        let block = PforDeltaBlock::encode_with_width(&values, 8);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn roundtrip_unsorted_via_wrapping() {
        let values = [100u32, 5, u32::MAX, 0, 17, 17];
        let block = PforDeltaBlock::encode_with_width(&values, 8);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn roundtrip_empty_and_single() {
        assert!(PforDeltaBlock::encode_with_width(&[], 8)
            .decode()
            .is_empty());
        assert_eq!(
            PforDeltaBlock::encode_with_width(&[42], 8).decode(),
            vec![42]
        );
    }

    #[test]
    fn sorted_small_gaps_have_few_exceptions() {
        // Typical posting list: gaps of 1..=16.
        let mut values = Vec::new();
        let mut acc = 0u32;
        for i in 0..10_000u32 {
            acc += 1 + (i % 16);
            values.push(acc);
        }
        let block = PforDeltaBlock::encode_with_width(&values, 8);
        // Every delta (including v[0]'s delta-from-zero, which is small
        // here) fits 8 bits.
        assert_eq!(block.exception_count(), 0);
        assert!(block.bits_per_value() < 9.5, "{}", block.bits_per_value());
    }

    #[test]
    fn beats_plain_pfor_on_sorted_data() {
        let values: Vec<u32> = (0..8192u32).map(|i| 1_000_000 + i * 5).collect();
        let delta = PforDeltaBlock::encode_auto(&values);
        let plain = crate::pfor::PforBlock::encode_auto(&values);
        assert!(
            delta.compressed_bytes() < plain.compressed_bytes(),
            "delta {} vs plain {}",
            delta.compressed_bytes(),
            plain.compressed_bytes()
        );
    }

    #[test]
    fn decode_range_matches_full() {
        let values: Vec<u32> = (0..2000u32)
            .map(|i| i * 2 + if i % 211 == 0 { 100_000 } else { 0 })
            .scan(0u32, |acc, d| {
                *acc = acc.wrapping_add(d);
                Some(*acc)
            })
            .collect();
        let block = PforDeltaBlock::encode_with_width(&values, 8);
        let full = block.decode();
        assert_eq!(full, values);
        let mut out = Vec::new();
        for start in (0..values.len()).step_by(ENTRY_POINT_STRIDE) {
            let len = (values.len() - start).min(300);
            block.decode_range_into(start, len, &mut out).unwrap();
            assert_eq!(out, &full[start..start + len], "start={start}");
        }
    }

    #[test]
    fn decode_range_rejects_misaligned() {
        let block = PforDeltaBlock::encode_with_width(&[1, 2, 3], 8);
        let mut out = Vec::new();
        assert!(block.decode_range_into(7, 1, &mut out).is_err());
    }

    #[test]
    fn restart_count_matches_strides() {
        let values: Vec<u32> = (0..300).collect();
        let block = PforDeltaBlock::encode_with_width(&values, 8);
        assert_eq!(block.restarts().len(), 3);
        assert_eq!(block.restarts()[1], 128);
    }
}
