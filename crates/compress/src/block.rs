//! Serialized compressed-block format — the physical layout of Figure 2.
//!
//! A block is laid out as:
//!
//! ```text
//! +--------+---------------+--------------------------+ - - - +-----------+
//! | header | entry points  | code section (forward)   |  gap  | exceptions|
//! |        |               | + codec-specific aux     |       | (backward)|
//! +--------+---------------+--------------------------+ - - - +-----------+
//! ```
//!
//! The code section is forward-growing and densely packed; the exception
//! section is written at the very end of the block, *growing backwards* —
//! the last exception in encounter order sits closest to the code section,
//! exactly as in the paper's Figure 2. Entry points hold, for every 128
//! values, the offset of the next exception in the code section and its
//! location in the exception section.
//!
//! Deserialization validates the magic number, codec tag and all section
//! bounds, returning [`CodecError`] on corruption — the storage layer's
//! failure-injection tests exercise these paths.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::patch::EntryPoint;
use crate::pdict::PdictBlock;
use crate::pfor::{PforBlock, NO_EXCEPTION};
use crate::pfor_delta::PforDeltaBlock;
use crate::CodecError;

/// Magic number at the start of every serialized block (`X1CB`).
pub const BLOCK_MAGIC: u32 = 0x5831_4342;

/// Codec selection for a column, chosen at index-build time.
///
/// The paper compresses the partially ordered `docid` column with
/// PFOR-DELTA (8-bit codes) and the small-integer `tf` column with PFOR
/// (8-bit codes); quantized score columns suit PDICT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// No compression: values stored as raw little-endian `u32`s.
    Raw,
    /// Patched frame-of-reference with the given code width.
    Pfor {
        /// Code width in bits (1..=24).
        width: u8,
    },
    /// PFOR over deltas of subsequent values.
    PforDelta {
        /// Code width in bits (1..=24).
        width: u8,
    },
    /// Patched dictionary encoding.
    Pdict {
        /// Code width in bits (1..=12); the dictionary holds `2^width` entries.
        width: u8,
    },
}

impl Codec {
    fn tag(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Pfor { .. } => 1,
            Codec::PforDelta { .. } => 2,
            Codec::Pdict { .. } => 3,
        }
    }
}

/// A compressed block in memory: the unit ColumnBM keeps cached in RAM and
/// decompresses *at vector granularity* into the CPU cache.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressedBlock {
    /// Uncompressed values.
    Raw(Vec<u32>),
    /// A [`PforBlock`].
    Pfor(PforBlock),
    /// A [`PforDeltaBlock`].
    PforDelta(PforDeltaBlock),
    /// A [`PdictBlock`].
    Pdict(PdictBlock),
}

impl CompressedBlock {
    /// Compresses `values` with the chosen codec.
    pub fn encode(values: &[u32], codec: Codec) -> Self {
        match codec {
            Codec::Raw => CompressedBlock::Raw(values.to_vec()),
            Codec::Pfor { width } => {
                CompressedBlock::Pfor(PforBlock::encode_with_width(values, width))
            }
            Codec::PforDelta { width } => {
                CompressedBlock::PforDelta(PforDeltaBlock::encode_with_width(values, width))
            }
            Codec::Pdict { width } => CompressedBlock::Pdict(PdictBlock::encode(values, width)),
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        match self {
            CompressedBlock::Raw(v) => v.len(),
            CompressedBlock::Pfor(b) => b.len(),
            CompressedBlock::PforDelta(b) => b.len(),
            CompressedBlock::Pdict(b) => b.len(),
        }
    }

    /// Whether the block holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decompresses all values into `out` (cleared first).
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        match self {
            CompressedBlock::Raw(v) => {
                out.clear();
                out.extend_from_slice(v);
            }
            CompressedBlock::Pfor(b) => b.decode_into(out),
            CompressedBlock::PforDelta(b) => b.decode_into(out),
            CompressedBlock::Pdict(b) => b.decode_into(out),
        }
    }

    /// Decompresses `len` values starting at entry-aligned `start`.
    pub fn decode_range_into(
        &self,
        start: usize,
        len: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), CodecError> {
        match self {
            CompressedBlock::Raw(v) => {
                let end = start.saturating_add(len);
                if end > v.len() {
                    return Err(CodecError::OutOfBounds {
                        position: end,
                        len: v.len(),
                    });
                }
                out.clear();
                out.extend_from_slice(&v[start..end]);
                Ok(())
            }
            CompressedBlock::Pfor(b) => b.decode_range_into(start, len, out),
            CompressedBlock::PforDelta(b) => b.decode_range_into(start, len, out),
            CompressedBlock::Pdict(b) => b.decode_range_into(start, len, out),
        }
    }

    /// In-memory compressed size in bytes (what the buffer manager accounts
    /// and what the simulated disk transfers).
    pub fn compressed_bytes(&self) -> usize {
        match self {
            CompressedBlock::Raw(v) => v.len() * 4,
            CompressedBlock::Pfor(b) => b.compressed_bytes(),
            CompressedBlock::PforDelta(b) => b.compressed_bytes(),
            CompressedBlock::Pdict(b) => b.compressed_bytes(),
        }
    }

    /// Serializes into the Figure-2 physical layout.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(BLOCK_MAGIC);
        match self {
            CompressedBlock::Raw(values) => {
                buf.put_u8(Codec::Raw.tag());
                buf.put_u32_le(values.len() as u32);
                for &v in values {
                    buf.put_u32_le(v);
                }
            }
            CompressedBlock::Pfor(b) => {
                buf.put_u8(Codec::Pfor { width: b.width() }.tag());
                write_pfor(&mut buf, b);
            }
            CompressedBlock::PforDelta(b) => {
                buf.put_u8(Codec::PforDelta { width: b.width() }.tag());
                write_pfor(&mut buf, b.inner());
                buf.put_u32_le(b.restarts().len() as u32);
                for &r in b.restarts() {
                    buf.put_u32_le(r);
                }
            }
            CompressedBlock::Pdict(b) => {
                buf.put_u8(Codec::Pdict { width: b.width() }.tag());
                buf.put_u32_le(b.len() as u32);
                buf.put_u8(b.width());
                buf.put_u32_le(b.first_exception());
                write_entry_points(&mut buf, b.entry_points());
                write_packed(&mut buf, b.packed_codes());
                buf.put_u32_le(b.dict().len() as u32);
                for &d in b.dict() {
                    buf.put_u32_le(d);
                }
                write_exceptions_backward(&mut buf, b.exceptions());
            }
        }
        buf.freeze()
    }

    /// Deserializes and validates a block.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, CodecError> {
        if data.remaining() < 5 {
            return Err(CodecError::Truncated);
        }
        let magic = data.get_u32_le();
        if magic != BLOCK_MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let tag = data.get_u8();
        match tag {
            0 => {
                let n = read_u32(&mut data)? as usize;
                // Bound the pre-allocation by what the buffer can actually
                // hold, so a corrupt length field cannot trigger a giant
                // allocation before the truncation check fires.
                if data.remaining() < n * 4 {
                    return Err(CodecError::Truncated);
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(read_u32(&mut data)?);
                }
                Ok(CompressedBlock::Raw(values))
            }
            1 => Ok(CompressedBlock::Pfor(read_pfor(&mut data)?)),
            2 => {
                let inner = read_pfor(&mut data)?;
                let n_restarts = read_u32(&mut data)? as usize;
                let expected = inner.len().div_ceil(crate::patch::ENTRY_POINT_STRIDE);
                if n_restarts != expected {
                    return Err(CodecError::Corrupt("restart count does not match strides"));
                }
                let mut restarts = Vec::with_capacity(n_restarts);
                for _ in 0..n_restarts {
                    restarts.push(read_u32(&mut data)?);
                }
                Ok(CompressedBlock::PforDelta(PforDeltaBlock::from_raw_parts(
                    inner, restarts,
                )))
            }
            3 => {
                let n = read_u32(&mut data)?;
                let b = read_u8(&mut data)?;
                if !(1..=crate::pdict::MAX_PDICT_WIDTH).contains(&b) {
                    return Err(CodecError::UnsupportedWidth(b));
                }
                let first_exception = read_u32(&mut data)?;
                let entry_points = read_entry_points(&mut data, n as usize)?;
                let packed = read_packed(&mut data, n as usize, b)?;
                let dict_len = read_u32(&mut data)? as usize;
                if dict_len != 1usize << b {
                    return Err(CodecError::Corrupt("PDICT dictionary not padded to 2^b"));
                }
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(read_u32(&mut data)?);
                }
                let exceptions = read_exceptions_backward(&mut data)?;
                validate_first_exception(n, first_exception, &exceptions)?;
                validate_exception_chain(n, b, &packed, first_exception, exceptions.len())?;
                Ok(CompressedBlock::Pdict(PdictBlock::from_raw_parts(
                    n,
                    b,
                    first_exception,
                    packed,
                    exceptions,
                    entry_points,
                    dict,
                )))
            }
            other => Err(CodecError::UnknownCodec(other)),
        }
    }
}

fn write_pfor(buf: &mut BytesMut, b: &PforBlock) {
    buf.put_u32_le(b.len() as u32);
    buf.put_u8(b.width());
    buf.put_u32_le(b.base());
    buf.put_u32_le(b.first_exception());
    write_entry_points(buf, b.entry_points());
    write_packed(buf, b.packed_codes());
    write_exceptions_backward(buf, b.exceptions());
}

fn read_pfor(data: &mut &[u8]) -> Result<PforBlock, CodecError> {
    let n = read_u32(data)?;
    let b = read_u8(data)?;
    if !(1..=crate::pfor::MAX_PFOR_WIDTH).contains(&b) {
        return Err(CodecError::UnsupportedWidth(b));
    }
    let base = read_u32(data)?;
    let first_exception = read_u32(data)?;
    let entry_points = read_entry_points(data, n as usize)?;
    let packed = read_packed(data, n as usize, b)?;
    let exceptions = read_exceptions_backward(data)?;
    validate_first_exception(n, first_exception, &exceptions)?;
    validate_exception_chain(n, b, &packed, first_exception, exceptions.len())?;
    Ok(PforBlock::from_raw_parts(
        n,
        b,
        base,
        first_exception,
        packed,
        exceptions,
        entry_points,
    ))
}

fn validate_first_exception(
    n: u32,
    first_exception: u32,
    exceptions: &[u32],
) -> Result<(), CodecError> {
    if exceptions.is_empty() {
        if first_exception != NO_EXCEPTION {
            return Err(CodecError::Corrupt(
                "first_exception set but exception section empty",
            ));
        }
    } else if first_exception >= n {
        return Err(CodecError::Corrupt("first_exception out of range"));
    }
    Ok(())
}

/// Walks the exception linked list of a deserialized block and verifies it
/// stays inside `0..n`. The hot decode loops are deliberately unchecked
/// (branch-free), so untrusted blocks must prove their chain here — one
/// `O(#exceptions)` pass at load time.
fn validate_exception_chain(
    n: u32,
    b: u8,
    packed: &[u64],
    first_exception: u32,
    num_exceptions: usize,
) -> Result<(), CodecError> {
    if num_exceptions == 0 {
        return Ok(());
    }
    let mut i = first_exception as u64;
    // The final exception's code word is a filler; only the links between
    // exceptions need to stay in bounds.
    for _ in 0..num_exceptions - 1 {
        if i >= u64::from(n) {
            return Err(CodecError::Corrupt("exception chain escapes the block"));
        }
        let gap = u64::from(crate::bitpack::get(packed, i as usize, b));
        i += gap;
    }
    if i >= u64::from(n) {
        return Err(CodecError::Corrupt("exception chain escapes the block"));
    }
    Ok(())
}

fn write_entry_points(buf: &mut BytesMut, entries: &[EntryPoint]) {
    for e in entries {
        buf.put_u32_le(e.next_exception);
        buf.put_u32_le(e.exception_rank);
    }
}

fn read_entry_points(data: &mut &[u8], n: usize) -> Result<Vec<EntryPoint>, CodecError> {
    let count = n.div_ceil(crate::patch::ENTRY_POINT_STRIDE);
    if data.remaining() < count * 8 {
        return Err(CodecError::Truncated);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let next_exception = read_u32(data)?;
        let exception_rank = read_u32(data)?;
        entries.push(EntryPoint {
            next_exception,
            exception_rank,
        });
    }
    Ok(entries)
}

fn write_packed(buf: &mut BytesMut, packed: &[u64]) {
    buf.put_u32_le(packed.len() as u32);
    for &w in packed {
        buf.put_u64_le(w);
    }
}

fn read_packed(data: &mut &[u8], n: usize, b: u8) -> Result<Vec<u64>, CodecError> {
    let words = read_u32(data)? as usize;
    if words < crate::bitpack::packed_len(n, b) {
        return Err(CodecError::Corrupt("code section shorter than n*b bits"));
    }
    if data.remaining() < words * 8 {
        return Err(CodecError::Truncated);
    }
    let mut packed = Vec::with_capacity(words);
    for _ in 0..words {
        packed.push(data.get_u64_le());
    }
    Ok(packed)
}

/// Writes the exception section *backwards*: the serialized order is the
/// reverse of encounter order, so the first exception ends up at the block's
/// very end, mirroring Figure 2's backward-growing section.
fn write_exceptions_backward(buf: &mut BytesMut, exceptions: &[u32]) {
    buf.put_u32_le(exceptions.len() as u32);
    for &e in exceptions.iter().rev() {
        buf.put_u32_le(e);
    }
}

fn read_exceptions_backward(data: &mut &[u8]) -> Result<Vec<u32>, CodecError> {
    let count = read_u32(data)? as usize;
    if data.remaining() < count * 4 {
        return Err(CodecError::Truncated);
    }
    let mut exceptions = vec![0u32; count];
    for slot in exceptions.iter_mut().rev() {
        *slot = data.get_u32_le();
    }
    Ok(exceptions)
}

fn read_u32(data: &mut &[u8]) -> Result<u32, CodecError> {
    if data.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u32_le())
}

fn read_u8(data: &mut &[u8]) -> Result<u8, CodecError> {
    if data.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(data.get_u8())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<u32> {
        (0..1000u32)
            .map(|i| if i % 37 == 0 { 1_000_000 + i } else { i % 200 })
            .collect()
    }

    fn roundtrip(codec: Codec) {
        let values = sample_values();
        let block = CompressedBlock::encode(&values, codec);
        let bytes = block.to_bytes();
        let back = CompressedBlock::from_bytes(&bytes).unwrap();
        assert_eq!(back, block, "{codec:?}");
        let mut out = Vec::new();
        back.decode_into(&mut out);
        assert_eq!(out, values, "{codec:?}");
    }

    #[test]
    fn serialize_roundtrip_all_codecs() {
        roundtrip(Codec::Raw);
        roundtrip(Codec::Pfor { width: 8 });
        roundtrip(Codec::PforDelta { width: 8 });
        roundtrip(Codec::Pdict { width: 8 });
    }

    #[test]
    fn serialize_roundtrip_empty() {
        for codec in [
            Codec::Raw,
            Codec::Pfor { width: 8 },
            Codec::PforDelta { width: 8 },
            Codec::Pdict { width: 8 },
        ] {
            let block = CompressedBlock::encode(&[], codec);
            let back = CompressedBlock::from_bytes(&block.to_bytes()).unwrap();
            assert!(back.is_empty());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = CompressedBlock::encode(&[1, 2, 3], Codec::Raw)
            .to_bytes()
            .to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            CompressedBlock::from_bytes(&bytes),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn unknown_codec_rejected() {
        let mut bytes = CompressedBlock::encode(&[1, 2, 3], Codec::Raw)
            .to_bytes()
            .to_vec();
        bytes[4] = 99;
        assert!(matches!(
            CompressedBlock::from_bytes(&bytes),
            Err(CodecError::UnknownCodec(99))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let values = sample_values();
        for codec in [
            Codec::Pfor { width: 8 },
            Codec::PforDelta { width: 8 },
            Codec::Pdict { width: 8 },
        ] {
            let bytes = CompressedBlock::encode(&values, codec).to_bytes();
            // Chop at a few strategic points — every prefix must fail
            // cleanly, never panic.
            for cut in [0, 3, 5, 9, 12, bytes.len() / 2, bytes.len() - 1] {
                let r = CompressedBlock::from_bytes(&bytes[..cut]);
                assert!(r.is_err(), "{codec:?} cut={cut}");
            }
        }
    }

    #[test]
    fn corrupt_width_rejected() {
        let bytes = CompressedBlock::encode(&sample_values(), Codec::Pfor { width: 8 })
            .to_bytes()
            .to_vec();
        let mut corrupted = bytes.clone();
        corrupted[9] = 77; // width byte: 77 > 24
        assert!(matches!(
            CompressedBlock::from_bytes(&corrupted),
            Err(CodecError::UnsupportedWidth(77))
        ));
    }

    #[test]
    fn exceptions_physically_stored_backwards() {
        // Two exceptions: 111111 (first) and 222222 (second), close enough
        // together that no compulsory exceptions are inserted between them.
        // In the byte stream the *first* exception must come last (backward
        // growth).
        let mut values = vec![1u32; 300];
        values[10] = 111_111;
        values[12] = 222_222;
        let block = CompressedBlock::encode(&values, Codec::Pfor { width: 4 });
        let bytes = block.to_bytes();
        let tail_last = &bytes[bytes.len() - 4..];
        let tail_prev = &bytes[bytes.len() - 8..bytes.len() - 4];
        assert_eq!(u32::from_le_bytes(tail_last.try_into().unwrap()), 111_111);
        assert_eq!(u32::from_le_bytes(tail_prev.try_into().unwrap()), 222_222);
    }

    #[test]
    fn decode_range_dispatches_for_raw() {
        let block = CompressedBlock::encode(&[1, 2, 3, 4], Codec::Raw);
        let mut out = Vec::new();
        block.decode_range_into(1, 2, &mut out).unwrap();
        assert_eq!(out, vec![2, 3]);
        assert!(block.decode_range_into(2, 9, &mut out).is_err());
    }

    #[test]
    fn compressed_bytes_smaller_than_raw_for_compressible_data() {
        let values: Vec<u32> = (0..100_000u32).map(|i| i % 100).collect();
        let raw = CompressedBlock::encode(&values, Codec::Raw);
        let pfor = CompressedBlock::encode(&values, Codec::Pfor { width: 8 });
        assert!(pfor.compressed_bytes() * 3 < raw.compressed_bytes());
    }
}
