//! Shared exception-patching machinery used by PFOR, PFOR-DELTA and PDICT.
//!
//! All three codecs of the paper share the same patch discipline: exception
//! slots hold the distance to the next exception (a linked list threaded
//! through the code section), bounded by the code width, with **compulsory
//! exceptions** inserted to bridge over-long gaps, and **entry points** every
//! 128 values for fine-granularity range access (Figure 2).

/// Sentinel for "no exception".
pub const NO_EXCEPTION: u32 = u32::MAX;

/// Entry-point granularity: one entry per 128 values, as in the paper.
pub const ENTRY_POINT_STRIDE: usize = 128;

/// One entry point: resume information for decoding from a 128-aligned
/// position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryPoint {
    /// Position of the first exception at or after this entry's position,
    /// or [`NO_EXCEPTION`].
    pub next_exception: u32,
    /// Index of that exception in the exception section.
    pub exception_rank: u32,
}

/// Computes the final exception positions given which positions are
/// *naturally* uncodeable, inserting compulsory exceptions so that no two
/// consecutive exceptions are more than `max_gap` apart, and trimming
/// compulsory entries that trail the last natural exception.
pub(crate) fn plan_exception_positions(natural: &[bool], max_gap: usize) -> Vec<u32> {
    let max_gap = max_gap.max(1);
    let mut positions: Vec<u32> = Vec::new();
    let mut last: Option<usize> = None;
    let mut last_natural: usize = 0; // index into `positions` one past the last natural
    for (i, &nat) in natural.iter().enumerate() {
        let forced = matches!(last, Some(prev) if i - prev >= max_gap);
        if nat || forced {
            positions.push(i as u32);
            last = Some(i);
            if nat {
                last_natural = positions.len();
            }
        }
    }
    positions.truncate(last_natural);
    positions
}

/// Computes per-stride entry points for `n` values given the sorted
/// exception positions.
pub(crate) fn build_entry_points(n: usize, exc_positions: &[u32]) -> Vec<EntryPoint> {
    let count = n.div_ceil(ENTRY_POINT_STRIDE);
    let mut entries = Vec::with_capacity(count);
    for k in 0..count {
        let pos = (k * ENTRY_POINT_STRIDE) as u32;
        let rank = exc_positions.partition_point(|&p| p < pos);
        let next = exc_positions.get(rank).copied().unwrap_or(NO_EXCEPTION);
        entries.push(EntryPoint {
            next_exception: next,
            exception_rank: rank as u32,
        });
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_no_naturals_is_empty() {
        assert!(plan_exception_positions(&[false; 100], 3).is_empty());
    }

    #[test]
    fn plan_keeps_natural_positions() {
        let mut natural = vec![false; 10];
        natural[2] = true;
        natural[4] = true;
        assert_eq!(plan_exception_positions(&natural, 255), vec![2, 4]);
    }

    #[test]
    fn plan_inserts_compulsory_for_long_gap() {
        let mut natural = vec![false; 20];
        natural[0] = true;
        natural[15] = true;
        let plan = plan_exception_positions(&natural, 5);
        // Gaps between consecutive entries never exceed 5.
        assert!(plan.windows(2).all(|w| w[1] - w[0] <= 5), "{plan:?}");
        assert!(plan.contains(&0) && plan.contains(&15));
    }

    #[test]
    fn plan_trims_trailing_compulsory() {
        let mut natural = vec![false; 100];
        natural[1] = true;
        let plan = plan_exception_positions(&natural, 2);
        assert_eq!(plan, vec![1], "no chain needed after the last natural");
    }

    #[test]
    fn plan_gap_of_one_chains_everything_after_first() {
        let mut natural = vec![false; 6];
        natural[0] = true;
        natural[5] = true;
        let plan = plan_exception_positions(&natural, 1);
        assert_eq!(plan, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn entry_points_rank_and_next() {
        let excs = vec![5u32, 130, 200, 300];
        let eps = build_entry_points(400, &excs);
        assert_eq!(eps.len(), 4);
        assert_eq!(
            eps[0],
            EntryPoint {
                next_exception: 5,
                exception_rank: 0
            }
        );
        assert_eq!(
            eps[1],
            EntryPoint {
                next_exception: 130,
                exception_rank: 1
            }
        );
        assert_eq!(
            eps[2],
            EntryPoint {
                next_exception: 300,
                exception_rank: 3
            }
        );
        assert_eq!(
            eps[3],
            EntryPoint {
                next_exception: NO_EXCEPTION,
                exception_rank: 4
            }
        );
    }

    #[test]
    fn entry_points_empty_block() {
        assert!(build_entry_points(0, &[]).is_empty());
    }
}
