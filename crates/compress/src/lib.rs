//! Ultra light-weight RAM–CPU-cache compression (§2.1 of the paper).
//!
//! MonetDB/X100 increases *perceived* I/O bandwidth by keeping blocks
//! compressed both on disk and in RAM, decompressing on demand — at vector
//! granularity — directly into the CPU cache. That only pays off if
//! decompression runs at RAM speeds (gigabytes per second), which rules out
//! general-purpose codecs and motivates the three schemes implemented here:
//!
//! * [`pfor::PforBlock`] — **PFOR** (Patched Frame-of-Reference): values as
//!   `b`-bit offsets from a per-block base, with out-of-range values kept
//!   uncompressed as *exceptions*.
//! * [`pfor_delta::PforDeltaBlock`] — **PFOR-DELTA**: PFOR over the deltas of
//!   subsequent values; the codec for sorted `docid` posting lists.
//! * [`pdict::PdictBlock`] — **PDICT**: frequent values via a dictionary,
//!   rare ones as exceptions.
//!
//! All three share the *patched* decompression discipline (the internal `patch` module):
//! exception slots hold a linked list of gaps, so decoding is two tight,
//! branch-free loops instead of one loop with an unpredictable `if` — the
//! naive variant ([`naive::NaiveBlock`]) is provided as the measured baseline
//! for reproducing Figure 3, together with a branch-predictor model
//! ([`branch::TwoBitPredictor`]) standing in for the paper's CPU event
//! counters.
//!
//! The serialized layout ([`block`]) follows Figure 2: forward-growing code
//! section, backward-growing exception section, and entry points every 128
//! values for fine-granularity access during inverted-list merging.
//!
//! # Example
//!
//! ```
//! use x100_compress::pfor::PforBlock;
//!
//! // The paper's Figure 2 example: digits of pi with b=3, base=0.
//! let pi = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2];
//! let block = PforBlock::encode(&pi, 3, 0);
//! assert_eq!(block.exceptions(), &[9, 8, 9, 9]); // digits >= 8
//! assert_eq!(block.decode(), pi);
//! ```

#![warn(missing_docs)]

pub mod bitpack;
pub mod block;
pub mod branch;
pub mod naive;
mod patch;
pub mod pdict;
pub mod pfor;
pub mod pfor_delta;
pub mod simd;

pub use block::{Codec, CompressedBlock, BLOCK_MAGIC};
pub use branch::TwoBitPredictor;
pub use naive::NaiveBlock;
pub use patch::{EntryPoint, ENTRY_POINT_STRIDE, NO_EXCEPTION};
pub use pdict::PdictBlock;
pub use pfor::PforBlock;
pub use pfor_delta::PforDeltaBlock;
pub use simd::{simd_active, simd_available, simd_force_scalar};

use std::fmt;

/// Errors surfaced by decoding and deserialization.
///
/// Encoding never fails (any `u32` sequence is representable); errors arise
/// only from misuse of range decoding or from corrupt/truncated serialized
/// blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Range decode did not start at an entry-point boundary.
    Misaligned {
        /// The requested (unaligned) start position.
        position: usize,
        /// The entry-point stride positions must align to.
        stride: usize,
    },
    /// Range decode past the end of the block.
    OutOfBounds {
        /// The requested end position.
        position: usize,
        /// The number of values actually in the block.
        len: usize,
    },
    /// Serialized block does not start with [`BLOCK_MAGIC`].
    BadMagic(u32),
    /// Unrecognized codec tag byte.
    UnknownCodec(u8),
    /// Code width outside the codec's supported range.
    UnsupportedWidth(u8),
    /// Serialized block ends mid-section.
    Truncated,
    /// A structural invariant does not hold.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Misaligned { position, stride } => write!(
                f,
                "range start {position} is not aligned to the entry-point stride {stride}"
            ),
            CodecError::OutOfBounds { position, len } => {
                write!(f, "range end {position} exceeds block length {len}")
            }
            CodecError::BadMagic(m) => write!(f, "bad block magic {m:#010x}"),
            CodecError::UnknownCodec(t) => write!(f, "unknown codec tag {t}"),
            CodecError::UnsupportedWidth(b) => write!(f, "unsupported code width {b}"),
            CodecError::Truncated => f.write_str("serialized block is truncated"),
            CodecError::Corrupt(what) => write!(f, "corrupt block: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::Misaligned {
            position: 7,
            stride: 128,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains("128"));
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::BadMagic(0xdead).to_string().contains("0x"));
    }
}
