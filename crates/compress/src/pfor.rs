//! PFOR — Patched Frame-of-Reference compression (§2.1, Figure 2).
//!
//! Values are stored as small `b`-bit offsets from a per-block `base`.
//! Values outside `[base, base + 2^b)` become **exceptions**: they are kept
//! uncompressed in a separate section, and their code slot instead stores the
//! distance to the *next* exception, forming a linked list through the code
//! section. Decompression is then two branch-free loops:
//!
//! ```text
//! LOOP1: out[i] = base + code[i]        // decode regardless
//! LOOP2: walk the exception list, copying exception values over the
//!        incorrectly decoded slots      // patch it up
//! ```
//!
//! This avoids the branch-misprediction collapse of the naive
//! `if (code < MAXCODE)` decoder (see [`crate::naive`] and Figure 3).
//!
//! Because the gap between consecutive exceptions must itself fit in `b`
//! bits, encoding inserts **compulsory exceptions** whenever two natural
//! exceptions are more than `2^b - 1` positions apart.
//!
//! Entry points every [`ENTRY_POINT_STRIDE`] values record the next exception
//! position and its rank, which "allows fine-granularity access and skipping
//! ... especially useful during merging of inverted lists" (paper, §2.1).

use crate::bitpack;
use crate::patch::{build_entry_points, plan_exception_positions};
use crate::CodecError;

pub use crate::patch::{EntryPoint, ENTRY_POINT_STRIDE, NO_EXCEPTION};

/// Maximum code width supported by PFOR, per the paper ("bit-widths b that
/// may vary 1 ≤ b ≤ 24").
pub const MAX_PFOR_WIDTH: u8 = 24;

/// A PFOR-compressed block of `u32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct PforBlock {
    n: u32,
    b: u8,
    base: u32,
    first_exception: u32,
    packed: Vec<u64>,
    exceptions: Vec<u32>,
    entry_points: Vec<EntryPoint>,
}

impl PforBlock {
    /// Compresses `values` with an automatically chosen width and base
    /// (minimizing total compressed size).
    pub fn encode_auto(values: &[u32]) -> Self {
        let (b, base) = choose_parameters(values);
        Self::encode(values, b, base)
    }

    /// Compresses `values` with the given width, choosing the base
    /// automatically. The paper's IR experiments fix `b = 8` this way.
    pub fn encode_with_width(values: &[u32], b: u8) -> Self {
        let base = choose_base(values, b);
        Self::encode(values, b, base)
    }

    /// Compresses `values` as `b`-bit offsets from `base`.
    ///
    /// # Panics
    /// Panics if `b` is outside `1..=24`.
    pub fn encode(values: &[u32], b: u8, base: u32) -> Self {
        assert!(
            (1..=MAX_PFOR_WIDTH).contains(&b),
            "PFOR width {b} outside 1..=24"
        );
        let n = values.len();
        let code_range = 1u64 << b; // all 2^b codes usable: exceptions are positional
        let max_gap = (code_range - 1) as usize; // gap must fit in a code word

        let natural: Vec<bool> = values
            .iter()
            .map(|&v| u64::from(v.wrapping_sub(base)) >= code_range)
            .collect();
        let exc_positions = plan_exception_positions(&natural, max_gap);

        // Build code words.
        let mut codes: Vec<u32> = Vec::with_capacity(n);
        let mut exceptions: Vec<u32> = Vec::with_capacity(exc_positions.len());
        let mut next_exc_iter = exc_positions.iter().copied().peekable();
        let mut exc_idx = 0usize;
        for (i, &v) in values.iter().enumerate() {
            if next_exc_iter.peek() == Some(&(i as u32)) {
                next_exc_iter.next();
                // Gap to the following exception (or 1 as a harmless filler
                // for the last one; LOOP2's trip count stops the walk).
                let gap = exc_positions
                    .get(exc_idx + 1)
                    .map(|&nx| nx - i as u32)
                    .unwrap_or(1);
                codes.push(gap);
                exceptions.push(v);
                exc_idx += 1;
            } else {
                codes.push(v.wrapping_sub(base));
            }
        }

        let packed = bitpack::pack(&codes, b);
        let first_exception = exc_positions.first().copied().unwrap_or(NO_EXCEPTION);
        let entry_points = build_entry_points(n, &exc_positions);

        PforBlock {
            n: n as u32,
            b,
            base,
            first_exception,
            packed,
            exceptions,
            entry_points,
        }
    }

    /// Reassembles a block from its serialized parts (see [`crate::block`]).
    /// Invariants are the deserializer's responsibility.
    pub(crate) fn from_raw_parts(
        n: u32,
        b: u8,
        base: u32,
        first_exception: u32,
        packed: Vec<u64>,
        exceptions: Vec<u32>,
        entry_points: Vec<EntryPoint>,
    ) -> Self {
        PforBlock {
            n,
            b,
            base,
            first_exception,
            packed,
            exceptions,
            entry_points,
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code width in bits.
    pub fn width(&self) -> u8 {
        self.b
    }

    /// Frame-of-reference base.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of exception values (natural + compulsory).
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// Fraction of values stored as exceptions.
    pub fn exception_rate(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.exceptions.len() as f64 / self.n as f64
        }
    }

    /// Exception values in position order (the physical block layout grows
    /// this section backwards; see [`crate::block`]).
    pub fn exceptions(&self) -> &[u32] {
        &self.exceptions
    }

    /// Entry points (one per [`ENTRY_POINT_STRIDE`] values).
    pub fn entry_points(&self) -> &[EntryPoint] {
        &self.entry_points
    }

    /// The packed code section.
    pub fn packed_codes(&self) -> &[u64] {
        &self.packed
    }

    /// Position of the first exception, or [`NO_EXCEPTION`].
    pub fn first_exception(&self) -> u32 {
        self.first_exception
    }

    /// Compressed size in bytes (code section + exceptions + entry points +
    /// fixed header), as accounted by the compression-ratio experiment.
    pub fn compressed_bytes(&self) -> usize {
        let header = 4 + 1 + 4 + 4; // n, b, base, first_exception
        let codes = (self.n as usize * self.b as usize).div_ceil(8);
        let exceptions = self.exceptions.len() * 4;
        let entries = self.entry_points.len() * 8;
        header + codes + exceptions + entries
    }

    /// Effective bits per encoded value.
    pub fn bits_per_value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.compressed_bytes() as f64 * 8.0 / self.n as f64
        }
    }

    /// Decompresses the whole block into `out` (cleared first) using
    /// **patched** two-loop decoding.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        let n = self.n as usize;
        // LOOP1: unpack + apply base, branch-free over all values.
        bitpack::unpack(&self.packed, n, self.b, out);
        let base = self.base;
        for v in out.iter_mut() {
            *v = base.wrapping_add(*v);
        }
        // LOOP2: patch it up. The gap is recovered from the (incorrectly)
        // decoded slot: LOOP1 wrote base + gap there.
        let mut i = self.first_exception as usize;
        for &exc in &self.exceptions {
            let gap = out[i].wrapping_sub(base) as usize;
            out[i] = exc;
            i += gap;
        }
    }

    /// Convenience wrapper allocating the output.
    pub fn decode(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// Decompresses `len` values starting at `start` (which must be a
    /// multiple of [`ENTRY_POINT_STRIDE`]) using the entry points, without
    /// touching the rest of the block. This is the "fine-granularity access
    /// and skipping" path used while merging inverted lists.
    ///
    /// # Errors
    /// Returns [`CodecError::Misaligned`] if `start` is not entry-aligned,
    /// or [`CodecError::OutOfBounds`] if the range exceeds the block.
    pub fn decode_range_into(
        &self,
        start: usize,
        len: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), CodecError> {
        if !start.is_multiple_of(ENTRY_POINT_STRIDE) {
            return Err(CodecError::Misaligned {
                position: start,
                stride: ENTRY_POINT_STRIDE,
            });
        }
        let end = start.checked_add(len).ok_or(CodecError::OutOfBounds {
            position: usize::MAX,
            len: self.n as usize,
        })?;
        if end > self.n as usize {
            return Err(CodecError::OutOfBounds {
                position: end,
                len: self.n as usize,
            });
        }
        // LOOP1 over the range only.
        bitpack::unpack_range(&self.packed, start, len, self.b, out);
        let base = self.base;
        for v in out.iter_mut() {
            *v = base.wrapping_add(*v);
        }
        // LOOP2 from the entry point covering `start`.
        if len == 0 {
            return Ok(());
        }
        let entry = self.entry_points[start / ENTRY_POINT_STRIDE];
        let mut i = entry.next_exception as usize;
        let mut rank = entry.exception_rank as usize;
        // Bound by the exception count as well as the range end: the last
        // exception's code word holds a filler gap, not a real link.
        while rank < self.exceptions.len() && i < end {
            let gap = out[i - start].wrapping_sub(base) as usize;
            out[i - start] = self.exceptions[rank];
            rank += 1;
            i += gap;
        }
        Ok(())
    }
}

/// Chooses the base for a fixed width `b`: slides a window of width `2^b`
/// over the sorted values and keeps the start covering the most values
/// (fewest exceptions).
pub fn choose_base(values: &[u32], b: u8) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let range = 1u64 << b;
    let mut best_base = sorted[0];
    let mut best_cover = 0usize;
    let mut lo = 0usize;
    for hi in 0..sorted.len() {
        while u64::from(sorted[hi]) - u64::from(sorted[lo]) >= range {
            lo += 1;
        }
        let cover = hi - lo + 1;
        if cover > best_cover {
            best_cover = cover;
            best_base = sorted[lo];
        }
    }
    best_base
}

/// Chooses `(width, base)` minimizing the estimated compressed size:
/// `n*b` bits of codes plus 32 bits per exception.
pub fn choose_parameters(values: &[u32]) -> (u8, u32) {
    if values.is_empty() {
        return (1, 0);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mut best: Option<(u64, u8, u32)> = None;
    for b in 1..=MAX_PFOR_WIDTH {
        let range = 1u64 << b;
        // Best coverage window for this width.
        let mut best_cover = 0usize;
        let mut base = sorted[0];
        let mut lo = 0usize;
        for hi in 0..n {
            while u64::from(sorted[hi]) - u64::from(sorted[lo]) >= range {
                lo += 1;
            }
            let cover = hi - lo + 1;
            if cover > best_cover {
                best_cover = cover;
                base = sorted[lo];
            }
        }
        let exceptions = (n - best_cover) as u64;
        let cost_bits = n as u64 * u64::from(b) + exceptions * 32;
        if best.is_none_or(|(c, _, _)| cost_bits < c) {
            best = Some((cost_bits, b, base));
        }
    }
    let (_, b, base) = best.expect("non-empty input always yields parameters");
    (b, base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32], b: u8) {
        let base = choose_base(values, b);
        let block = PforBlock::encode(values, b, base);
        assert_eq!(block.decode(), values, "b={b} base={base}");
    }

    #[test]
    fn roundtrip_no_exceptions() {
        let values: Vec<u32> = (100..400).collect();
        let block = PforBlock::encode(&values, 9, 100);
        assert_eq!(block.exception_count(), 0);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn roundtrip_with_exceptions() {
        let mut values: Vec<u32> = (0..1000).map(|i| i % 200).collect();
        values[17] = 1_000_000;
        values[503] = 2_000_000_000;
        roundtrip(&values, 8);
    }

    #[test]
    fn roundtrip_all_exceptions() {
        // Base far away: every value is an exception.
        let values: Vec<u32> = (0..300).map(|i| 1_000_000 + i * 7).collect();
        let block = PforBlock::encode(&values, 4, 0);
        assert!(block.exception_rate() > 0.9);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn roundtrip_empty() {
        let block = PforBlock::encode(&[], 8, 0);
        assert!(block.is_empty());
        assert!(block.decode().is_empty());
    }

    #[test]
    fn roundtrip_single() {
        let block = PforBlock::encode(&[7], 3, 0);
        assert_eq!(block.decode(), vec![7]);
        let block = PforBlock::encode(&[900], 3, 0);
        assert_eq!(block.decode(), vec![900]);
    }

    #[test]
    fn pi_digits_example_from_figure_2() {
        // The paper's Figure 2: digits of pi stored with PFOR b=3, base=0.
        // Digits >= 8 are exceptions.
        let pi = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2];
        let block = PforBlock::encode(&pi, 3, 0);
        // Exceptions are the digits 9, 8, 9, 9 (values >= 8).
        assert_eq!(block.exceptions(), &[9, 8, 9, 9]);
        assert_eq!(block.first_exception(), 5);
        assert_eq!(block.decode(), pi);
    }

    #[test]
    fn compulsory_exceptions_bridge_long_gaps() {
        // b=2 => max gap 3. Two natural exceptions far apart force
        // intermediate compulsory exceptions.
        let mut values = vec![1u32; 64];
        values[0] = 1000; // natural exception
        values[63] = 2000; // natural exception
        let block = PforBlock::encode(&values, 2, 0);
        assert!(block.exception_count() > 2, "needs compulsory exceptions");
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn no_trailing_compulsory_exceptions() {
        // Natural exception early, then a long codeable tail: the tail must
        // not accumulate forced exceptions.
        let mut values = vec![1u32; 1024];
        values[3] = 1_000_000;
        let block = PforBlock::encode(&values, 2, 0);
        assert_eq!(block.exception_count(), 1);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn width_boundaries() {
        let values: Vec<u32> = (0..500).map(|i| i * 37 % 1000).collect();
        roundtrip(&values, 1);
        roundtrip(&values, 24);
    }

    #[test]
    fn wrapping_base_handles_u32_extremes() {
        let values = [u32::MAX, 0, u32::MAX - 1, 1];
        let block = PforBlock::encode(&values, 8, u32::MAX - 10);
        assert_eq!(block.decode(), values);
    }

    #[test]
    fn decode_range_matches_full_decode() {
        let values: Vec<u32> = (0..1000)
            .map(|i| if i % 97 == 0 { 5_000_000 } else { i % 250 })
            .collect();
        let block = PforBlock::encode(&values, 8, 0);
        let full = block.decode();
        let mut out = Vec::new();
        for start in (0..values.len()).step_by(ENTRY_POINT_STRIDE) {
            let len = (values.len() - start).min(ENTRY_POINT_STRIDE);
            block.decode_range_into(start, len, &mut out).unwrap();
            assert_eq!(out, &full[start..start + len], "start={start}");
        }
        // A longer, multi-stride range.
        block.decode_range_into(128, 512, &mut out).unwrap();
        assert_eq!(out, &full[128..640]);
    }

    #[test]
    fn decode_range_rejects_misaligned_start() {
        let block = PforBlock::encode(&[1, 2, 3], 4, 0);
        let mut out = Vec::new();
        assert!(matches!(
            block.decode_range_into(1, 1, &mut out),
            Err(CodecError::Misaligned { .. })
        ));
    }

    #[test]
    fn decode_range_rejects_overflow() {
        let block = PforBlock::encode(&[1, 2, 3], 4, 0);
        let mut out = Vec::new();
        assert!(matches!(
            block.decode_range_into(0, 99, &mut out),
            Err(CodecError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn choose_base_prefers_dense_region() {
        // Most values cluster near 1000; outliers below should not drag the
        // base down.
        let mut values: Vec<u32> = (1000..1200).collect();
        values.push(0);
        values.push(5);
        let base = choose_base(&values, 8);
        assert_eq!(base, 1000);
    }

    #[test]
    fn choose_parameters_picks_small_width_for_small_range() {
        let values: Vec<u32> = (0..512).map(|i| i % 16).collect();
        let (b, base) = choose_parameters(&values);
        assert!(b <= 5, "b={b}");
        assert_eq!(base, 0);
    }

    #[test]
    fn compressed_size_reflects_width() {
        let values: Vec<u32> = (0..10_000).map(|i| i % 200).collect();
        let block = PforBlock::encode_with_width(&values, 8);
        // ~8 bits/value plus small overhead.
        assert!(block.bits_per_value() < 10.0, "{}", block.bits_per_value());
        assert!(block.bits_per_value() >= 8.0);
    }

    #[test]
    fn entry_points_cover_all_strides() {
        let values: Vec<u32> = (0..300).collect();
        let block = PforBlock::encode_with_width(&values, 8);
        assert_eq!(block.entry_points().len(), 3); // ceil(300/128)
    }
}
