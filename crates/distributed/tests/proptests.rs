//! Property tests for partitioning and the discrete-event scheduler.

use std::time::Duration;

use proptest::prelude::*;
use x100_corpus::{CollectionConfig, SyntheticCollection};
use x100_distributed::{partition_collection, simulate_run, JitterModel, RunConfig};

fn compute_matrix() -> impl Strategy<Value = Vec<Vec<Duration>>> {
    (1usize..40, 1usize..9).prop_flat_map(|(queries, partitions)| {
        prop::collection::vec(
            prop::collection::vec((1u64..5000).prop_map(Duration::from_micros), partitions),
            queries,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitions_always_cover_exactly(n in 1usize..12) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let parts = partition_collection(&c, n);
        prop_assert_eq!(parts.len(), n);
        let mut seen = vec![false; c.docs.len()];
        for p in &parts {
            prop_assert_eq!(p.collection.docs.len(), p.global_ids.len());
            for (local, &g) in p.global_ids.iter().enumerate() {
                prop_assert!(!seen[g as usize]);
                seen[g as usize] = true;
                prop_assert_eq!(p.collection.docs[local].id as usize, local);
                prop_assert_eq!(&p.collection.docs[local].terms, &c.docs[g as usize].terms);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scheduler_is_deterministic(compute in compute_matrix(), streams in 1usize..6) {
        let servers = compute[0].len();
        let cfg = RunConfig::streams(servers, streams);
        prop_assert_eq!(simulate_run(&compute, &cfg), simulate_run(&compute, &cfg));
    }

    #[test]
    fn latency_bounds_hold(compute in compute_matrix()) {
        let servers = compute[0].len();
        let stats = simulate_run(&compute, &RunConfig::servers(servers));
        // Per-query latency >= the largest single-server work of any query
        // (a query cannot finish before its slowest server computes).
        prop_assert!(stats.server_max >= stats.server_avg);
        prop_assert!(stats.server_avg >= stats.server_min);
        prop_assert!(stats.avg_latency >= stats.server_max);
        prop_assert!(stats.makespan >= stats.avg_latency);
        prop_assert_eq!(stats.amortized, stats.makespan / stats.queries as u32);
    }

    #[test]
    fn more_streams_never_hurt_throughput_without_jitter(
        compute in compute_matrix(),
    ) {
        let servers = compute[0].len();
        let no_jitter = JitterModel {
            base: Duration::from_micros(500),
            sigma: 0.0,
            seed: 1,
        };
        let mut prev_makespan = None;
        for streams in [1usize, 2, 4] {
            let mut cfg = RunConfig::streams(servers, streams);
            cfg.jitter = no_jitter;
            let stats = simulate_run(&compute, &cfg);
            if let Some(prev) = prev_makespan {
                // Pipelining more streams can only shrink (or keep) the
                // makespan when overheads are deterministic.
                prop_assert!(
                    stats.makespan <= prev,
                    "streams {} makespan {:?} > previous {:?}",
                    streams, stats.makespan, prev
                );
            }
            prev_makespan = Some(stats.makespan);
        }
    }

    #[test]
    fn fewer_servers_never_less_total_work(compute in compute_matrix()) {
        // With jitter off, per-query server_max with 1 server equals the
        // query's total compute plus one dispatch: the serial bound.
        let servers = compute[0].len();
        let no_jitter = JitterModel {
            base: Duration::ZERO,
            sigma: 0.0,
            seed: 1,
        };
        let mut one = RunConfig::servers(1);
        one.jitter = no_jitter;
        one.merge_overhead = Duration::ZERO;
        let mut all = RunConfig::servers(servers);
        all.jitter = no_jitter;
        all.merge_overhead = Duration::ZERO;
        let s1 = simulate_run(&compute, &one);
        let sn = simulate_run(&compute, &all);
        prop_assert!(sn.server_max <= s1.server_max);
    }
}
