//! The simulated cluster: one real index per partition, broadcast + merge.
//!
//! Each node holds a genuine [`InvertedIndex`] over its partition and a
//! persistent buffer pool (the paper keeps the whole compressed index in
//! RAM for the distributed runs — "thanks to MonetDB/X100's data
//! compression, the whole index (10GB) could be kept in RAM, so that I/O is
//! eliminated as a performance factor"). Query execution on a node is the
//! actual single-node engine; only the *network* between nodes is modeled
//! (see [`crate::schedule`]).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use std::time::Instant;

use x100_corpus::{CollectionStream, CollectionTail, SyntheticCollection};
use x100_ir::{
    ExecError, HitsResponse, IndexConfig, InvertedIndex, QueryEngine, ScratchPool, SearchStrategy,
    SegmentError, SpillConfig, SpillError, SpillStats, SpillingIndexBuilder, StreamingIndexBuilder,
};
use x100_storage::{BufferManager, BufferMode, DiskModel, IoStats};

use crate::partition::{partition_collection, partition_of, Partition};

/// A typed per-node failure the coordinator can report (and a failover
/// layer can consume) instead of aborting the whole scatter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The node's fan-out worker died (panicked) before reporting a
    /// result; the partition contributed nothing to the merge.
    NodeFailed {
        /// Which partition's worker died.
        partition: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NodeFailed { partition } => {
                write!(f, "node for partition {partition} failed mid-query")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// One node: partition index + local→global mapping + persistent buffers
/// + a pool of reusable query scratch arenas.
pub struct Node {
    index: InvertedIndex,
    global_ids: Vec<u32>,
    buffers: Arc<BufferManager>,
    scratch: ScratchPool,
    /// Test-only fault hook: when set, the next local search panics, so
    /// suites can exercise panic containment in the scatter and network
    /// paths without a genuinely corrupt index.
    panic_on_search: AtomicBool,
}

impl Node {
    fn new(index: InvertedIndex, global_ids: Vec<u32>, buffers: Arc<BufferManager>) -> Self {
        Node {
            index,
            global_ids,
            buffers,
            scratch: ScratchPool::new(),
            panic_on_search: AtomicBool::new(false),
        }
    }

    /// Arms the test-only fault hook: every subsequent local search on
    /// this node panics until disarmed. Exists so fault-injection suites
    /// can pin that a panicking node is *contained* — reported as
    /// [`ClusterError::NodeFailed`] in-process, served by a replica over
    /// the network — rather than aborting the coordinator.
    #[doc(hidden)]
    pub fn inject_search_panic_for_tests(&self, armed: bool) {
        self.panic_on_search.store(armed, Ordering::SeqCst);
    }

    fn check_injected_fault(&self) {
        if self.panic_on_search.load(Ordering::SeqCst) {
            panic!("injected node fault (test hook)");
        }
    }
    /// A fresh engine over this node's index and persistent buffer pool.
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::with_buffer_manager(&self.index, self.buffers.clone())
    }

    /// The node-local allocation-free search: runs the fused scratch-arena
    /// path over this node's index, filling `out` (cleared first) with up
    /// to `n` **node-local** `(docid, score)` hits, best first. The arena
    /// comes from the node's [`ScratchPool`], so steady-state calls are
    /// heap-allocation-free and concurrent callers never serialize.
    /// Callers translate docids with [`Self::global_id`] as they consume
    /// the hits.
    pub fn search_hits_into(
        &self,
        terms: &[u32],
        strategy: SearchStrategy,
        n: usize,
        out: &mut Vec<(u32, f32)>,
    ) -> Result<HitsResponse, ExecError> {
        self.check_injected_fault();
        let mut scratch = self.scratch.acquire();
        let result = self
            .engine()
            .search_hits_into(terms, strategy, n, &mut scratch, out);
        self.scratch.release(scratch);
        result
    }

    /// The node's index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The node's persistent buffer pool.
    pub fn buffers(&self) -> &Arc<BufferManager> {
        &self.buffers
    }

    /// Maps a node-local docid to the global docid.
    pub fn global_id(&self, local: u32) -> u32 {
        self.global_ids[local as usize]
    }
}

/// A merged, globally ranked hit.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedResult {
    /// Global document id.
    pub docid: u32,
    /// Score as computed by the owning node.
    pub score: f32,
    /// Document name.
    pub name: String,
    /// Which node produced it.
    pub node: usize,
}

/// Per-node accounting for one scatter-gather search.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTiming {
    /// Node index.
    pub node: usize,
    /// Wall-clock time of the node's local search, as observed by its
    /// fan-out thread (includes thread scheduling, so under oversubscription
    /// it exceeds `cpu_time`).
    pub wall: Duration,
    /// The node engine's own CPU-side execution time.
    pub cpu_time: Duration,
    /// Simulated I/O the node charged during this query (zero in the usual
    /// hot, RAM-resident configuration).
    pub io: IoStats,
    /// Execution passes of the node's local search (two-pass strategies
    /// reach 2 when the conjunctive first pass came up short); 1 for
    /// strategies without a fallback, and for failed searches.
    pub passes: u8,
}

/// The coordinator's view of one scattered query: the merged global top-N
/// plus per-node latency accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterResponse {
    /// Globally ranked hits, best first — bit-identical to
    /// [`SimulatedCluster::search`] on the same query.
    pub results: Vec<MergedResult>,
    /// One timing record per node, in node order. The slowest entry gates
    /// the query (§3.4's load-imbalance effect, now observable directly).
    pub node_timings: Vec<NodeTiming>,
    /// Time the coordinator spent merging the per-node top-N lists.
    pub merge_time: Duration,
    /// Nodes whose fan-out worker died mid-query (empty on the happy
    /// path). A failed node contributed no hits: `results` covers the
    /// surviving partitions only, and the caller decides whether partial
    /// coverage is acceptable — the networked coordinator consumes this
    /// shape by retrying the partition on a replica instead.
    pub failures: Vec<ClusterError>,
}

/// A document-partitioned cluster of query nodes. Nodes are `Arc`-shared
/// so serving layers (the in-process worker pool, the networked
/// [`crate::net::NodeServer`]s) can hold handles to the same partition
/// state the cluster owns.
pub struct SimulatedCluster {
    nodes: Vec<Arc<Node>>,
}

impl SimulatedCluster {
    /// Partitions `collection` into `num_partitions` nodes and indexes each.
    pub fn build(
        collection: &SyntheticCollection,
        num_partitions: usize,
        index_config: &IndexConfig,
    ) -> Self {
        let partitions = partition_collection(collection, num_partitions);
        let nodes = partitions
            .into_iter()
            .map(
                |Partition {
                     collection,
                     global_ids,
                 }| {
                    let index = InvertedIndex::build(&collection, index_config);
                    let buffers = Arc::new(BufferManager::with_mode(
                        DiskModel::instant(), // index held in RAM (§3.4)
                        BufferMode::Hot,
                        0,
                    ));
                    Arc::new(Node::new(index, global_ids, buffers))
                },
            )
            .collect();
        SimulatedCluster { nodes }
    }

    /// Builds the cluster by *streaming* the collection: documents are
    /// routed round-robin by global docid to per-partition
    /// [`StreamingIndexBuilder`]s as each chunk arrives, and dropped
    /// immediately after — the `medium`/`large` scale path, where
    /// materializing per-partition [`SyntheticCollection`]s (each carrying
    /// a full vocabulary and query-log copy) would dominate memory.
    ///
    /// Returns the cluster together with the workload tail (judged queries
    /// + efficiency log), which only exists once the stream is drained.
    ///
    /// # Panics
    /// Panics if `num_partitions == 0`.
    pub fn build_streaming(
        mut stream: CollectionStream,
        num_partitions: usize,
        index_config: &IndexConfig,
        chunk_size: usize,
    ) -> (Self, CollectionTail) {
        assert!(num_partitions > 0, "at least one partition required");
        let vocab = stream.vocab();
        let mut builders: Vec<StreamingIndexBuilder> = (0..num_partitions)
            .map(|_| StreamingIndexBuilder::new(vocab.len(), index_config))
            .collect();
        let mut global_ids: Vec<Vec<u32>> = vec![Vec::new(); num_partitions];
        while let Some(chunk) = stream.next_chunk(chunk_size) {
            for doc in &chunk {
                let p = partition_of(doc.id, num_partitions);
                builders[p].push_doc(&doc.name, &doc.terms, doc.len);
                global_ids[p].push(doc.id);
            }
        }
        let tail = stream.finish();
        let parts = builders.into_iter().zip(global_ids).collect();
        (Self::from_partition_builders(parts, &vocab), tail)
    }

    /// [`Self::build_streaming`] under a total posting-memory budget: each
    /// partition gets an equal share of `budget_bytes` and spills sorted
    /// runs to disk when its share fills ([`SpillingIndexBuilder`]), so the
    /// whole cluster build's posting accumulators stay within the budget.
    /// Returns per-partition [`SpillStats`] alongside the cluster and tail;
    /// each entry carries both the accumulator peak and the finish-phase
    /// peak (`finish_peak_bytes`) of its partition's streaming columnar
    /// merge. Partitions finish **sequentially**, so the process-wide
    /// finish-phase footprint at any instant is one partition's
    /// `finish_peak_bytes` plus the resident accumulators of the partitions
    /// still waiting — the accounting `scale_pipeline --mem-budget` asserts.
    ///
    /// # Panics
    /// Panics if `num_partitions == 0`.
    pub fn build_streaming_spill(
        mut stream: CollectionStream,
        num_partitions: usize,
        index_config: &IndexConfig,
        chunk_size: usize,
        budget_bytes: usize,
    ) -> Result<(Self, CollectionTail, Vec<SpillStats>), SpillError> {
        assert!(num_partitions > 0, "at least one partition required");
        let vocab = stream.vocab();
        let per_partition = (budget_bytes / num_partitions).max(1);
        let mut builders: Vec<SpillingIndexBuilder> = (0..num_partitions)
            .map(|_| {
                SpillingIndexBuilder::new(
                    vocab.len(),
                    index_config,
                    SpillConfig::with_budget(per_partition),
                )
            })
            .collect();
        let mut global_ids: Vec<Vec<u32>> = vec![Vec::new(); num_partitions];
        let mut chunk = Vec::new();
        while stream.next_chunk_into(chunk_size, &mut chunk) > 0 {
            for doc in &chunk {
                let p = partition_of(doc.id, num_partitions);
                builders[p].push_doc(&doc.name, &doc.terms, doc.len)?;
                global_ids[p].push(doc.id);
            }
        }
        let tail = stream.finish();
        let mut stats = Vec::with_capacity(num_partitions);
        let mut parts = Vec::with_capacity(num_partitions);
        for (builder, ids) in builders.into_iter().zip(global_ids) {
            let (index, s) = builder.finish(&vocab)?;
            stats.push(s);
            parts.push((index, ids));
        }
        Ok((Self::from_partition_indexes(parts), tail, stats))
    }

    /// Assembles a cluster from already-finished per-partition indexes and
    /// their local→global docid mappings.
    ///
    /// # Panics
    /// Panics if `parts` is empty or a mapping's length disagrees with its
    /// index's document count.
    pub fn from_partition_indexes(parts: Vec<(InvertedIndex, Vec<u32>)>) -> Self {
        assert!(!parts.is_empty(), "at least one partition required");
        let nodes = parts
            .into_iter()
            .map(|(index, global_ids)| {
                assert_eq!(
                    index.stats().num_docs as usize,
                    global_ids.len(),
                    "global-id mapping does not cover the partition"
                );
                let buffers = Arc::new(BufferManager::with_mode(
                    DiskModel::instant(),
                    BufferMode::Hot,
                    0,
                ));
                Arc::new(Node::new(index, global_ids, buffers))
            })
            .collect();
        SimulatedCluster { nodes }
    }

    /// Assembles a cluster from per-partition streaming builders and their
    /// local→global docid mappings (entry `i` of a partition's mapping is
    /// the global docid of the `i`-th document pushed to its builder).
    /// Useful when the caller drives one [`CollectionStream`] into several
    /// consumers at once and routes documents itself.
    ///
    /// # Panics
    /// Panics if `parts` is empty or a mapping's length disagrees with its
    /// builder's document count.
    pub fn from_partition_builders(
        parts: Vec<(StreamingIndexBuilder, Vec<u32>)>,
        vocab: &[String],
    ) -> Self {
        assert!(!parts.is_empty(), "at least one partition required");
        Self::from_partition_indexes(
            parts
                .into_iter()
                .map(|(builder, global_ids)| (builder.finish(vocab), global_ids))
                .collect(),
        )
    }

    /// Writes one partition segment per node next to `base`: node `i` goes
    /// to `<base>.p<i>`, each carrying its local→global docid map. Returns
    /// the paths in node order — feed them back to [`Self::open_segments`]
    /// (typically in a fresh process) to reassemble this exact cluster.
    pub fn persist_segments(&self, base: impl AsRef<Path>) -> Result<Vec<PathBuf>, SegmentError> {
        let base = base.as_ref();
        let mut paths = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let mut path = base.as_os_str().to_owned();
            path.push(format!(".p{i}"));
            let path = PathBuf::from(path);
            node.index
                .write_partition_segment(&node.global_ids, &path)?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// Reassembles a cluster from partition segments written by
    /// [`Self::persist_segments`], one node per path. Every segment is
    /// fully verified at open; posting blocks stay on disk and are `pread`
    /// through each node's buffer pool on first touch, so a freshly opened
    /// cluster serves cold and warms as queries run. Search results are
    /// bit-identical to the cluster that wrote the segments.
    pub fn open_segments(paths: &[PathBuf]) -> Result<Self, SegmentError> {
        assert!(!paths.is_empty(), "at least one partition required");
        let mut parts = Vec::with_capacity(paths.len());
        for path in paths {
            parts.push(InvertedIndex::open_partition_segment(path)?);
        }
        Ok(Self::from_partition_indexes(parts))
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes, as shareable handles — a networked serving layer clones
    /// one per [`crate::net::NodeServer`] replica.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// Broadcast a query, merge per-node top-`n` into the global top-`n`.
    ///
    /// Ties on score order by global docid, matching the single-node
    /// engine's earlier-row preference. Nodes are searched sequentially on
    /// the calling thread; [`Self::search_scatter`] is the concurrent
    /// fan-out with identical results.
    pub fn search(&self, terms: &[u32], strategy: SearchStrategy, n: usize) -> Vec<MergedResult> {
        let per_node = self
            .nodes
            .iter()
            .enumerate()
            .map(|(ni, node)| Self::node_search(node, ni, terms, strategy, n).0)
            .collect();
        Self::merge_top_n(per_node, n)
    }

    /// One node's local top-`n`, mapped to global docids, plus its timing.
    fn node_search(
        node: &Node,
        ni: usize,
        terms: &[u32],
        strategy: SearchStrategy,
        n: usize,
    ) -> (Vec<MergedResult>, NodeTiming) {
        let started = Instant::now();
        node.check_injected_fault();
        let engine = node.engine();
        let mut scratch = node.scratch.acquire();
        let searched = engine.search_with_scratch(terms, strategy, n, &mut scratch);
        node.scratch.release(scratch);
        let (results, cpu_time, io, passes) = match searched {
            Ok(resp) => {
                let hits = resp
                    .results
                    .into_iter()
                    .map(|r| MergedResult {
                        docid: node.global_id(r.docid),
                        score: r.score,
                        name: r.name,
                        node: ni,
                    })
                    .collect();
                (hits, resp.cpu_time, resp.io, resp.passes)
            }
            Err(_) => (Vec::new(), Duration::ZERO, IoStats::default(), 1),
        };
        let timing = NodeTiming {
            node: ni,
            wall: started.elapsed(),
            cpu_time,
            io,
            passes,
        };
        (results, timing)
    }

    /// Coordinator merge: concatenates per-node top-`n` lists (given in
    /// node order) and keeps the global top-`n`. Deterministic: descending
    /// score with global-docid tie-break.
    fn merge_top_n(per_node: Vec<Vec<MergedResult>>, n: usize) -> Vec<MergedResult> {
        let mut merged: Vec<MergedResult> = per_node.into_iter().flatten().collect();
        merged.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.docid.cmp(&b.docid)));
        merged.truncate(n);
        merged
    }

    /// Scatter-gather search: the query fans out to every partition on its
    /// own thread, each node runs the *real* single-node engine over its
    /// persistent buffer pool, and the coordinator merges the per-node
    /// top-`n` lists into the global top-`n` — the paper's §3.4 serving
    /// architecture ("broadcast to all indexing nodes ... merged into a
    /// global top-N"), executed rather than modeled.
    ///
    /// Results are bit-identical to the sequential [`Self::search`]: the
    /// gather step collects per-node lists in node order before the same
    /// deterministic merge, so thread completion order cannot leak into
    /// the ranking.
    ///
    /// A node thread that *panics* does not abort the query: the join
    /// error is caught and reported as a [`ClusterError::NodeFailed`]
    /// entry in [`ScatterResponse::failures`] (with a zeroed timing slot),
    /// and the merge covers the surviving partitions. Callers that cannot
    /// accept partial coverage check `failures`; the networked coordinator
    /// instead retries the partition on a replica.
    pub fn search_scatter(
        &self,
        terms: &[u32],
        strategy: SearchStrategy,
        n: usize,
    ) -> ScatterResponse {
        let mut per_node: Vec<(Vec<MergedResult>, NodeTiming)> =
            Vec::with_capacity(self.nodes.len());
        let mut failures = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .nodes
                .iter()
                .enumerate()
                .map(|(ni, node)| {
                    let node = Arc::clone(node);
                    s.spawn(move || Self::node_search(&node, ni, terms, strategy, n))
                })
                .collect();
            // `handles` is in node order; joining in order re-establishes a
            // deterministic gather regardless of completion order.
            for (ni, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(found) => per_node.push(found),
                    Err(_) => {
                        // The worker's panic payload is already printed by
                        // the default hook; what the coordinator needs is
                        // the typed fact that this partition reported
                        // nothing.
                        failures.push(ClusterError::NodeFailed { partition: ni });
                        per_node.push((
                            Vec::new(),
                            NodeTiming {
                                node: ni,
                                wall: Duration::ZERO,
                                cpu_time: Duration::ZERO,
                                io: IoStats::default(),
                                passes: 1,
                            },
                        ));
                    }
                }
            }
        });
        let mut results = Vec::with_capacity(self.nodes.len());
        let mut node_timings = Vec::with_capacity(self.nodes.len());
        for (hits, timing) in per_node {
            results.push(hits);
            node_timings.push(timing);
        }
        let merge_started = Instant::now();
        let results = Self::merge_top_n(results, n);
        ScatterResponse {
            results,
            node_timings,
            merge_time: merge_started.elapsed(),
            failures,
        }
    }

    /// Measures, for each query, the *actual* per-node execution time of
    /// the local top-`n` search (hot data). These matrices feed the
    /// discrete-event scheduler. Nodes are measured in parallel threads to
    /// keep harness wall-clock down; each measurement itself is
    /// single-threaded, like one query on one server core.
    pub fn measure_compute(
        &self,
        queries: &[Vec<u32>],
        strategy: SearchStrategy,
        n: usize,
    ) -> Result<Vec<Vec<Duration>>, ClusterError> {
        let num_nodes = self.nodes.len();
        let mut per_node: Vec<Vec<Duration>> = Vec::with_capacity(num_nodes);
        let mut failed = None;
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .nodes
                .iter()
                .map(|node| {
                    let node = Arc::clone(node);
                    s.spawn(move || {
                        let engine = node.engine();
                        // Warm the node once so measurements reflect the
                        // paper's hot-data condition.
                        if let Some(q) = queries.first() {
                            let _ = engine.search(q, strategy, n);
                        }
                        queries
                            .iter()
                            .map(|q| {
                                node.check_injected_fault();
                                engine
                                    .search(q, strategy, n)
                                    .map(|r| r.cpu_time)
                                    .unwrap_or(Duration::ZERO)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for (ni, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(row) => per_node.push(row),
                    Err(_) => {
                        // Keep joining the rest so no thread is leaked past
                        // the scope, then report the first dead node.
                        failed.get_or_insert(ClusterError::NodeFailed { partition: ni });
                    }
                }
            }
        });
        if let Some(err) = failed {
            return Err(err);
        }
        // Transpose to per-query rows: compute[q][node].
        let num_q = queries.len();
        Ok((0..num_q)
            .map(|q| (0..num_nodes).map(|p| per_node[p][q]).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use x100_corpus::CollectionConfig;

    fn setup(n: usize) -> (SyntheticCollection, SimulatedCluster) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let cluster = SimulatedCluster::build(&c, n, &IndexConfig::compressed());
        (c, cluster)
    }

    #[test]
    fn merged_results_are_globally_ranked() {
        let (c, cluster) = setup(4);
        let q = &c.eval_queries[0];
        let merged = cluster.search(&q.terms, SearchStrategy::Bm25, 20);
        assert!(merged.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(merged.len() <= 20);
        // Names match global ids.
        for r in &merged {
            assert_eq!(r.name, format!("doc-{:08}", r.docid));
        }
    }

    #[test]
    fn distributed_approximates_single_node() {
        // Per-node statistics are 1/n-scaled, so rankings agree up to
        // boundary effects. On the 300-doc tiny fixture a 2-way split keeps
        // the per-node statistics close enough to require strong overlap;
        // wider splits over so few documents make df/avgdl genuinely noisy
        // (150 docs per node), which is a property of tiny partitions, not
        // of the merge logic (checked exactly by the 1-node test below).
        let (c, cluster) = setup(2);
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let engine = QueryEngine::new(&idx);
        let mut total_overlap = 0usize;
        let mut total = 0usize;
        for q in &c.eval_queries {
            let single: HashSet<u32> = engine
                .search(&q.terms, SearchStrategy::Bm25, 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            let dist: HashSet<u32> = cluster
                .search(&q.terms, SearchStrategy::Bm25, 20)
                .iter()
                .map(|r| r.docid)
                .collect();
            total_overlap += single.intersection(&dist).count();
            total += single.len().min(20);
        }
        assert!(
            total_overlap * 100 >= total * 80,
            "overlap {total_overlap}/{total}"
        );
    }

    #[test]
    fn one_node_cluster_equals_single_engine_exactly() {
        let (c, cluster) = setup(1);
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let engine = QueryEngine::new(&idx);
        for q in c.eval_queries.iter().take(3) {
            let single: Vec<(u32, String)> = engine
                .search(&q.terms, SearchStrategy::Bm25, 10)
                .unwrap()
                .results
                .into_iter()
                .map(|r| (r.docid, r.name))
                .collect();
            let dist: Vec<(u32, String)> = cluster
                .search(&q.terms, SearchStrategy::Bm25, 10)
                .into_iter()
                .map(|r| (r.docid, r.name))
                .collect();
            assert_eq!(single, dist);
        }
    }

    #[test]
    fn compute_matrix_has_query_by_node_shape() {
        let (c, cluster) = setup(3);
        let queries: Vec<Vec<u32>> = c.efficiency_log.iter().take(5).cloned().collect();
        let m = cluster
            .measure_compute(&queries, SearchStrategy::Bm25, 20)
            .unwrap();
        assert_eq!(m.len(), 5);
        assert!(m.iter().all(|row| row.len() == 3));
    }

    #[test]
    fn empty_query_returns_empty() {
        let (_, cluster) = setup(2);
        assert!(cluster.search(&[], SearchStrategy::Bm25, 10).is_empty());
    }

    #[test]
    fn streaming_build_equals_batch_build() {
        let cfg = CollectionConfig::tiny();
        let (c, batch) = setup(3);
        let stream = CollectionStream::new(&cfg);
        let (streamed, tail) =
            SimulatedCluster::build_streaming(stream, 3, &IndexConfig::compressed(), 64);
        assert_eq!(streamed.num_nodes(), batch.num_nodes());
        for (a, b) in streamed.nodes().iter().zip(batch.nodes()) {
            assert_eq!(a.global_ids, b.global_ids);
            assert_eq!(
                a.index().td().column("docid").unwrap().read_all(),
                b.index().td().column("docid").unwrap().read_all()
            );
            assert_eq!(
                a.index().td().column("tf").unwrap().read_all(),
                b.index().td().column("tf").unwrap().read_all()
            );
        }
        assert_eq!(tail.efficiency_log, c.efficiency_log);
        // Merged search results agree exactly.
        for q in c.eval_queries.iter().take(3) {
            assert_eq!(
                streamed.search(&q.terms, SearchStrategy::Bm25, 10),
                batch.search(&q.terms, SearchStrategy::Bm25, 10)
            );
        }
    }

    #[test]
    fn spill_streaming_build_equals_streaming_build() {
        let cfg = CollectionConfig::tiny();
        let (plain, _) = SimulatedCluster::build_streaming(
            CollectionStream::new(&cfg),
            3,
            &IndexConfig::compressed(),
            64,
        );
        let (spilled, tail, stats) = SimulatedCluster::build_streaming_spill(
            CollectionStream::new(&cfg),
            3,
            &IndexConfig::compressed(),
            64,
            12 * 1024, // 4 KiB per partition: forces several runs each
        )
        .unwrap();
        assert!(stats.iter().all(|s| s.runs > 0), "{stats:?}");
        assert!(stats.iter().all(|s| s.peak_accum_bytes <= 4 * 1024));
        // Finish-phase accounting is populated for every partition merge.
        assert!(stats.iter().all(|s| s.finish_peak_bytes > 0), "{stats:?}");
        for (a, b) in spilled.nodes().iter().zip(plain.nodes()) {
            assert_eq!(a.global_ids, b.global_ids);
            assert_eq!(
                a.index().td().column("docid").unwrap().read_all(),
                b.index().td().column("docid").unwrap().read_all()
            );
            assert_eq!(
                a.index().td().column("tf").unwrap().read_all(),
                b.index().td().column("tf").unwrap().read_all()
            );
        }
        for q in tail.eval_queries.iter().take(3) {
            assert_eq!(
                spilled.search(&q.terms, SearchStrategy::Bm25, 10),
                plain.search(&q.terms, SearchStrategy::Bm25, 10)
            );
        }
    }

    #[test]
    fn scatter_gather_is_bit_identical_to_sequential() {
        let (c, cluster) = setup(4);
        for q in &c.eval_queries {
            let sequential = cluster.search(&q.terms, SearchStrategy::Bm25, 20);
            let scattered = cluster.search_scatter(&q.terms, SearchStrategy::Bm25, 20);
            assert_eq!(scattered.results, sequential);
        }
    }

    #[test]
    fn scatter_records_one_timing_per_node() {
        let (c, cluster) = setup(3);
        let resp = cluster.search_scatter(&c.eval_queries[0].terms, SearchStrategy::Bm25, 10);
        assert_eq!(resp.node_timings.len(), 3);
        for (i, t) in resp.node_timings.iter().enumerate() {
            assert_eq!(t.node, i);
            // The fan-out thread's wall window strictly contains the
            // engine's own execution window.
            assert!(
                t.wall >= t.cpu_time,
                "node {i}: wall {:?} < cpu {:?}",
                t.wall,
                t.cpu_time
            );
        }
    }

    #[test]
    fn scatter_on_empty_query_returns_empty() {
        let (_, cluster) = setup(2);
        let resp = cluster.search_scatter(&[], SearchStrategy::Bm25, 10);
        assert!(resp.results.is_empty());
        assert_eq!(resp.node_timings.len(), 2);
    }

    #[test]
    fn reopened_segment_cluster_is_bit_identical() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let cluster = SimulatedCluster::build(&c, 3, &IndexConfig::materialized_q8());
        let mut base = std::env::temp_dir();
        base.push(format!("x100-cluster-segments-{}", std::process::id()));
        let paths = cluster.persist_segments(&base).unwrap();
        assert_eq!(paths.len(), 3);
        let reopened = SimulatedCluster::open_segments(&paths).unwrap();
        assert_eq!(reopened.num_nodes(), cluster.num_nodes());
        for q in c.eval_queries.iter().take(5) {
            assert_eq!(
                reopened.search(&q.terms, SearchStrategy::Bm25Materialized, 20),
                cluster.search(&q.terms, SearchStrategy::Bm25Materialized, 20)
            );
        }
        for p in paths {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn streaming_zero_partitions_rejected() {
        let stream = CollectionStream::new(&CollectionConfig::tiny());
        let _ = SimulatedCluster::build_streaming(stream, 0, &IndexConfig::compressed(), 64);
    }

    #[test]
    fn streaming_placement_agrees_with_partition_of() {
        // The third copy of the placement rule lived here before it was
        // factored into `partition_of`; pin that the streaming builders
        // and the batch partitioner route every document identically.
        let cfg = CollectionConfig::tiny();
        for n in [2usize, 3, 5] {
            let (streamed, _) = SimulatedCluster::build_streaming(
                CollectionStream::new(&cfg),
                n,
                &IndexConfig::compressed(),
                64,
            );
            for (pi, node) in streamed.nodes().iter().enumerate() {
                for &g in &node.global_ids {
                    assert_eq!(partition_of(g, n), pi, "doc {g} with {n} partitions");
                }
            }
        }
    }

    #[test]
    fn panicking_node_is_contained_and_reported() {
        // A node-thread panic must not abort the scatter (the old
        // `join().expect(...)` did): the query completes over the
        // surviving partitions and the dead node surfaces as a typed
        // `ClusterError::NodeFailed` the failover layer can consume.
        let (c, cluster) = setup(3);
        let q = &c.eval_queries[0].terms;
        let healthy = cluster.search_scatter(q, SearchStrategy::Bm25, 20);
        assert!(healthy.failures.is_empty());

        cluster.nodes()[1].inject_search_panic_for_tests(true);
        let resp = cluster.search_scatter(q, SearchStrategy::Bm25, 20);
        assert_eq!(
            resp.failures,
            vec![ClusterError::NodeFailed { partition: 1 }],
            "exactly the injected node reports failure"
        );
        assert_eq!(
            resp.node_timings.len(),
            3,
            "timing slots stay in node order"
        );
        // The merge covers the surviving partitions: every healthy hit
        // from a surviving node is still present, bit-identical and in
        // rank order (hits freed by node 1's absence may interleave below
        // the old truncation boundary).
        assert!(resp.results.iter().all(|r| r.node != 1));
        let expected: Vec<_> = healthy.results.iter().filter(|r| r.node != 1).collect();
        assert!(resp.results.len() >= expected.len());
        let mut remaining = resp.results.iter();
        for want in &expected {
            assert!(
                remaining
                    .any(|got| (got.docid, got.score.to_bits())
                        == (want.docid, want.score.to_bits())),
                "surviving hit {want:?} missing from degraded merge"
            );
        }

        // measure_compute reports the same typed failure instead of
        // panicking (the `:500` twin of the scatter-path bug).
        let queries: Vec<Vec<u32>> = c.efficiency_log.iter().take(2).cloned().collect();
        assert_eq!(
            cluster.measure_compute(&queries, SearchStrategy::Bm25, 10),
            Err(ClusterError::NodeFailed { partition: 1 })
        );

        cluster.nodes()[1].inject_search_panic_for_tests(false);
        let recovered = cluster.search_scatter(q, SearchStrategy::Bm25, 20);
        assert!(recovered.failures.is_empty());
        assert_eq!(recovered.results, healthy.results);
    }
}
