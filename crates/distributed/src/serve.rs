//! The concurrent serving path: worker pool, bounded admission, load
//! generation and latency accounting.
//!
//! The paper's throughput argument (§3.4) is that a partitioned index
//! serves "a heavy query load (hundreds of queries per second)" because
//! *concurrent* query streams keep every resource busy even while any
//! single query waits on the slowest node or on I/O. This module makes
//! that claim executable:
//!
//! * [`AdmissionQueue`] — a bounded MPMC queue between load generators and
//!   workers. Bounded means **backpressure**: when the pool is saturated,
//!   submitters block instead of buffering unboundedly (the difference
//!   between a latency spike and an OOM under overload).
//! * [`QueryService`] — what a worker runs per query. Implemented by
//!   [`x100_ir::QueryExecutor`] (one node, executors cloned per worker over
//!   a shared index + lock-striped buffer pool) and by
//!   `Arc<SimulatedCluster>` (each query scatter-gathers across all
//!   partitions).
//! * [`run_closed_loop`] / [`run_open_loop`] — the two canonical load
//!   shapes: closed-loop (a submitter keeps the queue primed; measures
//!   capacity) and open-loop (queries arrive on a fixed schedule
//!   regardless of completions; measures latency at a target rate, with
//!   latency counted from the *scheduled* arrival so queueing delay under
//!   saturation is not silently omitted).
//! * [`LatencyHistogram`] — log-bucketed latency recording with p50/p95/p99
//!   readout (≤ ~6 % relative bucket error).
//!
//! To serve in the *I/O-bound* regime, build the shared pool with
//! [`x100_storage::BufferManager::with_simulated_miss_latency`]: every
//! miss then sleeps its simulated disk cost inside the query that
//! triggered it — exactly once, on the thread that incurred it — so
//! concurrent workers overlap I/O waits the way a real server overlaps
//! outstanding disk requests, and throughput scales with added workers
//! even on a single core. (Sleeping per *worker* on a shared pool would
//! misattribute I/O: a pool-stats delta taken around one query picks up
//! concurrent queries' misses.)

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use x100_ir::{QueryExecutor, SearchStrategy};
use x100_storage::IoStats;

use crate::cluster::SimulatedCluster;

// ---------------------------------------------------------------------------
// Bounded admission queue
// ---------------------------------------------------------------------------

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO with blocking push
/// (backpressure) and blocking pop. Closing wakes everyone: pending items
/// still drain, then `pop` returns `None`.
pub struct AdmissionQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` undelivered items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue needs capacity at least 1");
        AdmissionQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the item
    /// back as `Err` if the queue was closed before space appeared.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`Self::push`], but constructs the item *at admission time*:
    /// `make` runs under the queue lock, immediately before the item
    /// becomes visible to workers, after any backpressure wait has already
    /// passed. Closed-loop submitters use this to stamp timestamps at
    /// admission — stamping before a blocking `push` would count the
    /// submitter's own backpressure wait as query latency. Returns `false`
    /// if the queue closed before space appeared (`make` is not called).
    pub fn push_with(&self, make: impl FnOnce() -> T) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.closed {
                return false;
            }
            if st.items.len() < self.capacity {
                let item = make();
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return true;
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty and not
    /// closed. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: no further pushes are admitted; pending items
    /// still drain through `pop`.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Undelivered items currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Two-lane admission queue
// ---------------------------------------------------------------------------

/// Which admission lane a job rides: `Short` is the priority lane for
/// small (cheap) queries, `Long` carries the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Priority lane for short queries.
    Short,
    /// Default lane for long queries.
    Long,
}

struct TwoLaneState<T> {
    short: VecDeque<T>,
    long: VecDeque<T>,
    closed: bool,
    /// Consecutive short-lane dequeues since the long lane was last
    /// served (or found empty).
    short_run: usize,
}

/// A bounded two-lane MPMC queue: the short lane is dequeued
/// preferentially so cheap queries are not stuck behind expensive ones,
/// but the long lane is **starvation-free** — whenever it is non-empty, at
/// least one of every `guarantee` consecutive dequeues takes from it.
/// Each lane is independently bounded at `capacity`, pushes block per
/// lane, and closing behaves exactly like [`AdmissionQueue::close`]: no
/// further admissions, pending items in both lanes still drain.
pub struct TwoLaneQueue<T> {
    capacity: usize,
    guarantee: usize,
    state: Mutex<TwoLaneState<T>>,
    not_empty: Condvar,
    not_full_short: Condvar,
    not_full_long: Condvar,
}

impl<T> TwoLaneQueue<T> {
    /// A queue admitting at most `capacity` undelivered items *per lane*,
    /// serving the long lane at least once per `guarantee` dequeues while
    /// it has items.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `guarantee == 0`.
    pub fn new(capacity: usize, guarantee: usize) -> Self {
        assert!(capacity > 0, "two-lane queue needs capacity at least 1");
        assert!(
            guarantee > 0,
            "long-lane guarantee must be at least every 1st dequeue"
        );
        TwoLaneQueue {
            capacity,
            guarantee,
            state: Mutex::new(TwoLaneState {
                short: VecDeque::with_capacity(capacity),
                long: VecDeque::with_capacity(capacity),
                closed: false,
                short_run: 0,
            }),
            not_empty: Condvar::new(),
            not_full_short: Condvar::new(),
            not_full_long: Condvar::new(),
        }
    }

    fn lane_condvar(&self, lane: Lane) -> &Condvar {
        match lane {
            Lane::Short => &self.not_full_short,
            Lane::Long => &self.not_full_long,
        }
    }

    /// Enqueues `item` on `lane`, blocking while that lane is full.
    /// Returns the item back as `Err` if the queue was closed before space
    /// appeared.
    pub fn push(&self, lane: Lane, item: T) -> Result<(), T> {
        match self.push_impl(lane, || item) {
            Ok(()) => Ok(()),
            Err(make) => Err(make()),
        }
    }

    /// Like [`Self::push`], but constructs the item at admission time,
    /// under the queue lock, after any backpressure wait — the two-lane
    /// analogue of [`AdmissionQueue::push_with`]. Returns `false` if the
    /// queue closed before space appeared (`make` is not called).
    pub fn push_with(&self, lane: Lane, make: impl FnOnce() -> T) -> bool {
        self.push_impl(lane, make).is_ok()
    }

    fn push_impl<F: FnOnce() -> T>(&self, lane: Lane, make: F) -> Result<(), F> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.closed {
                return Err(make);
            }
            let items = match lane {
                Lane::Short => &mut st.short,
                Lane::Long => &mut st.long,
            };
            if items.len() < self.capacity {
                items.push_back(make());
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .lane_condvar(lane)
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the next item honoring the lane policy, blocking while
    /// both lanes are empty and the queue is open. Returns `None` once
    /// closed *and* drained. Also reports which lane served the item.
    pub fn pop(&self) -> Option<(Lane, T)> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let take_long = if st.long.is_empty() {
                false
            } else {
                // Long lane has work: take it when the short lane is idle
                // or when the anti-starvation quota comes due.
                st.short.is_empty() || st.short_run + 1 >= self.guarantee
            };
            let (lane, item) = if take_long {
                (Lane::Long, st.long.pop_front())
            } else {
                (Lane::Short, st.short.pop_front())
            };
            if let Some(item) = item {
                match lane {
                    Lane::Short => st.short_run += 1,
                    Lane::Long => st.short_run = 0,
                }
                drop(st);
                self.lane_condvar(lane).notify_one();
                return Some((lane, item));
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: no further pushes on either lane; pending items
    /// still drain through `pop`.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
        self.not_full_short.notify_all();
        self.not_full_long.notify_all();
    }

    /// Undelivered items currently queued, `(short, long)`.
    pub fn lane_lens(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (st.short.len(), st.long.len())
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

const SUB_BITS: u32 = 4;
const SUB_BUCKETS: u64 = 1 << SUB_BITS; // 16 linear sub-buckets per octave
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB_BUCKETS as usize) + SUB_BUCKETS as usize;

/// A log-bucketed latency histogram: 16 linear sub-buckets per power of
/// two of nanoseconds, giving ≤ ~6 % relative error on reported
/// quantiles across the full `Duration` range — constant memory, O(1)
/// record, mergeable across workers.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
}

fn bucket_of(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS {
        return nanos as usize;
    }
    let msb = 63 - nanos.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((nanos >> shift) & (SUB_BUCKETS - 1)) as usize;
    (shift as usize) * SUB_BUCKETS as usize + SUB_BUCKETS as usize + sub
}

/// Inclusive upper bound of a bucket, in nanoseconds.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        return idx as u64;
    }
    let shift = (idx - SUB_BUCKETS as usize) / SUB_BUCKETS as usize;
    let sub = ((idx - SUB_BUCKETS as usize) % SUB_BUCKETS as usize) as u64;
    // Widen before shifting: the topmost octave's bound exceeds u64 (its
    // true upper edge is 2^64·(sub+17)/16), so clamp to u64::MAX instead
    // of wrapping to 0 and breaking monotonicity.
    let bound = (u128::from(SUB_BUCKETS + sub + 1) << shift) - 1;
    u64::try_from(bound).unwrap_or(u64::MAX)
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        let nanos = u64::try_from(sample.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_of(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Folds another histogram into this one (per-worker → run total).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_nanos / u128::from(self.count)) as u64)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(if self.count == 0 { 0 } else { self.max_nanos })
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): an upper bound on the latency of
    /// the `⌈q·count⌉`-th fastest sample, within the bucket's ≤ ~6 %
    /// width. [`Duration::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Never report beyond the true extremes.
                return Duration::from_nanos(
                    bucket_upper(idx).clamp(self.min_nanos, self.max_nanos),
                );
            }
        }
        Duration::from_nanos(self.max_nanos)
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Query service
// ---------------------------------------------------------------------------

/// The hits and accounting a service returns for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedQuery {
    /// `(docid, score)` pairs, best first — docids are global for cluster
    /// services. Names are deliberately not materialized on the serving
    /// hot path.
    pub hits: Vec<(u32, f32)>,
    /// Simulated disk time charged while this query ran. Exact when the
    /// service's pool is unshared or idle; on a pool shared with
    /// concurrent queries it is a stats-delta and may include other
    /// queries' concurrent misses (run-level totals stay exact).
    pub io_time: Duration,
    /// Execution passes (two-pass strategies).
    pub passes: u8,
}

/// What a worker runs per admitted query. Implementations must be cheap to
/// clone — each worker owns a clone, sharing the heavy state (`Arc`s)
/// underneath.
pub trait QueryService: Send + Sync {
    /// Executes one query.
    ///
    /// # Panics
    /// Serving assumes a well-configured plan; implementations panic on
    /// planning errors (e.g. a materialized-score strategy over an index
    /// without score columns) rather than degrade silently.
    fn execute(&self, terms: &[u32], strategy: SearchStrategy, n: usize) -> ServedQuery;

    /// Cumulative simulated-I/O statistics of the underlying pool(s),
    /// used to account a run's I/O as a start/end delta.
    fn io_stats(&self) -> IoStats;
}

impl QueryService for QueryExecutor {
    fn execute(&self, terms: &[u32], strategy: SearchStrategy, n: usize) -> ServedQuery {
        // The fused scratch-arena path: the one allocation per served
        // query is the hits vector handed back in `ServedQuery` (the
        // executor's arena itself is reused, warm queries run
        // allocation-free up to this point).
        let mut hits = Vec::with_capacity(n);
        let meta = self
            .search_hits_into(terms, strategy, n, &mut hits)
            .expect("serving path: query plan failed");
        ServedQuery {
            hits,
            io_time: meta.io.sim_time,
            passes: meta.passes,
        }
    }

    fn io_stats(&self) -> IoStats {
        self.buffers().stats()
    }
}

/// Scatter-gather serving: every admitted query fans out to all partitions
/// ([`SimulatedCluster::search_scatter`]) and the worker acts as its
/// coordinator. The I/O wait is the *slowest node's* simulated disk time —
/// nodes read in parallel, so that is what gates the query.
impl QueryService for std::sync::Arc<SimulatedCluster> {
    fn execute(&self, terms: &[u32], strategy: SearchStrategy, n: usize) -> ServedQuery {
        let resp = self.search_scatter(terms, strategy, n);
        // The in-process cluster has no replicas to fail over to, and a
        // silently partial merge would be worse than stopping: per the
        // trait contract, a dead node is a serving-configuration fault
        // here. The networked coordinator is the implementation that
        // turns `failures` into replica retries instead.
        assert!(
            resp.failures.is_empty(),
            "in-process scatter lost partitions: {:?}",
            resp.failures
        );
        let io_time = resp
            .node_timings
            .iter()
            .map(|t| t.io.sim_time)
            .max()
            .unwrap_or(Duration::ZERO);
        // Two-pass accounting: the query "went to a second pass" if any
        // node's local search did.
        let passes = resp
            .node_timings
            .iter()
            .map(|t| t.passes)
            .max()
            .unwrap_or(1);
        ServedQuery {
            hits: resp.results.iter().map(|r| (r.docid, r.score)).collect(),
            io_time,
            passes,
        }
    }

    fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for node in self.nodes() {
            total.merge(&node.buffers().stats());
        }
        total
    }
}

// ---------------------------------------------------------------------------
// Worker pool and load loops
// ---------------------------------------------------------------------------

/// Serving-run configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission queue capacity (in-flight bound; submitters block beyond
    /// it).
    pub queue_depth: usize,
    /// Strategy every query runs with.
    pub strategy: SearchStrategy,
    /// Top-N to retrieve per query.
    pub top_n: usize,
    /// When `Some(t)`, admission becomes two-lane: queries with at most
    /// `t` terms ride a priority lane so cheap lookups are not stuck
    /// behind expensive disjunctions (each lane is bounded at
    /// `queue_depth`). `None` keeps the single FIFO lane.
    pub short_query_max_terms: Option<usize>,
    /// Anti-starvation bound for the two-lane mode: while the long lane
    /// has work, at least one of every this-many dequeues serves it.
    pub long_lane_guarantee: usize,
}

impl ServeConfig {
    /// A config for `workers` threads with conventional defaults: queue
    /// depth `2 × workers`, [`SearchStrategy::Bm25TwoPass`], top-20,
    /// single-lane admission.
    pub fn new(workers: usize) -> Self {
        ServeConfig {
            workers,
            queue_depth: workers.max(1) * 2,
            strategy: SearchStrategy::Bm25TwoPass,
            top_n: 20,
            short_query_max_terms: None,
            long_lane_guarantee: 4,
        }
    }

    /// Builder-style switch to two-lane admission: queries with at most
    /// `max_terms` terms take the priority lane.
    #[must_use]
    pub fn with_short_lane(mut self, max_terms: usize) -> Self {
        self.short_query_max_terms = Some(max_terms);
        self
    }
}

/// One admitted query travelling through the pool.
struct QueryJob {
    id: usize,
    terms: Vec<u32>,
    /// Where this query's latency clock starts. Open loop: when it was
    /// *supposed* to arrive per the schedule, stamped before the
    /// (possibly blocking) push so saturation delay is counted. Closed
    /// loop: the moment the bounded queue admitted it — a closed-loop
    /// query does not exist before admission, so the submitter's own
    /// backpressure wait must not count as query latency.
    scheduled: Instant,
    /// When the queue admitted it (closed loop) or its submission attempt
    /// began (open loop; admission may come later under backpressure).
    submitted: Instant,
}

/// Per-query outcome, reported in query order.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Index of the query in the submitted log.
    pub id: usize,
    /// Worker that served it.
    pub worker: usize,
    /// `(docid, score)` hits, best first.
    pub hits: Vec<(u32, f32)>,
    /// Time spent in the admission system, ending at dequeue by a worker.
    /// Open loop: starts at the submission attempt, deliberately
    /// *including* any backpressure blocking before the bounded queue
    /// admitted the job, so saturation shows up here rather than
    /// vanishing. Closed loop: starts at admission — the submitter's
    /// backpressure wait is its own pacing, not time the query spent
    /// in the system.
    pub queue_wait: Duration,
    /// Time from dequeue to completion (includes simulated-I/O sleeps when
    /// the service's pool enacts miss latency).
    pub service_time: Duration,
    /// End-to-end latency from the *scheduled* arrival to completion — in
    /// open-loop runs this includes backpressure delay before admission,
    /// so saturation cannot hide queueing (no coordinated omission).
    pub latency: Duration,
    /// Simulated disk time charged to this query.
    pub io_time: Duration,
    /// Execution passes.
    pub passes: u8,
}

/// Aggregate results of one serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// Worker count the run used.
    pub workers: usize,
    /// Queries completed (always the full log; workers drain the queue).
    pub completed: usize,
    /// Wall-clock time from first submission to last completion.
    pub wall: Duration,
    /// Completed queries per wall-clock second.
    pub qps: f64,
    /// End-to-end latency distribution (scheduled arrival → completion).
    pub latency: LatencyHistogram,
    /// Admission-system wait distribution (backpressure + in-queue; see
    /// [`QueryOutcome::queue_wait`]).
    pub queue_wait: LatencyHistogram,
    /// Worker service-time distribution.
    pub service: LatencyHistogram,
    /// Simulated I/O charged during the run (pool-stats delta).
    pub io: IoStats,
    /// Per-query outcomes in query order (`outcomes[i].id == i`).
    pub outcomes: Vec<QueryOutcome>,
}

/// Closed-loop load: the submitter keeps the bounded queue primed and the
/// workers never starve — measures the configuration's *capacity* (max
/// sustainable QPS). A closed-loop query's latency clock starts when the
/// bounded queue *admits* it, so it includes only queue wait within the
/// bounded depth plus service time — never the submitter's own
/// backpressure blocking, which is pacing, not latency.
pub fn run_closed_loop<S: QueryService + Clone>(
    service: &S,
    config: &ServeConfig,
    queries: &[Vec<u32>],
) -> ServeReport {
    run(service, config, queries, None)
}

/// Open-loop load at a fixed arrival rate (queries per second): query `i`
/// is scheduled at `i / rate` and submitted then (or as soon as the
/// bounded queue admits it). Measures latency at a target throughput; at
/// rates beyond capacity, backpressure delay shows up in `latency`.
///
/// # Panics
/// Panics if `rate_qps` is not finite and positive.
pub fn run_open_loop<S: QueryService + Clone>(
    service: &S,
    config: &ServeConfig,
    queries: &[Vec<u32>],
    rate_qps: f64,
) -> ServeReport {
    assert!(
        rate_qps.is_finite() && rate_qps > 0.0,
        "open-loop arrival rate must be positive"
    );
    run(service, config, queries, Some(rate_qps))
}

/// The admission frontend `run` drives: a single FIFO, or the two-lane
/// priority queue when [`ServeConfig::short_query_max_terms`] is set.
/// Both present the same push/pop/close contract to the load loop.
enum JobQueue {
    Single(AdmissionQueue<QueryJob>),
    TwoLane {
        lanes: TwoLaneQueue<QueryJob>,
        max_terms: usize,
    },
}

impl JobQueue {
    fn for_config(config: &ServeConfig) -> Self {
        match config.short_query_max_terms {
            Some(max_terms) => JobQueue::TwoLane {
                lanes: TwoLaneQueue::new(config.queue_depth, config.long_lane_guarantee),
                max_terms,
            },
            None => JobQueue::Single(AdmissionQueue::new(config.queue_depth)),
        }
    }

    fn push(&self, n_terms: usize, job: QueryJob) -> Result<(), QueryJob> {
        match self {
            JobQueue::Single(q) => q.push(job),
            JobQueue::TwoLane { lanes, max_terms } => {
                lanes.push(lane_for(n_terms, *max_terms), job)
            }
        }
    }

    fn push_with(&self, n_terms: usize, make: impl FnOnce() -> QueryJob) -> bool {
        match self {
            JobQueue::Single(q) => q.push_with(make),
            JobQueue::TwoLane { lanes, max_terms } => {
                lanes.push_with(lane_for(n_terms, *max_terms), make)
            }
        }
    }

    fn pop(&self) -> Option<QueryJob> {
        match self {
            JobQueue::Single(q) => q.pop(),
            JobQueue::TwoLane { lanes, .. } => lanes.pop().map(|(_, job)| job),
        }
    }

    fn close(&self) {
        match self {
            JobQueue::Single(q) => q.close(),
            JobQueue::TwoLane { lanes, .. } => lanes.close(),
        }
    }
}

fn lane_for(n_terms: usize, max_terms: usize) -> Lane {
    if n_terms <= max_terms {
        Lane::Short
    } else {
        Lane::Long
    }
}

fn run<S: QueryService + Clone>(
    service: &S,
    config: &ServeConfig,
    queries: &[Vec<u32>],
    arrival_rate: Option<f64>,
) -> ServeReport {
    assert!(config.workers > 0, "at least one worker required");
    let queue = JobQueue::for_config(config);
    let slots: Vec<Mutex<Option<QueryOutcome>>> =
        (0..queries.len()).map(|_| Mutex::new(None)).collect();
    let io_before = service.io_stats();
    let start = Instant::now();

    /// Closes the queue when a worker unwinds, so a panicking pool can
    /// never strand the load generator in a blocking `push` with no
    /// consumers left (closing an already-closed queue is a no-op, so the
    /// normal exit path is unaffected).
    struct CloseOnDrop<'a>(&'a JobQueue);
    impl Drop for CloseOnDrop<'_> {
        fn drop(&mut self) {
            self.0.close();
        }
    }

    std::thread::scope(|s| {
        for worker in 0..config.workers {
            let svc = service.clone();
            let queue = &queue;
            let slots = &slots;
            s.spawn(move || {
                let _close_on_panic = CloseOnDrop(queue);
                while let Some(job) = queue.pop() {
                    let dequeued = Instant::now();
                    let served = svc.execute(&job.terms, config.strategy, config.top_n);
                    let done = Instant::now();
                    let outcome = QueryOutcome {
                        id: job.id,
                        worker,
                        hits: served.hits,
                        queue_wait: dequeued.saturating_duration_since(job.submitted),
                        service_time: done.saturating_duration_since(dequeued),
                        latency: done.saturating_duration_since(job.scheduled),
                        io_time: served.io_time,
                        passes: served.passes,
                    };
                    *slots[job.id].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                }
            });
        }

        // Load generation on the calling thread.
        for (id, terms) in queries.iter().enumerate() {
            let admitted = match arrival_rate {
                Some(rate) => {
                    // Open loop: the latency clock starts at the scheduled
                    // arrival, stamped *before* the blocking push — if the
                    // system cannot absorb the offered rate, the admission
                    // delay is real latency and must be measured.
                    let target = start + Duration::from_secs_f64(id as f64 / rate);
                    if let Some(wait) = target.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    queue
                        .push(
                            terms.len(),
                            QueryJob {
                                id,
                                terms: terms.clone(),
                                scheduled: target,
                                submitted: Instant::now(),
                            },
                        )
                        .is_ok()
                }
                // Closed loop: the query exists only once the bounded
                // queue admits it, so both clocks start at admission —
                // inside `push_with`, after any backpressure wait.
                None => queue.push_with(terms.len(), || {
                    let now = Instant::now();
                    QueryJob {
                        id,
                        terms: terms.clone(),
                        scheduled: now,
                        submitted: now,
                    }
                }),
            };
            if !admitted {
                // Only workers close the queue mid-run, and only by
                // unwinding; stop submitting and let the scope propagate
                // their panic.
                break;
            }
        }
        queue.close();
    });

    let wall = start.elapsed();
    let mut latency = LatencyHistogram::new();
    let mut queue_wait = LatencyHistogram::new();
    let mut service_hist = LatencyHistogram::new();
    let mut outcomes = Vec::with_capacity(queries.len());
    for slot in slots {
        let outcome = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("worker pool dropped a query");
        latency.record(outcome.latency);
        queue_wait.record(outcome.queue_wait);
        service_hist.record(outcome.service_time);
        outcomes.push(outcome);
    }
    let completed = outcomes.len();
    ServeReport {
        workers: config.workers,
        completed,
        wall,
        qps: completed as f64 / wall.as_secs_f64().max(1e-9),
        latency,
        queue_wait,
        service: service_hist,
        io: service.io_stats().delta_since(&io_before),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use x100_corpus::{CollectionConfig, SyntheticCollection};
    use x100_ir::{IndexConfig, InvertedIndex};

    fn tiny_service() -> (Vec<Vec<u32>>, QueryExecutor) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = Arc::new(InvertedIndex::build(&c, &IndexConfig::compressed()));
        let queries = c.efficiency_log.clone();
        (queries, QueryExecutor::new(idx))
    }

    #[test]
    fn queue_delivers_every_item_exactly_once() {
        let queue: Arc<AdmissionQueue<usize>> = Arc::new(AdmissionQueue::new(4));
        let seen = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let queue = queue.clone();
                let seen = seen.clone();
                s.spawn(move || {
                    while let Some(v) = queue.pop() {
                        seen.lock().unwrap().push(v);
                    }
                });
            }
            for v in 0..100 {
                queue.push(v).unwrap();
            }
            queue.close();
        });
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn queue_push_after_close_is_rejected() {
        let queue: AdmissionQueue<u32> = AdmissionQueue::new(2);
        queue.push(1).unwrap();
        queue.close();
        assert_eq!(queue.push(2), Err(2));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn close_unparks_blocked_pushers_with_clean_rejection() {
        // The close-then-drain race, pinned: a submitter parked in a
        // blocking `push` on a full depth-1 queue observes `close()` and
        // must get a clean rejection — its item handed back, not silently
        // dropped, and no deadlock. The already-admitted item still
        // drains. (`close` wakes `not_full` waiters and the push loop
        // re-checks `closed` before re-checking capacity, so the parked
        // pusher cannot slip its item in after the close either.)
        let queue: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(1));
        queue.push(1).unwrap();
        let pusher = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.push(2))
        };
        let with_pusher = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.push_with(|| 3))
        };
        // Let both submitters reach the parked wait on the full queue.
        std::thread::sleep(Duration::from_millis(50));
        queue.close();
        assert_eq!(
            pusher.join().unwrap(),
            Err(2),
            "parked push must be rejected with its item returned"
        );
        assert!(
            !with_pusher.join().unwrap(),
            "parked push_with must report rejection (its closure never ran)"
        );
        // Close-then-drain: the admitted item survives, the rejected ones
        // never appear.
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn close_rejects_parked_pusher_even_when_space_appears_first() {
        // The nastier interleaving: the queue is closed *and* drained
        // while the pusher is parked, so the pusher wakes to a queue with
        // free space. The closed check must still win — an item admitted
        // after close would either be lost (drain already finished) or
        // resurrect a "done" queue.
        let queue: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(1));
        queue.push(1).unwrap();
        let pusher = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.push(2))
        };
        std::thread::sleep(Duration::from_millis(50));
        queue.close();
        assert_eq!(queue.pop(), Some(1)); // space appears after close
        assert_eq!(pusher.join().unwrap(), Err(2));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn two_lane_short_queries_overtake_queued_long() {
        let q: TwoLaneQueue<u32> = TwoLaneQueue::new(4, 3);
        q.push(Lane::Long, 100).unwrap();
        q.push(Lane::Long, 101).unwrap();
        q.push(Lane::Short, 1).unwrap();
        q.push(Lane::Short, 2).unwrap();
        // The later-arriving short jobs drain first; within a lane, FIFO.
        assert_eq!(q.pop(), Some((Lane::Short, 1)));
        assert_eq!(q.pop(), Some((Lane::Short, 2)));
        assert_eq!(q.pop(), Some((Lane::Long, 100)));
        assert_eq!(q.pop(), Some((Lane::Long, 101)));
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn two_lane_long_lane_is_starvation_free() {
        // A constantly replenished short lane must not starve the long
        // lane: with guarantee N = 4, a queued long job is dequeued within
        // 4 pops even though a short job is always available.
        let q: TwoLaneQueue<u32> = TwoLaneQueue::new(8, 4);
        q.push(Lane::Long, 999).unwrap();
        let mut next_short = 0u32;
        for _ in 0..6 {
            q.push(Lane::Short, next_short).unwrap();
            next_short += 1;
        }
        let mut dequeues = 0;
        loop {
            let (lane, v) = q.pop().expect("queue is non-empty");
            dequeues += 1;
            // Refill so the short lane never empties — priority alone
            // would then never reach the long lane.
            q.push(Lane::Short, next_short).unwrap();
            next_short += 1;
            if lane == Lane::Long {
                assert_eq!(v, 999);
                break;
            }
            assert!(
                dequeues < 4,
                "long job starved past the guarantee: {dequeues} short dequeues"
            );
        }
        assert!(dequeues <= 4);
    }

    #[test]
    fn two_lane_delivers_every_item_exactly_once() {
        let q: Arc<TwoLaneQueue<usize>> = Arc::new(TwoLaneQueue::new(4, 3));
        let seen = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let q = q.clone();
                let seen = seen.clone();
                s.spawn(move || {
                    while let Some((_, v)) = q.pop() {
                        seen.lock().unwrap().push(v);
                    }
                });
            }
            for v in 0..100 {
                let lane = if v % 3 == 0 { Lane::Long } else { Lane::Short };
                q.push(lane, v).unwrap();
            }
            q.close();
        });
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn two_lane_close_unparks_blocked_pushers_with_clean_rejection() {
        // The depth-1 close-vs-push pin, per lane: a submitter parked on
        // each full lane observes `close()` and gets a clean rejection —
        // item handed back (or closure never run), no deadlock — while the
        // already-admitted items still drain.
        let q: Arc<TwoLaneQueue<u32>> = Arc::new(TwoLaneQueue::new(1, 2));
        q.push(Lane::Short, 1).unwrap();
        q.push(Lane::Long, 2).unwrap();
        let short_pusher = {
            let q = q.clone();
            std::thread::spawn(move || q.push(Lane::Short, 3))
        };
        let long_pusher = {
            let q = q.clone();
            std::thread::spawn(move || q.push_with(Lane::Long, || 4))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(
            short_pusher.join().unwrap(),
            Err(3),
            "parked short-lane push must be rejected with its item returned"
        );
        assert!(
            !long_pusher.join().unwrap(),
            "parked long-lane push_with must report rejection"
        );
        assert_eq!(q.pop(), Some((Lane::Short, 1)));
        assert_eq!(q.pop(), Some((Lane::Long, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn two_lane_close_rejects_parked_pusher_even_when_space_appears_first() {
        // Mirror of the single-lane pin: the queue is closed and drained
        // while the pusher is parked, so it wakes to free space — the
        // closed check must still win or the item would be stranded.
        let q: Arc<TwoLaneQueue<u32>> = Arc::new(TwoLaneQueue::new(1, 2));
        q.push(Lane::Short, 1).unwrap();
        let pusher = {
            let q = q.clone();
            std::thread::spawn(move || q.push(Lane::Short, 2))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(q.pop(), Some((Lane::Short, 1))); // space appears after close
        assert_eq!(pusher.join().unwrap(), Err(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn two_lane_serving_run_matches_single_lane_results() {
        // Lane routing changes *when* a query is served, never *what* it
        // returns: every outcome is bit-identical to the single-lane run.
        let (queries, exec) = tiny_service();
        let mut cfg = ServeConfig::new(2);
        cfg.top_n = 10;
        let reference = run_closed_loop(&exec, &cfg, &queries);
        let cfg = cfg.with_short_lane(2);
        let report = run_closed_loop(&exec, &cfg, &queries);
        assert_eq!(report.completed, queries.len());
        for (a, b) in report.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.hits, b.hits,
                "two-lane serving diverged on query {}",
                a.id
            );
        }
    }

    #[test]
    fn queue_bounds_create_backpressure() {
        // One worker consuming a 10 ms job at a time from a depth-1 queue:
        // the fifth push cannot complete before ~3 services have finished.
        let queue: AdmissionQueue<u32> = AdmissionQueue::new(1);
        std::thread::scope(|s| {
            s.spawn(|| {
                while queue.pop().is_some() {
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
            let start = Instant::now();
            for v in 0..5 {
                queue.push(v).unwrap();
            }
            let elapsed = start.elapsed();
            queue.close();
            assert!(
                elapsed >= Duration::from_millis(25),
                "pushes returned too fast for a bounded queue: {elapsed:?}"
            );
        });
    }

    #[test]
    fn histogram_quantiles_bound_known_samples() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50().as_secs_f64() * 1e3;
        let p99 = h.p99().as_secs_f64() * 1e3;
        assert!((47.0..=57.0).contains(&p50), "p50 {p50} ms");
        assert!((94.0..=107.0).contains(&p99), "p99 {p99} ms");
        assert_eq!(h.max(), Duration::from_millis(100));
        assert!(h.quantile(0.0) >= Duration::from_millis(1));
        assert!(h.quantile(1.0) <= Duration::from_millis(100));
        let mean = h.mean().as_secs_f64() * 1e3;
        assert!((50.0..51.0).contains(&mean), "mean {mean} ms");
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..200u64 {
            let d = Duration::from_micros(7 * i + 3);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            all.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.p50(), all.p50());
        assert_eq!(a.p99(), all.p99());
        assert_eq!(a.mean(), all.mean());
    }

    #[test]
    fn bucket_upper_bounds_are_monotone_and_contain_their_values() {
        let mut prev = 0u64;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            255,
            1_000,
            65_535,
            1 << 30,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let idx = bucket_of(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper({idx}) = {upper} < {v}");
            assert!(upper >= prev);
            // Relative bucket error stays within ~1/16 + 1 (the topmost
            // octave clamps at u64::MAX, where the bound is exact anyway).
            assert!(
                upper - v <= v / 16 + 1 || upper == u64::MAX,
                "bucket too wide at {v}: {upper}"
            );
            prev = upper;
        }
    }

    #[test]
    fn closed_loop_serves_every_query_bit_identically() {
        let (queries, exec) = tiny_service();
        let reference: Vec<Vec<(u32, f32)>> = queries
            .iter()
            .map(|q| exec.execute(q, SearchStrategy::Bm25TwoPass, 10).hits)
            .collect();
        for workers in [1usize, 3] {
            let mut cfg = ServeConfig::new(workers);
            cfg.top_n = 10;
            let report = run_closed_loop(&exec, &cfg, &queries);
            assert_eq!(report.completed, queries.len());
            assert_eq!(report.latency.count() as usize, queries.len());
            assert!(report.qps > 0.0);
            for (i, outcome) in report.outcomes.iter().enumerate() {
                assert_eq!(outcome.id, i);
                assert_eq!(
                    outcome.hits, reference[i],
                    "worker-pool hits diverged on query {i} at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn open_loop_completes_and_measures_from_schedule() {
        let (queries, exec) = tiny_service();
        let queries = &queries[..20.min(queries.len())];
        let mut cfg = ServeConfig::new(2);
        cfg.top_n = 5;
        let report = run_open_loop(&exec, &cfg, queries, 2_000.0);
        assert_eq!(report.completed, queries.len());
        // Arrivals were spaced 0.5 ms apart: the run cannot have finished
        // faster than the schedule's span.
        assert!(report.wall >= Duration::from_secs_f64((queries.len() - 1) as f64 / 2_000.0));
        assert!(report.latency.count() as usize == queries.len());
    }

    #[test]
    fn cluster_service_matches_sequential_broadcast() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let cluster = Arc::new(SimulatedCluster::build(&c, 3, &IndexConfig::compressed()));
        let queries: Vec<Vec<u32>> = c.efficiency_log.iter().take(10).cloned().collect();
        let reference: Vec<Vec<(u32, f32)>> = queries
            .iter()
            .map(|q| {
                cluster
                    .search(q, SearchStrategy::Bm25, 10)
                    .into_iter()
                    .map(|r| (r.docid, r.score))
                    .collect()
            })
            .collect();
        let mut cfg = ServeConfig::new(2);
        cfg.strategy = SearchStrategy::Bm25;
        cfg.top_n = 10;
        let report = run_closed_loop(&cluster, &cfg, &queries);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.hits, reference[i], "query {i}");
        }
    }

    /// A deterministic service that sleeps: used to pin scaling and
    /// accounting behaviour without engine noise.
    #[derive(Clone)]
    struct SleepService {
        sleep: Duration,
        executed: Arc<AtomicUsize>,
    }

    impl QueryService for SleepService {
        fn execute(&self, terms: &[u32], _strategy: SearchStrategy, _n: usize) -> ServedQuery {
            std::thread::sleep(self.sleep);
            self.executed.fetch_add(1, Ordering::Relaxed);
            ServedQuery {
                hits: vec![(terms.first().copied().unwrap_or(0), 1.0)],
                io_time: Duration::ZERO,
                passes: 1,
            }
        }

        fn io_stats(&self) -> IoStats {
            IoStats::default()
        }
    }

    /// A service that always panics — a misconfigured plan, per the
    /// `QueryService::execute` contract.
    #[derive(Clone)]
    struct PanicService;

    impl QueryService for PanicService {
        fn execute(&self, _terms: &[u32], _strategy: SearchStrategy, _n: usize) -> ServedQuery {
            panic!("boom: service cannot plan this query");
        }

        fn io_stats(&self) -> IoStats {
            IoStats::default()
        }
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn panicking_workers_propagate_instead_of_deadlocking_the_submitter() {
        // All workers die on their first query; the drop guard closes the
        // queue so the submitter unblocks and the scope re-raises the
        // worker panic — previously the submitter waited forever on a
        // full queue with no consumers.
        let queries: Vec<Vec<u32>> = (0..64u32).map(|i| vec![i]).collect();
        let _ = run_closed_loop(&PanicService, &ServeConfig::new(2), &queries);
    }

    #[test]
    fn closed_loop_latency_excludes_submitter_backpressure() {
        // Depth-1 queue, one worker, 40 ms service: the submitter spends a
        // full service time blocked in `push` for every query past the
        // second. A closed-loop query's life is at most one service ahead
        // of it in the queue plus its own (~2 services); stamping the
        // latency clock before the blocking push — the old bug — adds the
        // submitter's wait on top (~3 services). Same shape for
        // queue_wait: in-queue time is ~1 service, the buggy
        // submission-attempt clock made it ~2.
        let service = SleepService {
            sleep: Duration::from_millis(40),
            executed: Arc::new(AtomicUsize::new(0)),
        };
        let queries: Vec<Vec<u32>> = (0..8u32).map(|i| vec![i]).collect();
        let mut cfg = ServeConfig::new(1);
        cfg.queue_depth = 1;
        let report = run_closed_loop(&service, &cfg, &queries);
        assert_eq!(report.completed, queries.len());
        let max_latency = report.latency.max();
        assert!(
            max_latency < Duration::from_millis(100),
            "closed-loop latency absorbed submitter backpressure: max {max_latency:?}"
        );
        let max_wait = report.queue_wait.max();
        assert!(
            max_wait < Duration::from_millis(70),
            "closed-loop queue wait double-counted backpressure: max {max_wait:?}"
        );
    }

    #[test]
    fn open_loop_latency_includes_backpressure_under_overload() {
        // The mirror-image pin: open-loop arrivals are scheduled near
        //-instantly against the same depth-1 queue and 20 ms service, so
        // queries stack up behind the schedule. Their latency clocks start
        // at the *scheduled* arrival and must absorb the queueing delay:
        // the last of 6 queries completes ~6 services after its arrival.
        let service = SleepService {
            sleep: Duration::from_millis(20),
            executed: Arc::new(AtomicUsize::new(0)),
        };
        let queries: Vec<Vec<u32>> = (0..6u32).map(|i| vec![i]).collect();
        let mut cfg = ServeConfig::new(1);
        cfg.queue_depth = 1;
        let report = run_open_loop(&service, &cfg, &queries, 10_000.0);
        assert_eq!(report.completed, queries.len());
        assert!(
            report.latency.max() >= Duration::from_millis(80),
            "open-loop latency lost its queueing delay: max {:?}",
            report.latency.max()
        );
    }

    #[test]
    fn workers_overlap_waiting_services() {
        let service = SleepService {
            sleep: Duration::from_millis(5),
            executed: Arc::new(AtomicUsize::new(0)),
        };
        let queries: Vec<Vec<u32>> = (0..24u32).map(|i| vec![i]).collect();
        let one = run_closed_loop(&service, &ServeConfig::new(1), &queries);
        let four = run_closed_loop(&service, &ServeConfig::new(4), &queries);
        assert_eq!(service.executed.load(Ordering::Relaxed), 48);
        // Sleep-bound workloads scale ~linearly; 2x is a conservative
        // floor that stays robust on loaded CI machines.
        assert!(
            four.qps > one.qps * 2.0,
            "4 workers {:.0} qps vs 1 worker {:.0} qps",
            four.qps,
            one.qps
        );
    }
}
