//! Distributed IR execution (§3.4, Table 3).
//!
//! "Text retrieval lends itself well for distributed execution, as we can
//! easily split up the document collection into N partitions, and let each
//! partition be indexed by its own server node. An incoming query can then
//! be broadcast to all indexing nodes, with each of them returning its local
//! top-N documents for that query. These per-node results can then be merged
//! into a global top-N."
//!
//! The paper's cluster was 8 physical machines on a LAN; ours is simulated
//! in two layers (see DESIGN.md's substitution table):
//!
//! * **Compute is real** — [`cluster::SimulatedCluster`] builds one genuine
//!   [`x100_ir::InvertedIndex`] per partition and *measures* each query's
//!   per-partition execution time by running it.
//! * **The network and queueing are modeled** — [`schedule`] replays those
//!   measured times through a deterministic discrete-event simulation with
//!   per-request dispatch jitter, reproducing the two phenomena Table 3
//!   demonstrates: load imbalance capping latency speedup (the slowest of N
//!   servers gates the query), and concurrent query streams restoring
//!   linear *throughput* scaling even as per-query latency degrades.

//!
//! A third layer promotes the simulation to real sockets: [`net`] serves
//! each partition from a TCP endpoint and scatter-gathers with per-node
//! deadlines, hedged retries, and replica failover, using the in-process
//! cluster as its bit-identical differential oracle.

pub mod cluster;
pub mod net;
pub mod partition;
pub mod schedule;
pub mod serve;

pub use cluster::{
    ClusterError, MergedResult, Node, NodeTiming, ScatterResponse, SimulatedCluster,
};
pub use net::{
    Coordinator, CoordinatorConfig, CoordinatorStats, Fault, NetCluster, NetError,
    NetSearchOutcome, NodeServer, PartitionAttempt, PartitionServeStats,
};
pub use partition::{partition_collection, partition_of, Partition};
pub use schedule::{simulate_run, JitterModel, RunConfig, RunStats};
pub use serve::{
    run_closed_loop, run_open_loop, AdmissionQueue, Lane, LatencyHistogram, QueryOutcome,
    QueryService, ServeConfig, ServeReport, ServedQuery, TwoLaneQueue,
};
