//! Discrete-event scheduling of broadcast queries over servers and streams.
//!
//! Reproduces the *timing* side of Table 3. Inputs are per-query,
//! per-partition compute times (measured for real by
//! [`crate::cluster::SimulatedCluster::measure_compute`]); this module
//! models everything the paper's LAN contributed:
//!
//! * each query is broadcast to all servers; a server's work for a query is
//!   the sum of its assigned partitions' compute times (fixed partition
//!   count, variable server count — the paper's "using less servers" rows);
//! * each request incurs a dispatch overhead with log-normal jitter (RPC,
//!   NIC, OS scheduling). The *maximum* of N jittered responses gates query
//!   latency, which is exactly the load-imbalance effect the paper blames
//!   for its sub-linear latency speedup ("the slowest one ... takes twice
//!   as long as the fastest");
//! * `num_streams` concurrent clients each submit their next query when
//!   their previous one completes; servers process requests FIFO. More
//!   streams keep servers busy, so *throughput* scales even as per-query
//!   latency degrades — the lower half of Table 3.
//!
//! Time is integer nanoseconds; the jitter RNG is seeded; the whole
//! simulation is deterministic.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Log-normal dispatch-overhead model: `base · exp(σ·Z)`, `Z ~ N(0,1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterModel {
    /// Median per-request dispatch overhead.
    pub base: Duration,
    /// Log-normal shape (0 = constant overhead).
    pub sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JitterModel {
    fn default() -> Self {
        // ~4 ms median RPC+scheduling overhead on a 2006 LAN, with enough
        // spread that max-of-8 is ~2x the min, matching Table 3's imbalance.
        JitterModel {
            base: Duration::from_micros(4000),
            sigma: 0.35,
            seed: 0xD157,
        }
    }
}

impl JitterModel {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        // Box-Muller; rand's small core has no normal distribution and the
        // allowed-crates list excludes rand_distr.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let factor = (self.sigma * z).exp();
        (self.base.as_nanos() as f64 * factor) as u64
    }
}

/// One Table 3 run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Number of physical servers; the (fixed) partitions are assigned
    /// round-robin.
    pub num_servers: usize,
    /// Concurrent query streams.
    pub num_streams: usize,
    /// Cost of merging per-node top-Ns at the coordinator.
    pub merge_overhead: Duration,
    /// Dispatch jitter model.
    pub jitter: JitterModel,
}

impl RunConfig {
    /// `servers` servers, one stream, default overheads.
    pub fn servers(servers: usize) -> Self {
        RunConfig {
            num_servers: servers,
            num_streams: 1,
            merge_overhead: Duration::from_micros(150),
            jitter: JitterModel::default(),
        }
    }

    /// `servers` servers and `streams` concurrent streams.
    pub fn streams(servers: usize, streams: usize) -> Self {
        RunConfig {
            num_streams: streams,
            ..Self::servers(servers)
        }
    }
}

/// Aggregated timing results of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Queries simulated.
    pub queries: usize,
    /// Mean per-query latency (submission → merged result).
    pub avg_latency: Duration,
    /// Makespan divided by query count — the paper's "amortized" column.
    pub amortized: Duration,
    /// Mean over queries of the *fastest* server's response time.
    pub server_min: Duration,
    /// Mean over queries of the mean server response time.
    pub server_avg: Duration,
    /// Mean over queries of the *slowest* server's response time (this is
    /// what gates latency).
    pub server_max: Duration,
    /// Total simulated wall-clock of the run.
    pub makespan: Duration,
    /// Queries per second.
    pub throughput_qps: f64,
}

/// Replays `compute[query][partition]` through the scheduling model.
///
/// # Panics
/// Panics if `compute` is empty, any row's width differs, or the config has
/// zero servers/streams.
pub fn simulate_run(compute: &[Vec<Duration>], cfg: &RunConfig) -> RunStats {
    assert!(!compute.is_empty(), "no queries to simulate");
    assert!(
        cfg.num_servers > 0 && cfg.num_streams > 0,
        "degenerate config"
    );
    let num_partitions = compute[0].len();
    assert!(
        compute.iter().all(|r| r.len() == num_partitions),
        "ragged compute matrix"
    );
    assert!(
        cfg.num_servers <= num_partitions,
        "more servers than partitions has idle servers; assign fewer"
    );

    let mut rng = StdRng::seed_from_u64(cfg.jitter.seed);
    // Per-server work per query: sum of its round-robin partitions.
    let work_of = |q: usize, s: usize| -> u64 {
        (s..num_partitions)
            .step_by(cfg.num_servers)
            .map(|p| compute[q][p].as_nanos() as u64)
            .sum()
    };

    let merge = cfg.merge_overhead.as_nanos() as u64;
    let mut server_free = vec![0u64; cfg.num_servers];
    // Stream state: (next submission time, next index into its query list).
    // Query q belongs to stream q % num_streams; streams process their
    // queries in order.
    let mut stream_clock = vec![0u64; cfg.num_streams];
    let mut stream_next = vec![0usize; cfg.num_streams];

    let mut latencies: Vec<u64> = vec![0; compute.len()];
    let mut resp_min = 0u64;
    let mut resp_avg = 0u64;
    let mut resp_max = 0u64;
    let mut makespan = 0u64;

    // Process submissions in global time order across streams.
    let mut remaining = compute.len();
    while remaining > 0 {
        // Earliest-submitting stream that still has queries.
        let (&t_submit, stream) = stream_clock
            .iter()
            .zip(0..)
            .filter(|&(_, s)| {
                let q = stream_next[s] * cfg.num_streams + s;
                q < compute.len()
            })
            .min_by_key(|&(&t, s)| (t, s))
            .expect("remaining > 0 implies an active stream");
        let q = stream_next[stream] * cfg.num_streams + stream;
        stream_next[stream] += 1;
        remaining -= 1;

        let mut q_min = u64::MAX;
        let mut q_sum = 0u64;
        let mut q_max = 0u64;
        #[allow(clippy::needless_range_loop)] // `s` also feeds work_of(q, s)
        for s in 0..cfg.num_servers {
            // The server is *occupied* only while computing; network transit
            // (the jittered dispatch overhead) delays the response without
            // holding the server. This is what lets throughput keep scaling
            // under concurrent streams while latency degrades — the paper's
            // own observation that "load imbalance affects latency but not
            // throughput".
            let start = t_submit.max(server_free[s]);
            let work_done = start + work_of(q, s);
            server_free[s] = work_done;
            let resp = work_done + cfg.jitter.sample(&mut rng) - t_submit;
            q_min = q_min.min(resp);
            q_sum += resp;
            q_max = q_max.max(resp);
        }
        let done = t_submit + q_max + merge;
        latencies[q] = done - t_submit;
        resp_min += q_min;
        resp_avg += q_sum / cfg.num_servers as u64;
        resp_max += q_max;
        makespan = makespan.max(done);
        stream_clock[stream] = done;
    }

    let n = compute.len() as u64;
    let ns = |v: u64| Duration::from_nanos(v);
    RunStats {
        queries: compute.len(),
        avg_latency: ns(latencies.iter().sum::<u64>() / n),
        amortized: ns(makespan / n),
        server_min: ns(resp_min / n),
        server_avg: ns(resp_avg / n),
        server_max: ns(resp_max / n),
        makespan: ns(makespan),
        throughput_qps: compute.len() as f64 / (makespan as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform 1 ms of compute per partition per query.
    fn uniform(queries: usize, partitions: usize, ms: u64) -> Vec<Vec<Duration>> {
        vec![vec![Duration::from_millis(ms); partitions]; queries]
    }

    fn no_jitter() -> JitterModel {
        JitterModel {
            base: Duration::from_millis(2),
            sigma: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let compute = uniform(100, 8, 1);
        let cfg = RunConfig::streams(8, 4);
        assert_eq!(simulate_run(&compute, &cfg), simulate_run(&compute, &cfg));
    }

    #[test]
    fn fewer_servers_more_work_each() {
        let compute = uniform(200, 8, 1);
        let mut cfg = RunConfig::servers(8);
        cfg.jitter = no_jitter();
        let eight = simulate_run(&compute, &cfg);
        cfg.num_servers = 1;
        let one = simulate_run(&compute, &cfg);
        // One server does 8 ms of work per query (plus one 2 ms dispatch);
        // eight servers do 1 ms each (plus dispatch) in parallel.
        assert_eq!(eight.avg_latency.as_millis(), 3); // 2 + 1 + merge(<1)
        assert_eq!(one.avg_latency.as_millis(), 10); // 2 + 8 + merge
    }

    #[test]
    fn jitter_spreads_min_max_with_more_servers() {
        let compute = uniform(500, 8, 1);
        let cfg8 = RunConfig::servers(8);
        let cfg2 = RunConfig::servers(2);
        let r8 = simulate_run(&compute, &cfg8);
        let r2 = simulate_run(&compute, &cfg2);
        let spread8 = r8.server_max.as_nanos() as f64 / r8.server_min.as_nanos() as f64;
        let spread2 = r2.server_max.as_nanos() as f64 / r2.server_min.as_nanos() as f64;
        assert!(
            spread8 > spread2,
            "max/min spread must grow with server count: {spread8} vs {spread2}"
        );
        // The paper observes ~2x between slowest and fastest of 8.
        assert!(spread8 > 1.4, "{spread8}");
    }

    #[test]
    fn latency_gated_by_slowest_server() {
        // Partition 3 is 5x slower.
        let mut compute = uniform(100, 4, 1);
        for row in &mut compute {
            row[3] = Duration::from_millis(5);
        }
        let mut cfg = RunConfig::servers(4);
        cfg.jitter = no_jitter();
        let r = simulate_run(&compute, &cfg);
        assert!(r.avg_latency >= Duration::from_millis(7)); // 2 + 5
        assert!(r.server_max >= Duration::from_millis(7));
        assert!(r.server_min <= Duration::from_millis(4));
    }

    #[test]
    fn streams_improve_throughput_but_hurt_latency() {
        let compute = uniform(400, 8, 1);
        let one = simulate_run(&compute, &RunConfig::streams(8, 1));
        let four = simulate_run(&compute, &RunConfig::streams(8, 4));
        let eight = simulate_run(&compute, &RunConfig::streams(8, 8));
        assert!(four.throughput_qps > one.throughput_qps * 1.5);
        assert!(eight.amortized < one.amortized);
        assert!(eight.avg_latency > one.avg_latency);
        // Amortized time is monotone in streams (Table 3's right trend).
        assert!(four.amortized < one.amortized);
        assert!(eight.amortized <= four.amortized);
    }

    #[test]
    fn amortized_equals_makespan_over_queries() {
        let compute = uniform(37, 4, 2);
        let r = simulate_run(&compute, &RunConfig::streams(4, 2));
        assert_eq!(r.amortized, r.makespan / 37);
        assert!((r.throughput_qps - 37.0 / r.makespan.as_secs_f64()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "more servers than partitions")]
    fn too_many_servers_rejected() {
        simulate_run(&uniform(1, 2, 1), &RunConfig::servers(4));
    }

    #[test]
    #[should_panic(expected = "no queries")]
    fn empty_compute_rejected() {
        simulate_run(&[], &RunConfig::servers(1));
    }
}
