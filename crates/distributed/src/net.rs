//! Networked scatter-gather serving: real nodes behind TCP sockets.
//!
//! [`crate::cluster::SimulatedCluster`] fans a query out over threads in
//! one process; this module promotes each partition to a real serving
//! endpoint — a [`NodeServer`] listening on its own socket, answering
//! framed search requests from the partition's index — and a
//! [`Coordinator`] that scatter-gathers over those sockets the way the
//! paper's §3.4 broadcast would run on an actual LAN. The in-process
//! cluster is retained as the **differential oracle**: networked results
//! must stay bit-identical (docids, `f32::to_bits` scores, tie-breaks) to
//! [`crate::cluster::SimulatedCluster::search_scatter`].
//!
//! The coordinator treats every peer as failable (the lesson shared by
//! conflict-aware network-configuration and decentralized-coordination
//! work: one misbehaving party must not stop the collective):
//!
//! * **Per-node deadlines** — every partition query carries a total time
//!   budget; sockets never block past it.
//! * **Hedged retries** — if the serving replica has not answered within a
//!   hedge delay (the partition's observed p99 once enough samples exist,
//!   a configured initial value before that), the same request is
//!   re-issued to the next replica and the first answer wins.
//! * **Failover** — a replica that times out, refuses/resets the
//!   connection, or returns a malformed frame is marked down and the next
//!   replica serves; down replicas are deprioritized, not abandoned, so a
//!   recovered node re-enters rotation on its next success.
//! * **Typed errors, never panics** — protocol decode failures surface as
//!   [`NetError`] variants; when every replica of a partition is
//!   exhausted the query returns [`NetError::PartitionUnavailable`].
//!
//! # Frame layout
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! [0..4)   u32 LE  payload length (≤ 16 MiB; larger lengths are rejected
//!                  before any allocation trusts them)
//! [4]      u8      protocol version (1)
//! [5]      u8      kind: 1 = search request, 2 = search hits, 3 = error
//! [6..8)   u16 LE  reserved (must be 0)
//! [8..16)  u64 LE  request id (echoed by the response; a mismatch on a
//!                  pooled connection means a stale frame — typed error,
//!                  connection dropped)
//! [16..24) u64 LE  FNV-1a-64 checksum of the payload
//! [24..)   payload
//! ```
//!
//! Payloads are little-endian. A search request is `strategy tag (u8,
//! [`SearchStrategy::wire_tag`]), top-n (u32), term count (u32), terms
//! (u32 each)`. A hits response is `passes (u8), cpu nanos (u64), io
//! reads/bytes/nanos (u64 each), hit count (u32), (global docid u32,
//! score bits u32) pairs` — scores travel as `f32::to_bits`, so the wire
//! cannot perturb a single bit of the ranking. An error frame carries a
//! UTF-8 message and maps to [`NetError::Remote`].

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use x100_ir::SearchStrategy;
use x100_storage::IoStats;

use crate::cluster::{Node, SimulatedCluster};
use crate::serve::LatencyHistogram;

/// Protocol version byte carried by every frame.
pub const PROTOCOL_VERSION: u8 = 1;
/// Frame header length in bytes.
const HEADER_LEN: usize = 24;
/// Hard ceiling on a frame's payload: decode rejects larger declared
/// lengths before allocating (an adversarial or corrupt length must not
/// become an allocation bomb).
pub const MAX_PAYLOAD: usize = 16 << 20;

const KIND_SEARCH: u8 = 1;
const KIND_HITS: u8 = 2;
const KIND_ERROR: u8 = 3;

/// FNV-1a-64 — the same checksum discipline the run-file and segment
/// formats use, applied to every network payload.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failures of the networked serving path. Protocol violations are
/// data, not panics: the coordinator consumes them to mark replicas down
/// and fail over.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level I/O failure (connect refused, reset, EOF mid-frame).
    Io(io::Error),
    /// A socket operation exceeded its deadline.
    Timeout,
    /// The peer spoke a different protocol version.
    BadVersion {
        /// Version byte received.
        got: u8,
    },
    /// The frame kind byte is not one this protocol defines.
    BadKind {
        /// Kind byte received.
        got: u8,
    },
    /// The frame declared a payload longer than [`MAX_PAYLOAD`].
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
    },
    /// The payload checksum did not match the header's.
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the payload actually received.
        got: u64,
    },
    /// The response echoed a different request id than the one in flight
    /// (a stale frame on a reused connection).
    RequestIdMismatch {
        /// Id of the request in flight.
        expected: u64,
        /// Id the response carried.
        got: u64,
    },
    /// The payload failed structural validation.
    Malformed(&'static str),
    /// The remote node answered with a typed error of its own (e.g. a
    /// strategy its index cannot plan). Deterministic: every replica of
    /// the partition would answer the same, so this is not failed over.
    Remote(String),
    /// Every replica of a partition was tried (or the deadline expired)
    /// without a usable response.
    PartitionUnavailable {
        /// The partition that could not be served.
        partition: usize,
        /// Replica attempts actually issued before giving up.
        attempts: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O: {e}"),
            NetError::Timeout => write!(f, "deadline exceeded"),
            NetError::BadVersion { got } => {
                write!(f, "protocol version {got} (expected {PROTOCOL_VERSION})")
            }
            NetError::BadKind { got } => write!(f, "unknown frame kind {got}"),
            NetError::FrameTooLarge { len } => {
                write!(f, "declared payload of {len} bytes exceeds {MAX_PAYLOAD}")
            }
            NetError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "payload checksum {got:#018x} != declared {expected:#018x}"
                )
            }
            NetError::RequestIdMismatch { expected, got } => {
                write!(f, "response for request {got} while {expected} in flight")
            }
            NetError::Malformed(what) => write!(f, "malformed payload: {what}"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
            NetError::PartitionUnavailable {
                partition,
                attempts,
            } => write!(
                f,
                "partition {partition} unavailable after {attempts} replica attempt(s)"
            ),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => NetError::Timeout,
            _ => NetError::Io(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

fn write_frame(w: &mut impl Write, kind: u8, req_id: u64, payload: &[u8]) -> Result<(), NetError> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4] = PROTOCOL_VERSION;
    header[5] = kind;
    // [6..8) reserved, zero.
    header[8..16].copy_from_slice(&req_id.to_le_bytes());
    header[16..24].copy_from_slice(&fnv1a64(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads and validates one frame: `(kind, request id, payload)`.
fn read_frame(r: &mut impl Read) -> Result<(u8, u64, Vec<u8>), NetError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(NetError::FrameTooLarge { len: len as u64 });
    }
    let version = header[4];
    if version != PROTOCOL_VERSION {
        return Err(NetError::BadVersion { got: version });
    }
    let kind = header[5];
    if !(KIND_SEARCH..=KIND_ERROR).contains(&kind) {
        return Err(NetError::BadKind { got: kind });
    }
    if header[6] != 0 || header[7] != 0 {
        return Err(NetError::Malformed("reserved header bytes set"));
    }
    let req_id = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let expected = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let got = fnv1a64(&payload);
    if got != expected {
        return Err(NetError::ChecksumMismatch { expected, got });
    }
    Ok((kind, req_id, payload))
}

/// Little-endian payload reader with bounds-checked, typed failures.
struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(NetError::Malformed("payload shorter than declared"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), NetError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(NetError::Malformed("trailing bytes after payload"))
        }
    }
}

struct SearchRequest {
    strategy: SearchStrategy,
    n: usize,
    terms: Vec<u32>,
}

fn encode_search_request(terms: &[u32], strategy: SearchStrategy, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + terms.len() * 4);
    out.push(strategy.wire_tag());
    out.extend_from_slice(&u32::try_from(n).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
    for &t in terms {
        out.extend_from_slice(&t.to_le_bytes());
    }
    out
}

fn decode_search_request(payload: &[u8]) -> Result<SearchRequest, NetError> {
    let mut r = PayloadReader::new(payload);
    let strategy = SearchStrategy::from_wire_tag(r.u8()?)
        .ok_or(NetError::Malformed("unknown strategy tag"))?;
    let n = r.u32()? as usize;
    let count = r.u32()? as usize;
    let mut terms = Vec::with_capacity(count.min(MAX_PAYLOAD / 4));
    for _ in 0..count {
        terms.push(r.u32()?);
    }
    r.finish()?;
    Ok(SearchRequest { strategy, n, terms })
}

/// A decoded hits response: what one replica answered for one partition
/// query.
struct WireHits {
    hits: Vec<(u32, f32)>,
    passes: u8,
    io: IoStats,
}

fn encode_hits(hits: &[(u32, f32)], passes: u8, cpu: Duration, io: &IoStats, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(37 + hits.len() * 8);
    out.push(passes);
    out.extend_from_slice(
        &u64::try_from(cpu.as_nanos())
            .unwrap_or(u64::MAX)
            .to_le_bytes(),
    );
    out.extend_from_slice(&io.reads.to_le_bytes());
    out.extend_from_slice(&io.bytes.to_le_bytes());
    out.extend_from_slice(
        &u64::try_from(io.sim_time.as_nanos())
            .unwrap_or(u64::MAX)
            .to_le_bytes(),
    );
    out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
    for &(docid, score) in hits {
        out.extend_from_slice(&docid.to_le_bytes());
        out.extend_from_slice(&score.to_bits().to_le_bytes());
    }
}

fn decode_hits(payload: &[u8]) -> Result<WireHits, NetError> {
    let mut r = PayloadReader::new(payload);
    let passes = r.u8()?;
    let _cpu_nanos = r.u64()?;
    let io = IoStats {
        reads: r.u64()?,
        bytes: r.u64()?,
        sim_time: Duration::from_nanos(r.u64()?),
    };
    let count = r.u32()? as usize;
    let mut hits = Vec::with_capacity(count.min(MAX_PAYLOAD / 8));
    for _ in 0..count {
        let docid = r.u32()?;
        let score = f32::from_bits(r.u32()?);
        hits.push((docid, score));
    }
    r.finish()?;
    Ok(WireHits { hits, passes, io })
}

fn encode_error(msg: &str) -> Vec<u8> {
    let bytes = msg.as_bytes();
    let keep = bytes.len().min(4096);
    let mut out = Vec::with_capacity(4 + keep);
    out.extend_from_slice(&(keep as u32).to_le_bytes());
    out.extend_from_slice(&bytes[..keep]);
    out
}

fn decode_error(payload: &[u8]) -> Result<String, NetError> {
    let mut r = PayloadReader::new(payload);
    let len = r.u32()? as usize;
    let bytes = r.take(len)?;
    r.finish()?;
    Ok(String::from_utf8_lossy(bytes).into_owned())
}

// ---------------------------------------------------------------------------
// Node server
// ---------------------------------------------------------------------------

/// Fault-injection modes a [`NodeServer`] can be switched into, so suites
/// and the bench can exercise the coordinator's failure handling against
/// real sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Serve normally.
    None,
    /// Accept requests but never answer them (the client's hedge or
    /// deadline must fire).
    Stall,
    /// Answer every request with a frame whose payload checksum is wrong.
    Garbage,
}

impl Fault {
    fn from_u8(v: u8) -> Fault {
        match v {
            1 => Fault::Stall,
            2 => Fault::Garbage,
            _ => Fault::None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Fault::None => 0,
            Fault::Stall => 1,
            Fault::Garbage => 2,
        }
    }
}

/// How often a connection worker wakes from a blocked read to check the
/// shutdown flag and fault mode.
const SERVER_POLL: Duration = Duration::from_millis(25);

/// One partition's serving endpoint: a loopback TCP listener whose
/// per-connection workers answer framed search requests from the
/// partition's [`Node`] (shared `Arc`: several replica servers over the
/// same node state model replicated serving endpoints — identical data,
/// so whichever replica answers, the hits are bit-identical).
///
/// A worker that panics mid-query (e.g. the injected node fault) kills
/// only its own connection: the client observes a reset and fails over,
/// the listener keeps accepting — panic containment is structural, not a
/// `catch_unwind`.
pub struct NodeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    fault: Arc<AtomicU8>,
    accept: Mutex<Option<JoinHandle<()>>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NodeServer {
    /// Binds a fresh loopback listener for `node`'s partition and starts
    /// accepting. `partition` only labels threads and errors.
    pub fn spawn(node: Arc<Node>, partition: usize) -> io::Result<NodeServer> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let fault = Arc::new(AtomicU8::new(Fault::None.as_u8()));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let fault = Arc::clone(&fault);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name(format!("node-server-p{partition}"))
                .spawn(move || loop {
                    let (stream, _) = match listener.accept() {
                        Ok(conn) => conn,
                        Err(_) => {
                            if shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            continue;
                        }
                    };
                    if shutdown.load(Ordering::SeqCst) {
                        return; // the unblocking dummy connect
                    }
                    let node = Arc::clone(&node);
                    let shutdown = Arc::clone(&shutdown);
                    let fault = Arc::clone(&fault);
                    if let Ok(handle) = std::thread::Builder::new()
                        .name(format!("node-conn-p{partition}"))
                        .spawn(move || serve_connection(stream, &node, &shutdown, &fault))
                    {
                        workers
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(handle);
                    }
                })?
        };
        Ok(NodeServer {
            addr,
            shutdown,
            fault,
            accept: Mutex::new(Some(accept)),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switches the server's fault-injection mode (effective for the next
    /// request on every connection).
    pub fn set_fault(&self, fault: Fault) {
        self.fault.store(fault.as_u8(), Ordering::SeqCst);
    }

    /// Kills the server: stops accepting, drops every open connection
    /// (in-flight clients observe EOF/reset), and joins its threads. New
    /// connection attempts are refused by the OS once the listener is
    /// gone. Idempotent, and `&self` so a fault-injecting thread can kill
    /// a server out from under a coordinator mid-query.
    pub fn kill(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop; if the listener is already gone this
        // simply fails.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(100));
        let accept = self.accept.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in workers {
            // A worker that died of an injected panic reports Err — that
            // is the contained outcome, not a server bug.
            let _ = handle.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Per-connection server loop: read a request frame, run the partition's
/// local search, answer with globally-mapped hits (or a typed error
/// frame). Returns — dropping the connection — on client disconnect,
/// protocol garbage, or shutdown.
fn serve_connection(mut stream: TcpStream, node: &Node, shutdown: &AtomicBool, fault: &AtomicU8) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(SERVER_POLL)).is_err() {
        return;
    }
    let mut hits: Vec<(u32, f32)> = Vec::new();
    let mut response = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let (kind, req_id, payload) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(NetError::Timeout) => continue, // poll tick: re-check shutdown
            Err(_) => return,                   // disconnect or unrecoverable garbage: drop
        };
        match Fault::from_u8(fault.load(Ordering::SeqCst)) {
            Fault::None => {}
            Fault::Stall => {
                // Hold the request open without answering until the server
                // is killed or the fault cleared, then drop the connection
                // (the client has long since hedged away).
                while !shutdown.load(Ordering::SeqCst)
                    && Fault::from_u8(fault.load(Ordering::SeqCst)) == Fault::Stall
                {
                    std::thread::sleep(SERVER_POLL);
                }
                return;
            }
            Fault::Garbage => {
                // A syntactically framed but checksum-corrupt answer: the
                // client must detect it as ChecksumMismatch, never decode
                // garbage hits.
                let payload = encode_error("garbage fault");
                let mut header = [0u8; HEADER_LEN];
                header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
                header[4] = PROTOCOL_VERSION;
                header[5] = KIND_ERROR;
                header[8..16].copy_from_slice(&req_id.to_le_bytes());
                header[16..24].copy_from_slice(&(fnv1a64(&payload) ^ 0xDEAD_BEEF).to_le_bytes());
                let _ = stream.write_all(&header);
                let _ = stream.write_all(&payload);
                let _ = stream.flush();
                return;
            }
        }
        if kind != KIND_SEARCH {
            return;
        }
        let request = match decode_search_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                let _ = write_frame(
                    &mut stream,
                    KIND_ERROR,
                    req_id,
                    &encode_error(&e.to_string()),
                );
                return;
            }
        };
        // An injected panic unwinds this worker here; the dropped stream
        // is the client's failover signal.
        match node.search_hits_into(&request.terms, request.strategy, request.n, &mut hits) {
            Ok(meta) => {
                // Local → global docid translation happens on the node,
                // exactly as the in-process gather does.
                for hit in &mut hits {
                    hit.0 = node.global_id(hit.0);
                }
                encode_hits(&hits, meta.passes, meta.cpu_time, &meta.io, &mut response);
                if write_frame(&mut stream, KIND_HITS, req_id, &response).is_err() {
                    return;
                }
            }
            Err(e) => {
                if write_frame(
                    &mut stream,
                    KIND_ERROR,
                    req_id,
                    &encode_error(&e.to_string()),
                )
                .is_err()
                {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Tunables of the coordinator's failure handling.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Total time budget per partition query, across all replica attempts.
    pub deadline: Duration,
    /// Hedge delay used until a partition has [`Self::hedge_min_samples`]
    /// observed latencies; after that the partition's p99 (clamped to
    /// `1 ms ..= deadline / 2`) takes over.
    pub hedge_after: Duration,
    /// Successful samples required before the p99-based hedge delay
    /// replaces [`Self::hedge_after`].
    pub hedge_min_samples: u64,
    /// Per-attempt TCP connect timeout (also capped by the remaining
    /// deadline).
    pub connect_timeout: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            deadline: Duration::from_secs(2),
            hedge_after: Duration::from_millis(50),
            hedge_min_samples: 64,
            connect_timeout: Duration::from_millis(250),
        }
    }
}

/// One replica endpoint of a partition, with health state and a pool of
/// idle connections (a connection re-enters the pool only after a fully
/// completed exchange, so no stale bytes can linger on it).
struct Replica {
    addr: SocketAddr,
    down: AtomicBool,
    served: AtomicU64,
    idle: Mutex<Vec<TcpStream>>,
}

impl Replica {
    fn new(addr: SocketAddr) -> Self {
        Replica {
            addr,
            down: AtomicBool::new(false),
            served: AtomicU64::new(0),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// One request/response exchange against this replica, bounded by
    /// `deadline`. Tries a pooled idle connection first; because an idle
    /// connection may have been closed by the peer since, a failure on it
    /// is retried once on a fresh connection, whose verdict is
    /// authoritative.
    fn request(
        &self,
        payload: &[u8],
        req_id: u64,
        deadline: Instant,
        connect_timeout: Duration,
    ) -> Result<WireHits, NetError> {
        let pooled = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop();
        if let Some(mut conn) = pooled {
            if let Ok(hits) = exchange(&mut conn, payload, req_id, deadline) {
                self.park(conn);
                return Ok(hits);
            }
            // Stale pooled connection: fall through to a fresh one.
        }
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(NetError::Timeout)?;
        let mut conn = TcpStream::connect_timeout(&self.addr, connect_timeout.min(remaining))?;
        let _ = conn.set_nodelay(true);
        let hits = exchange(&mut conn, payload, req_id, deadline)?;
        self.park(conn);
        Ok(hits)
    }

    fn park(&self, conn: TcpStream) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < 8 {
            idle.push(conn);
        }
    }
}

/// Writes the request and reads the matching response on one connection.
fn exchange(
    conn: &mut TcpStream,
    payload: &[u8],
    req_id: u64,
    deadline: Instant,
) -> Result<WireHits, NetError> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or(NetError::Timeout)?;
    conn.set_write_timeout(Some(remaining))?;
    write_frame(conn, KIND_SEARCH, req_id, payload)?;
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or(NetError::Timeout)?;
    conn.set_read_timeout(Some(remaining))?;
    let (kind, got_id, body) = read_frame(conn)?;
    if got_id != req_id {
        return Err(NetError::RequestIdMismatch {
            expected: req_id,
            got: got_id,
        });
    }
    match kind {
        KIND_HITS => decode_hits(&body),
        KIND_ERROR => Err(NetError::Remote(decode_error(&body)?)),
        other => Err(NetError::BadKind { got: other }),
    }
}

/// Per-partition serving state the coordinator and its detached attempt
/// threads share.
struct PartitionState {
    id: usize,
    replicas: Vec<Arc<Replica>>,
    /// Successful attempt wall latencies; feeds the p99 hedge delay and
    /// the per-node tail-latency attribution.
    latency: Mutex<LatencyHistogram>,
    requests: AtomicU64,
    hedged: AtomicU64,
    failed_over: AtomicU64,
    unavailable: AtomicU64,
    io_reads: AtomicU64,
    io_bytes: AtomicU64,
    io_nanos: AtomicU64,
}

impl PartitionState {
    /// Replica indices, healthy first (stable within each class), so a
    /// down replica is deprioritized but still reachable when everything
    /// else fails — and self-heals on its next success.
    fn replica_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.replicas.len()).collect();
        order.sort_by_key(|&i| self.replicas[i].down.load(Ordering::SeqCst));
        order
    }
}

/// What one partition contributed to a gathered query.
#[derive(Debug, Clone)]
pub struct PartitionAttempt {
    /// Partition index.
    pub partition: usize,
    /// Replica that served the winning response.
    pub replica: usize,
    /// Wall time from first attempt to the winning response.
    pub wall: Duration,
    /// Whether a hedge fired for this query.
    pub hedged: bool,
    /// Whether a replica error forced a failover for this query.
    pub failed_over: bool,
    /// Execution passes the serving node reported.
    pub passes: u8,
    /// Simulated I/O the serving node charged to this query.
    pub io: IoStats,
}

/// A gathered networked query: the merged global top-N plus per-partition
/// attribution.
#[derive(Debug, Clone)]
pub struct NetSearchOutcome {
    /// Globally ranked `(docid, score)` hits, best first — bit-identical
    /// to the in-process [`SimulatedCluster::search_scatter`] oracle.
    pub hits: Vec<(u32, f32)>,
    /// Max of the per-node pass counts (as the in-process service
    /// reports).
    pub passes: u8,
    /// One record per partition, in partition order.
    pub partitions: Vec<PartitionAttempt>,
}

/// Point-in-time serving statistics for one partition.
#[derive(Debug, Clone)]
pub struct PartitionServeStats {
    /// Partition index.
    pub partition: usize,
    /// Queries this partition served.
    pub requests: u64,
    /// Queries whose hedge timer fired.
    pub hedged: u64,
    /// Queries that failed over after a replica error.
    pub failed_over: u64,
    /// Queries that exhausted every replica.
    pub unavailable: u64,
    /// Median successful attempt latency.
    pub latency_p50: Duration,
    /// 95th-percentile successful attempt latency.
    pub latency_p95: Duration,
    /// 99th-percentile successful attempt latency — what gates the tail
    /// of every gathered query (§3.4's load-imbalance effect, now
    /// per-node attributable).
    pub latency_p99: Duration,
    /// Which replicas are currently marked down.
    pub replicas_down: Vec<bool>,
    /// Winning responses served per replica.
    pub served_by_replica: Vec<u64>,
}

/// Coordinator-wide serving statistics.
#[derive(Debug, Clone)]
pub struct CoordinatorStats {
    /// Per-partition records, in partition order.
    pub partitions: Vec<PartitionServeStats>,
    /// Total hedges fired.
    pub hedged: u64,
    /// Total failovers taken.
    pub failed_over: u64,
    /// Total partition-unavailable outcomes.
    pub unavailable: u64,
}

/// The result of one replica attempt, raced through an mpsc channel.
struct AttemptOutcome {
    replica: usize,
    result: Result<WireHits, NetError>,
}

/// The networked scatter-gather coordinator: one replica set per
/// partition, per-node deadlines, p99-hedged retries, and failover, as
/// described in the [module docs](self).
pub struct Coordinator {
    partitions: Vec<Arc<PartitionState>>,
    config: CoordinatorConfig,
    next_request_id: AtomicU64,
}

impl Coordinator {
    /// A coordinator over `replica_addrs[partition][replica]` endpoints.
    ///
    /// # Panics
    /// Panics if any partition has no replicas.
    pub fn new(replica_addrs: Vec<Vec<SocketAddr>>, config: CoordinatorConfig) -> Self {
        assert!(!replica_addrs.is_empty(), "at least one partition required");
        let partitions = replica_addrs
            .into_iter()
            .enumerate()
            .map(|(id, addrs)| {
                assert!(!addrs.is_empty(), "partition {id} has no replicas");
                Arc::new(PartitionState {
                    id,
                    replicas: addrs
                        .into_iter()
                        .map(|a| Arc::new(Replica::new(a)))
                        .collect(),
                    latency: Mutex::new(LatencyHistogram::new()),
                    requests: AtomicU64::new(0),
                    hedged: AtomicU64::new(0),
                    failed_over: AtomicU64::new(0),
                    unavailable: AtomicU64::new(0),
                    io_reads: AtomicU64::new(0),
                    io_bytes: AtomicU64::new(0),
                    io_nanos: AtomicU64::new(0),
                })
            })
            .collect();
        Coordinator {
            partitions,
            config,
            next_request_id: AtomicU64::new(1),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The deterministic coordinator merge: descending score
    /// (`total_cmp`), global-docid tie-break, truncate to `n` — the exact
    /// ordering contract of the in-process
    /// [`SimulatedCluster::search`] merge, so networked and in-process
    /// rankings are bit-identical on the same per-node lists.
    pub fn merge_hits(per_partition: Vec<Vec<(u32, f32)>>, n: usize) -> Vec<(u32, f32)> {
        let mut merged: Vec<(u32, f32)> = per_partition.into_iter().flatten().collect();
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(n);
        merged
    }

    /// Scatter-gathers one query over the socket layer. Per-partition
    /// fan-out runs on scoped threads (as the in-process scatter does);
    /// replica attempts within a partition run detached so a stalled
    /// loser can never hold the query past its winner.
    ///
    /// Errors are typed, never panics: a partition whose replicas are all
    /// exhausted yields [`NetError::PartitionUnavailable`]; a remote
    /// planning error propagates as [`NetError::Remote`].
    pub fn search(
        &self,
        terms: &[u32],
        strategy: SearchStrategy,
        n: usize,
    ) -> Result<NetSearchOutcome, NetError> {
        let payload: Arc<Vec<u8>> = Arc::new(encode_search_request(terms, strategy, n));
        let mut gathered: Vec<Result<(WireHits, PartitionAttempt), NetError>> =
            Vec::with_capacity(self.partitions.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .partitions
                .iter()
                .map(|part| {
                    let part = Arc::clone(part);
                    let payload = Arc::clone(&payload);
                    s.spawn(move || self.query_partition(&part, payload))
                })
                .collect();
            // Partition order, exactly like the in-process gather.
            for h in handles {
                gathered.push(match h.join() {
                    Ok(result) => result,
                    // A coordinator-side fan-out panic is contained the
                    // same way a node panic is in-process.
                    Err(_) => Err(NetError::Malformed("partition fan-out thread died")),
                });
            }
        });
        let mut lists = Vec::with_capacity(gathered.len());
        let mut partitions = Vec::with_capacity(gathered.len());
        let mut passes = 1u8;
        for result in gathered {
            let (wire, attempt) = result?;
            passes = passes.max(wire.passes);
            lists.push(wire.hits);
            partitions.push(attempt);
        }
        Ok(NetSearchOutcome {
            hits: Self::merge_hits(lists, n),
            passes,
            partitions,
        })
    }

    /// The per-partition deadline/hedge/failover state machine.
    fn query_partition(
        &self,
        part: &Arc<PartitionState>,
        payload: Arc<Vec<u8>>,
    ) -> Result<(WireHits, PartitionAttempt), NetError> {
        part.requests.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + self.config.deadline;
        let order = part.replica_order();
        let hedge_delay = self.hedge_delay(part);
        let started = Instant::now();
        let (tx, rx) = mpsc::channel::<AttemptOutcome>();
        let mut launched = 0usize;
        let mut completed = 0usize;
        let mut hedged = false;
        let mut failed_over = false;
        self.launch_attempt(part, order[0], &payload, deadline, tx.clone());
        launched += 1;
        loop {
            let now = Instant::now();
            let Some(until_deadline) = deadline.checked_duration_since(now) else {
                part.unavailable.fetch_add(1, Ordering::Relaxed);
                return Err(NetError::PartitionUnavailable {
                    partition: part.id,
                    attempts: launched,
                });
            };
            let wait = if !hedged && launched < order.len() {
                until_deadline.min(hedge_delay)
            } else {
                until_deadline
            };
            match rx.recv_timeout(wait) {
                Ok(AttemptOutcome {
                    replica,
                    result: Ok(wire),
                }) => {
                    let wall = started.elapsed();
                    part.latency
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record(wall);
                    part.replicas[replica]
                        .served
                        .fetch_add(1, Ordering::Relaxed);
                    part.io_reads.fetch_add(wire.io.reads, Ordering::Relaxed);
                    part.io_bytes.fetch_add(wire.io.bytes, Ordering::Relaxed);
                    part.io_nanos.fetch_add(
                        u64::try_from(wire.io.sim_time.as_nanos()).unwrap_or(u64::MAX),
                        Ordering::Relaxed,
                    );
                    let attempt = PartitionAttempt {
                        partition: part.id,
                        replica,
                        wall,
                        hedged,
                        failed_over,
                        passes: wire.passes,
                        io: wire.io,
                    };
                    return Ok((wire, attempt));
                }
                Ok(AttemptOutcome {
                    result: Err(NetError::Remote(msg)),
                    ..
                }) => {
                    // Deterministic remote refusal: every replica holds the
                    // same data, so retrying cannot change the answer.
                    return Err(NetError::Remote(msg));
                }
                Ok(AttemptOutcome { result: Err(_), .. }) => {
                    completed += 1;
                    if launched < order.len() {
                        failed_over = true;
                        part.failed_over.fetch_add(1, Ordering::Relaxed);
                        self.launch_attempt(part, order[launched], &payload, deadline, tx.clone());
                        launched += 1;
                    } else if completed == launched {
                        part.unavailable.fetch_add(1, Ordering::Relaxed);
                        return Err(NetError::PartitionUnavailable {
                            partition: part.id,
                            attempts: launched,
                        });
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if !hedged && launched < order.len() {
                        hedged = true;
                        part.hedged.fetch_add(1, Ordering::Relaxed);
                        self.launch_attempt(part, order[launched], &payload, deadline, tx.clone());
                        launched += 1;
                    }
                    // Otherwise: keep waiting; the deadline check at the
                    // top of the loop bounds us.
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable while we hold `tx`, but degrade to the
                    // typed outcome rather than trusting that.
                    part.unavailable.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::PartitionUnavailable {
                        partition: part.id,
                        attempts: launched,
                    });
                }
            }
        }
    }

    /// Issues one replica attempt on a detached thread (never joined: a
    /// loser must not be able to delay the query past its winner; its
    /// socket timeout bounds its own lifetime). The thread owns the
    /// health-state transition for its replica.
    fn launch_attempt(
        &self,
        part: &Arc<PartitionState>,
        replica: usize,
        payload: &Arc<Vec<u8>>,
        deadline: Instant,
        tx: mpsc::Sender<AttemptOutcome>,
    ) {
        let req_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        let replica_state = Arc::clone(&part.replicas[replica]);
        let payload = Arc::clone(payload);
        let connect_timeout = self.config.connect_timeout;
        let builder = std::thread::Builder::new().name(format!("attempt-p{}", part.id));
        let thread_tx = tx.clone();
        let spawned = builder.spawn(move || {
            let result = replica_state.request(&payload, req_id, deadline, connect_timeout);
            match &result {
                Ok(_) => replica_state.down.store(false, Ordering::SeqCst),
                // A remote planning error is a healthy transport.
                Err(NetError::Remote(_)) => {}
                Err(_) => replica_state.down.store(true, Ordering::SeqCst),
            }
            let _ = thread_tx.send(AttemptOutcome { replica, result });
        });
        if spawned.is_err() {
            // Spawn failure behaves like an instantly-failed attempt.
            let _ = tx.send(AttemptOutcome {
                replica,
                result: Err(NetError::Io(io::Error::other("spawn failed"))),
            });
        }
    }

    /// The partition's hedge delay: its observed p99 once enough samples
    /// exist, the configured initial delay before that.
    fn hedge_delay(&self, part: &PartitionState) -> Duration {
        let hist = part.latency.lock().unwrap_or_else(|e| e.into_inner());
        if hist.count() >= self.config.hedge_min_samples {
            hist.p99()
                .clamp(Duration::from_millis(1), self.config.deadline / 2)
        } else {
            self.config.hedge_after
        }
    }

    /// Point-in-time serving statistics, per partition and total.
    pub fn stats(&self) -> CoordinatorStats {
        let partitions: Vec<PartitionServeStats> = self
            .partitions
            .iter()
            .map(|p| {
                let hist = p.latency.lock().unwrap_or_else(|e| e.into_inner());
                PartitionServeStats {
                    partition: p.id,
                    requests: p.requests.load(Ordering::Relaxed),
                    hedged: p.hedged.load(Ordering::Relaxed),
                    failed_over: p.failed_over.load(Ordering::Relaxed),
                    unavailable: p.unavailable.load(Ordering::Relaxed),
                    latency_p50: hist.p50(),
                    latency_p95: hist.p95(),
                    latency_p99: hist.p99(),
                    replicas_down: p
                        .replicas
                        .iter()
                        .map(|r| r.down.load(Ordering::SeqCst))
                        .collect(),
                    served_by_replica: p
                        .replicas
                        .iter()
                        .map(|r| r.served.load(Ordering::Relaxed))
                        .collect(),
                }
            })
            .collect();
        let hedged = partitions.iter().map(|p| p.hedged).sum();
        let failed_over = partitions.iter().map(|p| p.failed_over).sum();
        let unavailable = partitions.iter().map(|p| p.unavailable).sum();
        CoordinatorStats {
            partitions,
            hedged,
            failed_over,
            unavailable,
        }
    }

    /// Cumulative simulated I/O the remote nodes reported for queries this
    /// coordinator gathered.
    pub fn io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for p in &self.partitions {
            total.merge(&IoStats {
                reads: p.io_reads.load(Ordering::Relaxed),
                bytes: p.io_bytes.load(Ordering::Relaxed),
                sim_time: Duration::from_nanos(p.io_nanos.load(Ordering::Relaxed)),
            });
        }
        total
    }
}

/// Worker-pool integration: every admitted query scatter-gathers over the
/// socket layer with the coordinator's deadline/hedge/failover machinery.
/// Per the [`crate::serve::QueryService`] contract the pool serves
/// well-configured plans; with replication a node fault is absorbed by
/// failover, so reaching an actual [`NetError`] here (every replica of a
/// partition gone) is a serving-configuration fault and panics with the
/// typed error's message.
impl crate::serve::QueryService for Arc<Coordinator> {
    fn execute(
        &self,
        terms: &[u32],
        strategy: SearchStrategy,
        n: usize,
    ) -> crate::serve::ServedQuery {
        let outcome = self
            .search(terms, strategy, n)
            .unwrap_or_else(|e| panic!("networked serving path: {e}"));
        // As for the in-process cluster service: the slowest node's
        // simulated disk time gates the query.
        let io_time = outcome
            .partitions
            .iter()
            .map(|p| p.io.sim_time)
            .max()
            .unwrap_or(Duration::ZERO);
        crate::serve::ServedQuery {
            hits: outcome.hits,
            io_time,
            passes: outcome.passes,
        }
    }

    fn io_stats(&self) -> IoStats {
        Coordinator::io_stats(self)
    }
}

// ---------------------------------------------------------------------------
// Cluster-to-network assembly
// ---------------------------------------------------------------------------

/// A [`SimulatedCluster`] promoted to the network: `replicas` serving
/// endpoints per partition (sharing the partition's node state — the
/// replicated-data case where any replica answers bit-identically) and a
/// [`Coordinator`] wired to all of them.
pub struct NetCluster {
    servers: Vec<Vec<NodeServer>>,
    coordinator: Arc<Coordinator>,
}

impl NetCluster {
    /// Spawns `replicas` [`NodeServer`]s per partition of `cluster` on
    /// loopback and a coordinator over them.
    ///
    /// # Panics
    /// Panics if `replicas == 0`.
    pub fn serve(
        cluster: &SimulatedCluster,
        replicas: usize,
        config: CoordinatorConfig,
    ) -> io::Result<NetCluster> {
        assert!(replicas > 0, "at least one replica required");
        let mut servers = Vec::with_capacity(cluster.num_nodes());
        let mut addrs = Vec::with_capacity(cluster.num_nodes());
        for (partition, node) in cluster.nodes().iter().enumerate() {
            let mut replica_servers = Vec::with_capacity(replicas);
            let mut replica_addrs = Vec::with_capacity(replicas);
            for _ in 0..replicas {
                let server = NodeServer::spawn(Arc::clone(node), partition)?;
                replica_addrs.push(server.addr());
                replica_servers.push(server);
            }
            servers.push(replica_servers);
            addrs.push(replica_addrs);
        }
        Ok(NetCluster {
            servers,
            coordinator: Arc::new(Coordinator::new(addrs, config)),
        })
    }

    /// The coordinator (clone the `Arc` to hand it to a worker pool).
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// The serving endpoint for `partition`'s `replica` (fault
    /// injection).
    pub fn server(&self, partition: usize, replica: usize) -> &NodeServer {
        &self.servers[partition][replica]
    }

    /// Kills one serving endpoint (see [`NodeServer::kill`]).
    pub fn kill_server(&self, partition: usize, replica: usize) {
        self.servers[partition][replica].kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let payload = encode_search_request(&[3, 1, 4, 1, 5], SearchStrategy::Bm25TwoPass, 20);
        let mut wire = Vec::new();
        write_frame(&mut wire, KIND_SEARCH, 42, &payload).unwrap();
        let (kind, id, body) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!((kind, id), (KIND_SEARCH, 42));
        let req = decode_search_request(&body).unwrap();
        assert_eq!(req.terms, vec![3, 1, 4, 1, 5]);
        assert_eq!(req.strategy, SearchStrategy::Bm25TwoPass);
        assert_eq!(req.n, 20);
    }

    #[test]
    fn hits_roundtrip_is_bit_exact() {
        // Scores travel as f32 bits: NaNs, negative zero and denormals
        // survive untouched.
        let hits = vec![
            (7u32, f32::from_bits(0x7fc0_1234)), // a NaN payload
            (1, -0.0),
            (u32::MAX, f32::MIN_POSITIVE / 2.0),
        ];
        let io = IoStats {
            reads: 3,
            bytes: 4096,
            sim_time: Duration::from_micros(17),
        };
        let mut payload = Vec::new();
        encode_hits(&hits, 2, Duration::from_millis(1), &io, &mut payload);
        let decoded = decode_hits(&payload).unwrap();
        assert_eq!(decoded.passes, 2);
        assert_eq!(decoded.io, io);
        assert_eq!(decoded.hits.len(), hits.len());
        for (got, want) in decoded.hits.iter().zip(&hits) {
            assert_eq!(got.0, want.0);
            assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
    }

    #[test]
    fn corrupt_frames_surface_typed_errors_never_panic() {
        let payload = encode_search_request(&[1, 2], SearchStrategy::Bm25, 10);
        let mut wire = Vec::new();
        write_frame(&mut wire, KIND_SEARCH, 7, &payload).unwrap();

        // Every single-byte flip decodes to a typed error or (for payload
        // bytes whose flip keeps the checksum math consistent — none, the
        // checksum covers all of them) a valid frame.
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0xFF;
            match read_frame(&mut bad.as_slice()) {
                Ok((kind, id, body)) => {
                    // Only the request-id bytes can flip without breaking
                    // any validated field.
                    assert!((8..16).contains(&i), "byte {i} flip silently accepted");
                    assert_eq!(kind, KIND_SEARCH);
                    assert_ne!(id, 7);
                    assert_eq!(body, payload);
                }
                Err(e) => {
                    let _ = e.to_string(); // display must not panic either
                }
            }
        }

        // Every truncation is a typed error.
        for len in 0..wire.len() {
            assert!(read_frame(&mut wire[..len].as_ref()).is_err());
        }

        // An oversized declared length is rejected before allocation.
        let mut bomb = wire.clone();
        bomb[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bomb.as_slice()),
            Err(NetError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn malformed_payloads_are_typed() {
        assert!(matches!(
            decode_search_request(&[]),
            Err(NetError::Malformed(_))
        ));
        // Unknown strategy tag.
        let mut bad = encode_search_request(&[1], SearchStrategy::Bm25, 5);
        bad[0] = 200;
        assert!(matches!(
            decode_search_request(&bad),
            Err(NetError::Malformed(_))
        ));
        // Declared more terms than bytes present.
        let mut short = encode_search_request(&[1, 2, 3], SearchStrategy::Bm25, 5);
        short.truncate(short.len() - 4);
        assert!(matches!(
            decode_search_request(&short),
            Err(NetError::Malformed(_))
        ));
        // Trailing bytes rejected.
        let mut long = encode_search_request(&[1], SearchStrategy::Bm25, 5);
        long.push(0);
        assert!(matches!(
            decode_search_request(&long),
            Err(NetError::Malformed(_))
        ));
        // Hits with a short body.
        assert!(decode_hits(&[1, 2, 3]).is_err());
    }

    #[test]
    fn merge_hits_matches_cluster_merge_ordering() {
        // Same contract as the in-process merge: score descending by
        // total_cmp, docid ascending on ties, truncate.
        let merged = Coordinator::merge_hits(
            vec![vec![(5, 2.0), (9, 1.0)], vec![(3, 2.0), (1, 1.0), (2, 0.5)]],
            4,
        );
        assert_eq!(merged, vec![(3, 2.0), (5, 2.0), (1, 1.0), (9, 1.0)]);
    }
}
