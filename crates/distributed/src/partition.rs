//! Document partitioning.
//!
//! The collection is split into `n` partitions round-robin by docid, so
//! every partition sees the same term distribution in expectation (the
//! paper's "we can easily split up the document collection into N
//! partitions"). Each partition is itself a valid [`SyntheticCollection`]
//! with *local* dense docids; the original global docid is recoverable via
//! the per-partition `global_ids` mapping (and redundantly via the
//! preserved document names).
//!
//! Note the statistics consequence the paper's setup shares: each node
//! computes BM25 from its *local* `f_D`, `f_{T,D}` and `avgdl`. With
//! round-robin partitioning these are `1/n`-scaled views of the global
//! statistics, so idf (a ratio) and avgdl are nearly unchanged and per-node
//! scores are directly mergeable.

use x100_corpus::{Document, SyntheticCollection};

/// The one doc→partition placement rule: global docid `doc_id` lives on
/// partition `doc_id mod n`. Every placement path — batch
/// [`partition_collection`], the streaming cluster builders, and any
/// networked router — must go through this function; duplicated copies of
/// the formula can silently drift, and a drift corrupts global-id routing
/// (a query would merge hits whose global ids were minted under a
/// different placement than the one used to route documents).
///
/// # Panics
/// Panics if `n == 0`.
pub fn partition_of(doc_id: u32, n: usize) -> usize {
    (doc_id as usize) % n
}

/// One partition plus its local→global docid mapping.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The partition as a standalone collection (local docids).
    pub collection: SyntheticCollection,
    /// `global_ids[local_docid] = global docid`.
    pub global_ids: Vec<u32>,
}

/// Splits `collection` into `n` round-robin partitions.
///
/// # Panics
/// Panics if `n == 0`.
pub fn partition_collection(collection: &SyntheticCollection, n: usize) -> Vec<Partition> {
    assert!(n > 0, "at least one partition required");
    let mut parts: Vec<(Vec<Document>, Vec<u32>)> = (0..n).map(|_| Default::default()).collect();
    for doc in &collection.docs {
        let p = partition_of(doc.id, n);
        let (docs, globals) = &mut parts[p];
        let local = docs.len() as u32;
        globals.push(doc.id);
        docs.push(Document {
            id: local,
            name: doc.name.clone(), // global identity preserved
            terms: doc.terms.clone(),
            len: doc.len,
        });
    }
    parts
        .into_iter()
        .map(|(docs, global_ids)| Partition {
            collection: SyntheticCollection {
                config: collection.config.clone(),
                docs,
                vocab: collection.vocab.clone(),
                eval_queries: collection.eval_queries.clone(),
                efficiency_log: collection.efficiency_log.clone(),
            },
            global_ids,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_corpus::CollectionConfig;

    fn tiny() -> SyntheticCollection {
        SyntheticCollection::generate(&CollectionConfig::tiny())
    }

    #[test]
    fn partitions_cover_collection_exactly() {
        let c = tiny();
        let parts = partition_collection(&c, 4);
        let total: usize = parts.iter().map(|p| p.collection.docs.len()).sum();
        assert_eq!(total, c.docs.len());
        // Every global id appears exactly once.
        let mut seen = vec![false; c.docs.len()];
        for p in &parts {
            for &g in &p.global_ids {
                assert!(!seen[g as usize], "doc {g} in two partitions");
                seen[g as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_balances_sizes() {
        let c = tiny();
        let parts = partition_collection(&c, 8);
        let sizes: Vec<usize> = parts.iter().map(|p| p.collection.docs.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn local_ids_dense_and_names_global() {
        let c = tiny();
        let parts = partition_collection(&c, 3);
        for (pi, p) in parts.iter().enumerate() {
            for (i, d) in p.collection.docs.iter().enumerate() {
                assert_eq!(d.id as usize, i);
                let g = p.global_ids[i];
                assert_eq!(g as usize % 3, pi);
                assert_eq!(d.name, format!("doc-{g:08}"));
                assert_eq!(d.terms, c.docs[g as usize].terms);
            }
        }
    }

    #[test]
    fn single_partition_is_identity_modulo_ids() {
        let c = tiny();
        let parts = partition_collection(&c, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].collection.docs.len(), c.docs.len());
        assert!(parts[0]
            .global_ids
            .iter()
            .enumerate()
            .all(|(i, &g)| i as u32 == g));
    }

    #[test]
    fn more_partitions_than_docs() {
        let mut cfg = CollectionConfig::tiny();
        cfg.num_docs = 3;
        cfg.relevant_per_query = 2;
        let c = SyntheticCollection::generate(&cfg);
        let parts = partition_collection(&c, 8);
        let nonempty = parts
            .iter()
            .filter(|p| !p.collection.docs.is_empty())
            .count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        partition_collection(&tiny(), 0);
    }

    #[test]
    fn batch_placement_agrees_with_partition_of() {
        // Regression pin for the placement rule: `partition_collection`
        // must put every document exactly where `partition_of` says (the
        // streaming builders are pinned against the same rule in
        // `cluster::tests::streaming_placement_agrees_with_partition_of`).
        let c = tiny();
        for n in [1usize, 2, 3, 7] {
            let parts = partition_collection(&c, n);
            for (pi, p) in parts.iter().enumerate() {
                for &g in &p.global_ids {
                    assert_eq!(partition_of(g, n), pi, "doc {g} with {n} partitions");
                }
            }
        }
    }
}
