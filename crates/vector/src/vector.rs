//! The unary execution vector.
//!
//! "A vector is a unary array, containing a small slice of a single column"
//! (§2). Operators pass vectors between each other; primitives run tight
//! loops over the raw typed slices inside, which is what lets the compiler
//! emit data-parallel (SIMD-friendly) code.

use crate::types::{Value, ValueType};

/// The typed payload of a [`Vector`].
///
/// The enum dispatch happens once per *vector*, not once per *value* — the
/// whole point of vectorized execution is that the per-call overhead (here,
/// the `match`) is amortized over `VectorSize` values.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorData {
    /// Unsigned bytes (quantized scores, PDICT codes).
    U8(Vec<u8>),
    /// 32-bit signed integers (docids, term frequencies, lengths).
    I32(Vec<i32>),
    /// 64-bit signed integers (aggregates, counts).
    I64(Vec<i64>),
    /// 32-bit floats (BM25 scores).
    F32(Vec<f32>),
    /// 64-bit floats (aggregate sums).
    F64(Vec<f64>),
    /// Strings (document names).
    Str(Vec<String>),
}

impl VectorData {
    /// Number of values currently held.
    pub fn len(&self) -> usize {
        match self {
            VectorData::U8(v) => v.len(),
            VectorData::I32(v) => v.len(),
            VectorData::I64(v) => v.len(),
            VectorData::F32(v) => v.len(),
            VectorData::F64(v) => v.len(),
            VectorData::Str(v) => v.len(),
        }
    }

    /// Whether the vector holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scalar type of the payload.
    pub fn value_type(&self) -> ValueType {
        match self {
            VectorData::U8(_) => ValueType::U8,
            VectorData::I32(_) => ValueType::I32,
            VectorData::I64(_) => ValueType::I64,
            VectorData::F32(_) => ValueType::F32,
            VectorData::F64(_) => ValueType::F64,
            VectorData::Str(_) => ValueType::Str,
        }
    }

    /// Drop all values, keeping the allocation (vectors are workhorse
    /// buffers reused across `next()` calls).
    pub fn clear(&mut self) {
        match self {
            VectorData::U8(v) => v.clear(),
            VectorData::I32(v) => v.clear(),
            VectorData::I64(v) => v.clear(),
            VectorData::F32(v) => v.clear(),
            VectorData::F64(v) => v.clear(),
            VectorData::Str(v) => v.clear(),
        }
    }
}

/// A fixed-capacity unary array of one scalar type: X100's unit of data flow.
///
/// A `Vector` owns its buffer and is intended to be reused: `clear()` keeps
/// the allocation so that a pipeline allocates its working set once at
/// `open()` time and never again, matching the paper's in-cache design where
/// vector buffers are long-lived and cache-resident.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: VectorData,
}

impl Vector {
    /// Creates an empty vector of the given type with the given capacity.
    pub fn with_capacity(ty: ValueType, capacity: usize) -> Self {
        let data = match ty {
            ValueType::U8 => VectorData::U8(Vec::with_capacity(capacity)),
            ValueType::I32 => VectorData::I32(Vec::with_capacity(capacity)),
            ValueType::I64 => VectorData::I64(Vec::with_capacity(capacity)),
            ValueType::F32 => VectorData::F32(Vec::with_capacity(capacity)),
            ValueType::F64 => VectorData::F64(Vec::with_capacity(capacity)),
            ValueType::Str => VectorData::Str(Vec::with_capacity(capacity)),
        };
        Vector { data }
    }

    /// Convenience constructor for the most common hot-path type.
    pub fn with_capacity_i32(capacity: usize) -> Self {
        Self::with_capacity(ValueType::I32, capacity)
    }

    /// Wraps an existing buffer.
    pub fn from_data(data: VectorData) -> Self {
        Vector { data }
    }

    /// Builds an `i32` vector from a slice (test/ingest convenience).
    pub fn from_i32(values: &[i32]) -> Self {
        Vector {
            data: VectorData::I32(values.to_vec()),
        }
    }

    /// Builds an `f32` vector from a slice.
    pub fn from_f32(values: &[f32]) -> Self {
        Vector {
            data: VectorData::F32(values.to_vec()),
        }
    }

    /// Builds a string vector from a slice.
    pub fn from_str_slice(values: &[&str]) -> Self {
        Vector {
            data: VectorData::Str(values.iter().map(|s| (*s).to_owned()).collect()),
        }
    }

    /// Number of values currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The scalar type of this vector.
    #[inline]
    pub fn value_type(&self) -> ValueType {
        self.data.value_type()
    }

    /// Drops all values but keeps the allocation for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Borrow the payload.
    #[inline]
    pub fn data(&self) -> &VectorData {
        &self.data
    }

    /// Mutably borrow the payload.
    #[inline]
    pub fn data_mut(&mut self) -> &mut VectorData {
        &mut self.data
    }

    /// Consumes the vector, returning the payload.
    pub fn into_data(self) -> VectorData {
        self.data
    }

    /// Reads one value as a dynamically typed [`Value`].
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds. Only for result materialization and
    /// tests — never on the hot path.
    pub fn value_at(&self, idx: usize) -> Value {
        match &self.data {
            VectorData::U8(v) => Value::U8(v[idx]),
            VectorData::I32(v) => Value::I32(v[idx]),
            VectorData::I64(v) => Value::I64(v[idx]),
            VectorData::F32(v) => Value::F32(v[idx]),
            VectorData::F64(v) => Value::F64(v[idx]),
            VectorData::Str(v) => Value::Str(v[idx].clone()),
        }
    }

    // ---- typed accessors -------------------------------------------------
    //
    // Primitives call exactly one of these once per vector, then loop over
    // the raw slice. Panicking on a type mismatch is deliberate: a mismatch
    // is a planner bug, not a data error, mirroring how X100 primitives are
    // bound to concrete types at plan-build time.

    /// Borrows the payload as `&[u8]`. Panics if the type differs.
    #[inline]
    pub fn as_u8(&self) -> &[u8] {
        match &self.data {
            VectorData::U8(v) => v,
            other => panic!(
                "vector type mismatch: expected u8, got {}",
                other.value_type()
            ),
        }
    }

    /// Borrows the payload as `&[i32]`. Panics if the type differs.
    #[inline]
    pub fn as_i32(&self) -> &[i32] {
        match &self.data {
            VectorData::I32(v) => v,
            other => panic!(
                "vector type mismatch: expected i32, got {}",
                other.value_type()
            ),
        }
    }

    /// Borrows the payload as `&[i64]`. Panics if the type differs.
    #[inline]
    pub fn as_i64(&self) -> &[i64] {
        match &self.data {
            VectorData::I64(v) => v,
            other => panic!(
                "vector type mismatch: expected i64, got {}",
                other.value_type()
            ),
        }
    }

    /// Borrows the payload as `&[f32]`. Panics if the type differs.
    #[inline]
    pub fn as_f32(&self) -> &[f32] {
        match &self.data {
            VectorData::F32(v) => v,
            other => panic!(
                "vector type mismatch: expected f32, got {}",
                other.value_type()
            ),
        }
    }

    /// Borrows the payload as `&[f64]`. Panics if the type differs.
    #[inline]
    pub fn as_f64(&self) -> &[f64] {
        match &self.data {
            VectorData::F64(v) => v,
            other => panic!(
                "vector type mismatch: expected f64, got {}",
                other.value_type()
            ),
        }
    }

    /// Borrows the payload as `&[String]`. Panics if the type differs.
    #[inline]
    pub fn as_str_slice(&self) -> &[String] {
        match &self.data {
            VectorData::Str(v) => v,
            other => panic!(
                "vector type mismatch: expected str, got {}",
                other.value_type()
            ),
        }
    }

    /// Mutably borrows the payload as `&mut Vec<u8>`. Panics if the type differs.
    #[inline]
    pub fn as_u8_mut(&mut self) -> &mut Vec<u8> {
        match &mut self.data {
            VectorData::U8(v) => v,
            other => panic!(
                "vector type mismatch: expected u8, got {}",
                other.value_type()
            ),
        }
    }

    /// Mutably borrows the payload as `&mut Vec<i32>`. Panics if the type differs.
    #[inline]
    pub fn as_i32_mut(&mut self) -> &mut Vec<i32> {
        match &mut self.data {
            VectorData::I32(v) => v,
            other => panic!(
                "vector type mismatch: expected i32, got {}",
                other.value_type()
            ),
        }
    }

    /// Mutably borrows the payload as `&mut Vec<i64>`. Panics if the type differs.
    #[inline]
    pub fn as_i64_mut(&mut self) -> &mut Vec<i64> {
        match &mut self.data {
            VectorData::I64(v) => v,
            other => panic!(
                "vector type mismatch: expected i64, got {}",
                other.value_type()
            ),
        }
    }

    /// Mutably borrows the payload as `&mut Vec<f32>`. Panics if the type differs.
    #[inline]
    pub fn as_f32_mut(&mut self) -> &mut Vec<f32> {
        match &mut self.data {
            VectorData::F32(v) => v,
            other => panic!(
                "vector type mismatch: expected f32, got {}",
                other.value_type()
            ),
        }
    }

    /// Mutably borrows the payload as `&mut Vec<f64>`. Panics if the type differs.
    #[inline]
    pub fn as_f64_mut(&mut self) -> &mut Vec<f64> {
        match &mut self.data {
            VectorData::F64(v) => v,
            other => panic!(
                "vector type mismatch: expected f64, got {}",
                other.value_type()
            ),
        }
    }

    /// Mutably borrows the payload as `&mut Vec<String>`. Panics if the type differs.
    #[inline]
    pub fn as_str_mut(&mut self) -> &mut Vec<String> {
        match &mut self.data {
            VectorData::Str(v) => v,
            other => panic!(
                "vector type mismatch: expected str, got {}",
                other.value_type()
            ),
        }
    }

    /// Appends one `i32` value.
    #[inline]
    pub fn push_i32(&mut self, v: i32) {
        self.as_i32_mut().push(v);
    }

    /// Appends one `f32` value.
    #[inline]
    pub fn push_f32(&mut self, v: f32) {
        self.as_f32_mut().push(v);
    }

    /// Copies the values selected by `sel` from `src` into `self`,
    /// replacing current contents. This is the materializing form of
    /// selection, used when an operator boundary requires dense output
    /// (e.g. before handing a vector to a join build side).
    pub fn gather_from(&mut self, src: &Vector, sel: &[u32]) {
        self.clear();
        match (&mut self.data, &src.data) {
            (VectorData::U8(dst), VectorData::U8(s)) => {
                dst.extend(sel.iter().map(|&i| s[i as usize]));
            }
            (VectorData::I32(dst), VectorData::I32(s)) => {
                dst.extend(sel.iter().map(|&i| s[i as usize]));
            }
            (VectorData::I64(dst), VectorData::I64(s)) => {
                dst.extend(sel.iter().map(|&i| s[i as usize]));
            }
            (VectorData::F32(dst), VectorData::F32(s)) => {
                dst.extend(sel.iter().map(|&i| s[i as usize]));
            }
            (VectorData::F64(dst), VectorData::F64(s)) => {
                dst.extend(sel.iter().map(|&i| s[i as usize]));
            }
            (VectorData::Str(dst), VectorData::Str(s)) => {
                dst.extend(sel.iter().map(|&i| s[i as usize].clone()));
            }
            (dst, src) => panic!(
                "gather type mismatch: dst {} vs src {}",
                dst.value_type(),
                src.value_type()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_starts_empty() {
        let v = Vector::with_capacity(ValueType::F64, 128);
        assert!(v.is_empty());
        assert_eq!(v.value_type(), ValueType::F64);
    }

    #[test]
    fn push_and_read_back() {
        let mut v = Vector::with_capacity_i32(4);
        v.push_i32(1);
        v.push_i32(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.as_i32(), &[1, 2]);
        assert_eq!(v.value_at(1), Value::I32(2));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut v = Vector::with_capacity_i32(64);
        for i in 0..64 {
            v.push_i32(i);
        }
        let cap_before = v.as_i32_mut().capacity();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.as_i32_mut().capacity(), cap_before);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn typed_accessor_panics_on_mismatch() {
        let v = Vector::from_i32(&[1]);
        let _ = v.as_f32();
    }

    #[test]
    fn gather_selects_subset() {
        let src = Vector::from_i32(&[10, 20, 30, 40]);
        let mut dst = Vector::with_capacity_i32(4);
        dst.gather_from(&src, &[3, 1]);
        assert_eq!(dst.as_i32(), &[40, 20]);
    }

    #[test]
    fn gather_strings() {
        let src = Vector::from_str_slice(&["a", "b", "c"]);
        let mut dst = Vector::with_capacity(ValueType::Str, 2);
        dst.gather_from(&src, &[2, 0]);
        assert_eq!(dst.as_str_slice(), &["c".to_owned(), "a".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "gather type mismatch")]
    fn gather_panics_on_type_mismatch() {
        let src = Vector::from_i32(&[1]);
        let mut dst = Vector::with_capacity(ValueType::F32, 1);
        dst.gather_from(&src, &[0]);
    }

    #[test]
    fn value_at_every_type() {
        assert_eq!(
            Vector::from_data(VectorData::U8(vec![7])).value_at(0),
            Value::U8(7)
        );
        assert_eq!(
            Vector::from_data(VectorData::I64(vec![7])).value_at(0),
            Value::I64(7)
        );
        assert_eq!(
            Vector::from_data(VectorData::F64(vec![0.5])).value_at(0),
            Value::F64(0.5)
        );
        assert_eq!(
            Vector::from_str_slice(&["t"]).value_at(0),
            Value::Str("t".to_owned())
        );
    }
}
