//! Vector and column primitives for the MonetDB/X100 reproduction.
//!
//! MonetDB/X100's central idea is *vectorized in-cache execution*: query
//! operators exchange **vectors** — small, unary arrays holding a slice of a
//! single column — instead of single tuples or whole columns. Each `next()`
//! call in the operator pipeline produces one vector per output column, sized
//! such that all vectors live in the query plan fit the CPU cache at once
//! (§2 of the paper, Figure 1).
//!
//! This crate provides the data representation shared by every other crate in
//! the workspace:
//!
//! * [`Vector`] — a dynamically typed, fixed-capacity unary array.
//! * [`SelectionVector`] — the index list produced by selection primitives,
//!   letting downstream operators process a subset of a vector without
//!   copying it.
//! * [`Batch`] — the unit of exchange between operators: one vector per
//!   column plus an optional selection.
//! * [`VectorSize`] — the tuning knob the paper's demonstration sweeps
//!   (§4, "varying MonetDB/X100 parameters, such as the vector size").
//!
//! # Example
//!
//! ```
//! use x100_vector::{Vector, VectorSize};
//!
//! let size = VectorSize::default(); // 1024 values, the X100 sweet spot
//! let mut v = Vector::with_capacity_i32(size.get());
//! v.push_i32(7);
//! v.push_i32(9);
//! assert_eq!(v.as_i32(), &[7, 9]);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod selection;
pub mod types;
pub mod vector;

pub use batch::Batch;
pub use selection::SelectionVector;
pub use types::{Value, ValueType};
pub use vector::{Vector, VectorData};

/// The number of values an execution vector holds.
///
/// The paper chooses the vector size "in such a way, that all vectors needed
/// by a query fit the CPU cache". Too small and per-`next()` interpretation
/// overhead dominates (the tuple-at-a-time pathology); too large and
/// intermediate results spill out of the cache into RAM. The
/// `ablation_vector_size` harness in `x100-bench` sweeps this knob to
/// reproduce the demonstration of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorSize(usize);

impl VectorSize {
    /// The default X100 vector size (1024 values), which the original system
    /// found to balance interpretation overhead against cache residency.
    pub const DEFAULT: VectorSize = VectorSize(1024);

    /// Smallest permitted vector size. A vector size of 1 degenerates the
    /// engine into a classical tuple-at-a-time Volcano iterator, which is
    /// exactly the comparison point of the ablation.
    pub const MIN: usize = 1;

    /// Largest permitted vector size (1 Mi values). Beyond cache capacity the
    /// engine degenerates into full-column materialization, MonetDB/MIL
    /// style.
    pub const MAX: usize = 1 << 20;

    /// Creates a vector size, clamping into `[MIN, MAX]`.
    pub fn new(n: usize) -> Self {
        VectorSize(n.clamp(Self::MIN, Self::MAX))
    }

    /// Returns the size in values.
    #[inline]
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for VectorSize {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl From<usize> for VectorSize {
    fn from(n: usize) -> Self {
        Self::new(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_size_clamps_low() {
        assert_eq!(VectorSize::new(0).get(), VectorSize::MIN);
    }

    #[test]
    fn vector_size_clamps_high() {
        assert_eq!(VectorSize::new(usize::MAX).get(), VectorSize::MAX);
    }

    #[test]
    fn vector_size_default_is_1024() {
        assert_eq!(VectorSize::default().get(), 1024);
    }

    #[test]
    fn vector_size_from_usize() {
        let s: VectorSize = 64.into();
        assert_eq!(s.get(), 64);
    }
}
