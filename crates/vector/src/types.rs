//! Scalar value types understood by the execution engine.
//!
//! X100 is a relational kernel; columns carry a fixed scalar type and the
//! primitive library is instantiated per type (e.g. `map_mul_flt_val_flt_col`
//! in Figure 1 of the paper). We keep the type lattice small — exactly what
//! the IR workload needs: 32/64-bit integers for `docid`/`tf`/offsets,
//! 32/64-bit floats for scores, `u8` for quantized scores, and strings for
//! terms and document names.

use std::fmt;

/// The type of every value in one column or vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 8-bit unsigned integer — quantized BM25 scores (§3.3).
    U8,
    /// 32-bit signed integer — `docid`, `tf`, lengths.
    I32,
    /// 64-bit signed integer — row ids, offsets, counts.
    I64,
    /// 32-bit float — materialized BM25 scores (§3.3).
    F32,
    /// 64-bit float — score accumulation.
    F64,
    /// Variable-length UTF-8 string — terms, document names.
    Str,
}

impl ValueType {
    /// Fixed width of one value in bytes, or `None` for variable-length
    /// types. Used by the storage manager to size uncompressed blocks and by
    /// the compression-ratio experiment ("from 32 to 11.98 bits per tuple").
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            ValueType::U8 => Some(1),
            ValueType::I32 | ValueType::F32 => Some(4),
            ValueType::I64 | ValueType::F64 => Some(8),
            ValueType::Str => None,
        }
    }

    /// Whether this is a numeric (fixed-width) type.
    pub fn is_numeric(self) -> bool {
        !matches!(self, ValueType::Str)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::U8 => "u8",
            ValueType::I32 => "i32",
            ValueType::I64 => "i64",
            ValueType::F32 => "f32",
            ValueType::F64 => "f64",
            ValueType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A single dynamically typed scalar value.
///
/// Values only appear at the *edges* of the engine — constants in expressions
/// and materialized query results. The hot path never handles `Value`s;
/// primitives work on raw typed slices.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned byte (quantized scores, PDICT codes).
    U8(u8),
    /// A 32-bit signed integer (docids, term frequencies, lengths).
    I32(i32),
    /// A 64-bit signed integer (aggregates, counts).
    I64(i64),
    /// A 32-bit float (BM25 scores).
    F32(f32),
    /// A 64-bit float (aggregate sums).
    F64(f64),
    /// A string (document names).
    Str(String),
}

impl Value {
    /// The type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::U8(_) => ValueType::U8,
            Value::I32(_) => ValueType::I32,
            Value::I64(_) => ValueType::I64,
            Value::F32(_) => ValueType::F32,
            Value::F64(_) => ValueType::F64,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// Numeric widening to `f64`, used by result printers and tests.
    /// Returns `None` for strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U8(v) => Some(f64::from(*v)),
            Value::I32(v) => Some(f64::from(*v)),
            Value::I64(v) => Some(*v as f64),
            Value::F32(v) => Some(f64::from(*v)),
            Value::F64(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Numeric widening to `i64`. Returns `None` for floats and strings.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U8(v) => Some(i64::from(*v)),
            Value::I32(v) => Some(i64::from(*v)),
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U8(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::U8(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_widths() {
        assert_eq!(ValueType::U8.fixed_width(), Some(1));
        assert_eq!(ValueType::I32.fixed_width(), Some(4));
        assert_eq!(ValueType::I64.fixed_width(), Some(8));
        assert_eq!(ValueType::F32.fixed_width(), Some(4));
        assert_eq!(ValueType::F64.fixed_width(), Some(8));
        assert_eq!(ValueType::Str.fixed_width(), None);
    }

    #[test]
    fn numeric_classification() {
        assert!(ValueType::I32.is_numeric());
        assert!(!ValueType::Str.is_numeric());
    }

    #[test]
    fn value_type_roundtrip() {
        assert_eq!(Value::from(3i32).value_type(), ValueType::I32);
        assert_eq!(Value::from(3i64).value_type(), ValueType::I64);
        assert_eq!(Value::from(3.0f32).value_type(), ValueType::F32);
        assert_eq!(Value::from(3.0f64).value_type(), ValueType::F64);
        assert_eq!(Value::from(3u8).value_type(), ValueType::U8);
        assert_eq!(Value::from("x").value_type(), ValueType::Str);
    }

    #[test]
    fn value_widening() {
        assert_eq!(Value::from(3i32).as_f64(), Some(3.0));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::from(3u8).as_i64(), Some(3));
        assert_eq!(Value::from(1.5f64).as_i64(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ValueType::F32.to_string(), "f32");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(Value::from(42i64).to_string(), "42");
    }
}
