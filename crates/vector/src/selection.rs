//! Selection vectors.
//!
//! In X100, selection primitives (`select_lt_date_col_date_val` in Figure 1)
//! do not copy the surviving tuples; they emit a **selection vector** — the
//! list of qualifying positions — that downstream primitives consult. This
//! keeps selection O(selected) instead of O(copied bytes) and preserves the
//! cache residency of the underlying vectors.

/// A list of selected positions within an execution vector.
///
/// Positions are `u32` (a vector never exceeds [`crate::VectorSize::MAX`]
/// values) and are maintained in strictly increasing order, which downstream
/// merge primitives rely on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionVector {
    positions: Vec<u32>,
}

impl SelectionVector {
    /// Creates an empty selection with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        SelectionVector {
            positions: Vec::with_capacity(capacity),
        }
    }

    /// Creates a selection covering every position in `0..len` (the
    /// "all selected" identity produced by a scan).
    pub fn identity(len: usize) -> Self {
        SelectionVector {
            positions: (0..len as u32).collect(),
        }
    }

    /// Creates a selection from explicit positions.
    ///
    /// # Panics
    /// Panics if positions are not strictly increasing (debug builds only),
    /// since ordered positions are an invariant of every producer.
    pub fn from_positions(positions: Vec<u32>) -> Self {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "selection positions must be strictly increasing"
        );
        SelectionVector { positions }
    }

    /// Number of selected positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether nothing is selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The selected positions, in increasing order.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Clears the selection, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.positions.clear();
    }

    /// Appends a position. Debug-asserts ordering.
    #[inline]
    pub fn push(&mut self, pos: u32) {
        debug_assert!(
            self.positions.last().is_none_or(|&last| pos > last),
            "selection positions must be strictly increasing"
        );
        self.positions.push(pos);
    }

    /// Intersects with another selection (logical AND of two predicates),
    /// writing the result into `self`. Linear in `self.len() + other.len()`.
    pub fn intersect(&mut self, other: &SelectionVector) {
        let mut out = Vec::with_capacity(self.positions.len().min(other.positions.len()));
        let (a, b) = (&self.positions, &other.positions);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.positions = out;
    }

    /// Unions with another selection (logical OR), writing into `self`.
    pub fn union(&mut self, other: &SelectionVector) {
        let mut out = Vec::with_capacity(self.positions.len() + other.positions.len());
        let (a, b) = (&self.positions, &other.positions);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.positions = out;
    }

    /// Iterator over the selected positions as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.positions.iter().map(|&p| p as usize)
    }
}

impl FromIterator<u32> for SelectionVector {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::from_positions(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_covers_all() {
        let s = SelectionVector::identity(4);
        assert_eq!(s.positions(), &[0, 1, 2, 3]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn identity_of_zero_is_empty() {
        assert!(SelectionVector::identity(0).is_empty());
    }

    #[test]
    fn intersect_keeps_common() {
        let mut a = SelectionVector::from_positions(vec![0, 2, 4, 6]);
        let b = SelectionVector::from_positions(vec![2, 3, 4, 7]);
        a.intersect(&b);
        assert_eq!(a.positions(), &[2, 4]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let mut a = SelectionVector::from_positions(vec![1, 2]);
        a.intersect(&SelectionVector::default());
        assert!(a.is_empty());
    }

    #[test]
    fn union_merges_sorted() {
        let mut a = SelectionVector::from_positions(vec![0, 4]);
        let b = SelectionVector::from_positions(vec![1, 4, 9]);
        a.union(&b);
        assert_eq!(a.positions(), &[0, 1, 4, 9]);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let mut a = SelectionVector::from_positions(vec![3, 5]);
        a.union(&SelectionVector::default());
        assert_eq!(a.positions(), &[3, 5]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly increasing")]
    fn push_enforces_order_in_debug() {
        let mut s = SelectionVector::default();
        s.push(5);
        s.push(5);
    }

    #[test]
    fn from_iterator_collects() {
        let s: SelectionVector = (0..3u32).collect();
        assert_eq!(s.positions(), &[0, 1, 2]);
    }

    #[test]
    fn iter_yields_usize() {
        let s = SelectionVector::from_positions(vec![1, 3]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 3]);
    }
}
