//! Columnar batches — the unit of exchange in the operator pipeline.
//!
//! One `next()` call on an X100 operator produces one [`Batch`]: an aligned
//! set of vectors, one per output column, all of the same length, plus an
//! optional [`SelectionVector`] describing which positions are live. The
//! paper's Figure 1 shows such aligned vectors flowing from `Scan` up through
//! `Select`, `Project` and `Aggregate`.

use crate::selection::SelectionVector;
use crate::types::ValueType;
use crate::vector::Vector;

/// An aligned set of column vectors with an optional selection.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    columns: Vec<Vector>,
    /// Live positions; `None` means all rows are live.
    selection: Option<SelectionVector>,
}

impl Batch {
    /// Creates a batch from column vectors.
    ///
    /// # Panics
    /// Panics if the vectors have differing lengths — aligned vectors are
    /// the core invariant of the exchange format.
    pub fn new(columns: Vec<Vector>) -> Self {
        if let Some(first) = columns.first() {
            let len = first.len();
            assert!(
                columns.iter().all(|c| c.len() == len),
                "batch columns must be aligned (equal length)"
            );
        }
        Batch {
            columns,
            selection: None,
        }
    }

    /// Creates an empty batch with typed columns of the given capacity.
    pub fn with_capacity(types: &[ValueType], capacity: usize) -> Self {
        Batch {
            columns: types
                .iter()
                .map(|&t| Vector::with_capacity(t, capacity))
                .collect(),
            selection: None,
        }
    }

    /// Number of physical rows (before applying the selection).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Vector::len)
    }

    /// Number of live rows (after applying the selection).
    pub fn live_rows(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => self.num_rows(),
        }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Whether the batch has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_rows() == 0
    }

    /// Borrows column `idx`.
    ///
    /// # Panics
    /// Panics if out of bounds — column indexes are resolved at plan time.
    #[inline]
    pub fn column(&self, idx: usize) -> &Vector {
        &self.columns[idx]
    }

    /// Mutably borrows column `idx`.
    #[inline]
    pub fn column_mut(&mut self, idx: usize) -> &mut Vector {
        &mut self.columns[idx]
    }

    /// All columns.
    #[inline]
    pub fn columns(&self) -> &[Vector] {
        &self.columns
    }

    /// Adds a column.
    ///
    /// # Panics
    /// Panics if the new column's length differs from existing rows.
    pub fn push_column(&mut self, column: Vector) {
        assert!(
            self.columns.is_empty() || column.len() == self.num_rows(),
            "pushed column must match batch row count"
        );
        self.columns.push(column);
    }

    /// The current selection, if any.
    #[inline]
    pub fn selection(&self) -> Option<&SelectionVector> {
        self.selection.as_ref()
    }

    /// Installs (or clears) the selection.
    ///
    /// # Panics
    /// Panics if any selected position is out of range.
    pub fn set_selection(&mut self, selection: Option<SelectionVector>) {
        if let Some(sel) = &selection {
            if let Some(&max) = sel.positions().last() {
                assert!(
                    (max as usize) < self.num_rows(),
                    "selection position {max} out of range for {} rows",
                    self.num_rows()
                );
            }
        }
        self.selection = selection;
    }

    /// Clears all columns and the selection, keeping allocations.
    pub fn clear(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
        self.selection = None;
    }

    /// Materializes the selection: rewrites every column to contain only the
    /// live rows and drops the selection vector. Used at pipeline breakers
    /// (joins, aggregation) where dense data is required.
    pub fn compact(&mut self) {
        let Some(sel) = self.selection.take() else {
            return;
        };
        let positions = sel.positions();
        let mut scratch;
        for col in &mut self.columns {
            scratch = Vector::with_capacity(col.value_type(), positions.len());
            scratch.gather_from(col, positions);
            *col = scratch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> Batch {
        Batch::new(vec![
            Vector::from_i32(&[1, 2, 3, 4]),
            Vector::from_f32(&[0.1, 0.2, 0.3, 0.4]),
        ])
    }

    #[test]
    fn new_checks_alignment() {
        let b = sample_batch();
        assert_eq!(b.num_rows(), 4);
        assert_eq!(b.num_columns(), 2);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_columns_rejected() {
        Batch::new(vec![Vector::from_i32(&[1]), Vector::from_i32(&[1, 2])]);
    }

    #[test]
    fn live_rows_tracks_selection() {
        let mut b = sample_batch();
        assert_eq!(b.live_rows(), 4);
        b.set_selection(Some(SelectionVector::from_positions(vec![0, 3])));
        assert_eq!(b.live_rows(), 2);
        assert_eq!(b.num_rows(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn selection_bounds_checked() {
        let mut b = sample_batch();
        b.set_selection(Some(SelectionVector::from_positions(vec![9])));
    }

    #[test]
    fn compact_materializes_selection() {
        let mut b = sample_batch();
        b.set_selection(Some(SelectionVector::from_positions(vec![1, 2])));
        b.compact();
        assert_eq!(b.selection(), None);
        assert_eq!(b.column(0).as_i32(), &[2, 3]);
        assert_eq!(b.column(1).as_f32(), &[0.2, 0.3]);
    }

    #[test]
    fn compact_without_selection_is_noop() {
        let mut b = sample_batch();
        b.compact();
        assert_eq!(b.column(0).as_i32(), &[1, 2, 3, 4]);
    }

    #[test]
    fn push_column_checks_length() {
        let mut b = sample_batch();
        b.push_column(Vector::from_i32(&[9, 8, 7, 6]));
        assert_eq!(b.num_columns(), 3);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn push_mismatched_column_rejected() {
        let mut b = sample_batch();
        b.push_column(Vector::from_i32(&[9]));
    }

    #[test]
    fn clear_resets_rows_and_selection() {
        let mut b = sample_batch();
        b.set_selection(Some(SelectionVector::from_positions(vec![0])));
        b.clear();
        assert_eq!(b.num_rows(), 0);
        assert!(b.selection().is_none());
        assert_eq!(b.num_columns(), 2);
    }

    #[test]
    fn with_capacity_builds_typed_empty_columns() {
        let b = Batch::with_capacity(&[ValueType::I32, ValueType::Str], 8);
        assert_eq!(b.num_columns(), 2);
        assert_eq!(b.num_rows(), 0);
        assert_eq!(b.column(1).value_type(), ValueType::Str);
    }
}
