//! **Dynamic-pruning trajectory** — block-max pruned vs exhaustive
//! disjunctive top-k over the mixed short/long workload, recorded to
//! `BENCH_prune.json`.
//!
//! The sweep runs the same query log twice through the fused scratch-arena
//! path: once with the exhaustive materialized strategy and once with
//! [`x100_ir::SearchStrategy::Bm25MaterializedPruned`], and diffs each
//! run's [`x100_ir::HotPathStats`] — `window_refills` is the honest
//! "decoded posting blocks" meter (every 128-value stride staged into a
//! cursor window counts, including the pruned path's own seek probes and
//! block-max reads), `rows_scored` counts postings that reached the
//! scoring heap. The workload is the two-class mix (short 1–2-term
//! lookups, long 8-term disjunctions) measured per class, because the
//! classes sit at opposite ends of the pruning payoff: short queries are
//! mostly essential-list scans, long disjunctions are where MaxScore
//! partitioning and stride skipping retire most of the work.
//!
//! Two properties are asserted **in process**:
//! * every pruned hit list is bit-identical (`f32::to_bits` on scores) to
//!   the exhaustive run's — pruning is an execution strategy, never a
//!   result change;
//! * at `--scale medium` and above, the long-query class decodes at least
//!   2× fewer posting blocks pruned than exhaustive — the reduction the
//!   block-max metadata exists to deliver.
//!
//! Usage: `prune_bench [--scale tiny|small|medium|large|xlarge]
//! [--queries N] [--seed N]` (defaults: medium, 400 queries, seed
//! 0xC0FFEE).

use std::sync::Arc;
use std::time::Instant;

use x100_bench::{
    take_scale_flag_or_exit, take_usize_flag_or_exit, write_trajectory, Json, TablePrinter,
};
use x100_corpus::{CollectionStream, QueryLogConfig, QueryLogGenerator, Scale};
use x100_distributed::LatencyHistogram;
use x100_ir::{build_index_streaming, HotPathStats, IndexConfig, QueryExecutor, SearchStrategy};

const TOP_N: usize = 10;
const SHORT_MAX_TERMS: usize = 2;
const LONG_QUERY_TERMS: usize = 8;

/// The two-class workload, split by class: `(short, long)`. Same
/// generators and seeds as `serve_bench --mixed`, so the two benches
/// measure the same traffic.
fn class_query_logs(
    base: &QueryLogConfig,
    vocab_size: usize,
    seed: u64,
    per_class: usize,
) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let short_cfg = QueryLogConfig {
        avg_terms: 1.5,
        max_terms: SHORT_MAX_TERMS,
        ..base.clone()
    };
    let long_cfg = QueryLogConfig {
        avg_terms: LONG_QUERY_TERMS as f64,
        max_terms: LONG_QUERY_TERMS,
        ..base.clone()
    };
    let target_long = LONG_QUERY_TERMS.min(vocab_size);
    let short: Vec<Vec<u32>> = QueryLogGenerator::new(short_cfg, vocab_size, seed)
        .take(per_class)
        .collect();
    let mut long_gen = QueryLogGenerator::new(long_cfg, vocab_size, seed ^ 0x9E37_79B9);
    let long: Vec<Vec<u32>> = (0..per_class)
        .map(|_| {
            let mut terms = long_gen.next().expect("generator is endless");
            terms.truncate(target_long);
            while terms.len() < target_long {
                for t in long_gen.next().expect("generator is endless") {
                    if !terms.contains(&t) {
                        terms.push(t);
                        if terms.len() == target_long {
                            break;
                        }
                    }
                }
            }
            terms
        })
        .collect();
    (short, long)
}

/// One class swept under one strategy: per-query latencies, the hot-path
/// work delta, and every hit list for the bit-identity check.
struct ClassRun {
    latency: LatencyHistogram,
    decoded_blocks: u64,
    scored_rows: u64,
    hits: Vec<Vec<(u32, f32)>>,
}

fn run_class(exec: &QueryExecutor, strategy: SearchStrategy, queries: &[Vec<u32>]) -> ClassRun {
    let mut out = Vec::new();
    let mut latency = LatencyHistogram::new();
    let mut hits = Vec::with_capacity(queries.len());
    let HotPathStats {
        window_refills: refills_before,
        rows_scored: scored_before,
    } = exec.hot_stats();
    for q in queries {
        let t = Instant::now();
        exec.search_hits_into(q, strategy, TOP_N, &mut out)
            .expect("query failed");
        latency.record(t.elapsed());
        hits.push(out.clone());
    }
    let after = exec.hot_stats();
    ClassRun {
        latency,
        decoded_blocks: after.window_refills - refills_before,
        scored_rows: after.rows_scored - scored_before,
        hits,
    }
}

fn assert_bit_identical(class: &str, exhaustive: &ClassRun, pruned: &ClassRun) {
    for (i, (e, p)) in exhaustive.hits.iter().zip(&pruned.hits).enumerate() {
        assert_eq!(
            e.len(),
            p.len(),
            "{class} query {i}: pruned hit count diverged"
        );
        for (j, ((ed, es), (pd, ps))) in e.iter().zip(p).enumerate() {
            assert!(
                ed == pd && es.to_bits() == ps.to_bits(),
                "{class} query {i} hit {j}: pruned ({pd}, {ps:?}) vs exhaustive ({ed}, {es:?})"
            );
        }
    }
}

fn ratio(exhaustive: u64, pruned: u64) -> f64 {
    exhaustive as f64 / (pruned as f64).max(1.0)
}

fn class_json(class: &str, exhaustive: &ClassRun, pruned: &ClassRun, n: usize) -> Json {
    let ms = |d: std::time::Duration| Json::Num(d.as_secs_f64() * 1e3);
    let side = |r: &ClassRun| {
        Json::obj(vec![
            ("decoded_blocks", Json::Num(r.decoded_blocks as f64)),
            ("scored_rows", Json::Num(r.scored_rows as f64)),
            ("latency_p50_ms", ms(r.latency.p50())),
            ("latency_p99_ms", ms(r.latency.p99())),
        ])
    };
    Json::obj(vec![
        ("class", Json::str(class)),
        ("queries", Json::Num(n as f64)),
        ("exhaustive", side(exhaustive)),
        ("pruned", side(pruned)),
        (
            "decoded_blocks_ratio",
            Json::Num(ratio(exhaustive.decoded_blocks, pruned.decoded_blocks)),
        ),
        (
            "scored_rows_ratio",
            Json::Num(ratio(exhaustive.scored_rows, pruned.scored_rows)),
        ),
    ])
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_scale_flag_or_exit(&mut args).unwrap_or(Scale::Medium);
    let num_queries = take_usize_flag_or_exit(&mut args, "--queries", 400);
    let seed = take_usize_flag_or_exit(&mut args, "--seed", 0xC0FFEE) as u64;
    if let Some(unknown) = args.first() {
        eprintln!("error: unknown argument {unknown:?}");
        std::process::exit(2);
    }
    let cfg = scale.config();
    let per_class = (num_queries / 2).max(1);
    eprintln!(
        "prune_bench scale={scale}: {} docs, {per_class} short + {per_class} long queries, top-{TOP_N}",
        cfg.num_docs
    );

    let t0 = Instant::now();
    let stream = CollectionStream::new(&cfg);
    let (index, _tail) =
        build_index_streaming(stream, &IndexConfig::materialized_q8(), scale.chunk_size());
    let index = Arc::new(index);
    assert!(
        index.block_max().is_some(),
        "built index must carry block-max metadata"
    );
    index
        .validate_block_max()
        .expect("block-max metadata must dominate the posting columns");
    eprintln!(
        "indexed {} postings in {:.2}s (block-max metadata validated)",
        index.num_postings(),
        t0.elapsed().as_secs_f64()
    );

    let (short_q, long_q) = class_query_logs(&cfg.query_log, cfg.vocab_size, seed, per_class);

    // One executor per strategy: the work counters then attribute cleanly,
    // and both run warm over the same shared in-memory index.
    let exhaustive_exec = QueryExecutor::new(index.clone());
    let pruned_exec = QueryExecutor::new(index.clone());
    let runs: Vec<(&str, &Vec<Vec<u32>>, ClassRun, ClassRun)> =
        [("short", &short_q), ("long", &long_q)]
            .into_iter()
            .map(|(class, queries)| {
                let e = run_class(&exhaustive_exec, SearchStrategy::Bm25Materialized, queries);
                let p = run_class(
                    &pruned_exec,
                    SearchStrategy::Bm25MaterializedPruned,
                    queries,
                );
                assert_bit_identical(class, &e, &p);
                (class, queries, e, p)
            })
            .collect();

    let mut table = TablePrinter::new(&[
        "class",
        "blocks exh",
        "blocks pruned",
        "ratio",
        "rows exh",
        "rows pruned",
        "ratio",
        "p99 exh ms",
        "p99 pruned ms",
    ]);
    let mut classes_json = Vec::new();
    let mut total_e_blocks = 0u64;
    let mut total_p_blocks = 0u64;
    let mut total_e_rows = 0u64;
    let mut total_p_rows = 0u64;
    for (class, queries, e, p) in &runs {
        let blocks_ratio = ratio(e.decoded_blocks, p.decoded_blocks);
        let rows_ratio = ratio(e.scored_rows, p.scored_rows);
        eprintln!(
            "{class}: decoded blocks {} -> {} ({blocks_ratio:.2}x), scored rows {} -> {} \
             ({rows_ratio:.2}x), bit-identical",
            e.decoded_blocks, p.decoded_blocks, e.scored_rows, p.scored_rows
        );
        table.push_row(vec![
            class.to_string(),
            e.decoded_blocks.to_string(),
            p.decoded_blocks.to_string(),
            format!("{blocks_ratio:.2}x"),
            e.scored_rows.to_string(),
            p.scored_rows.to_string(),
            format!("{rows_ratio:.2}x"),
            format!("{:.3}", e.latency.p99().as_secs_f64() * 1e3),
            format!("{:.3}", p.latency.p99().as_secs_f64() * 1e3),
        ]);
        classes_json.push(class_json(class, e, p, queries.len()));
        total_e_blocks += e.decoded_blocks;
        total_p_blocks += p.decoded_blocks;
        total_e_rows += e.scored_rows;
        total_p_rows += p.scored_rows;
    }

    // The acceptance floor: long disjunctive top-10 at medium scale must
    // decode at least 2x fewer blocks pruned than exhaustive. Tiny/small
    // posting lists span too few 128-value strides for skipping to bite,
    // so the floor is only asserted from medium up.
    let long_run = runs
        .iter()
        .find(|(c, ..)| *c == "long")
        .expect("long class");
    let long_blocks_ratio = ratio(long_run.2.decoded_blocks, long_run.3.decoded_blocks);
    if scale >= Scale::Medium {
        assert!(
            long_blocks_ratio >= 2.0,
            "long-query pruning decoded only {long_blocks_ratio:.2}x fewer blocks (floor: 2x)"
        );
    }

    println!("\nPrune bench — {scale}, bm25_materialized pruned vs exhaustive, top-{TOP_N}:");
    print!("{}", table.render());

    let doc = Json::obj(vec![
        ("bench", Json::str("prune_bench")),
        ("scale", Json::str(scale.name())),
        ("num_docs", Json::Num(cfg.num_docs as f64)),
        ("vocab_size", Json::Num(cfg.vocab_size as f64)),
        ("queries_per_class", Json::Num(per_class as f64)),
        ("seed", Json::Num(seed as f64)),
        ("top_n", Json::Num(TOP_N as f64)),
        ("strategy", Json::str("bm25_materialized_pruned")),
        ("classes", Json::Arr(classes_json)),
        (
            "decoded_blocks_ratio",
            Json::Num(ratio(total_e_blocks, total_p_blocks)),
        ),
        (
            "scored_rows_ratio",
            Json::Num(ratio(total_e_rows, total_p_rows)),
        ),
        ("long_decoded_blocks_ratio", Json::Num(long_blocks_ratio)),
        ("bit_identical", Json::Bool(true)),
    ]);
    write_trajectory("BENCH_prune.json", &doc)
        .unwrap_or_else(|e| panic!("write BENCH_prune.json: {e}"));
}
