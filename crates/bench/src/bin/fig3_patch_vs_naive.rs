//! **Figure 3** — branch miss rate and decompression bandwidth vs exception
//! rate, NAIVE vs patched PFOR.
//!
//! Regenerates both series of the paper's Figure 3:
//!
//! * *Bandwidth*: wall-clock decompression throughput (GB/s of decompressed
//!   output) of the naive sentinel decoder and the two-loop patched
//!   decoder, measured on this machine over the same logical data.
//! * *Branch miss rate*: the naive decoder's data-dependent branch replayed
//!   through a two-bit saturating predictor model (the paper used CPU event
//!   counters; see DESIGN.md's substitution table). The patched decoder has
//!   no data-dependent branch, so its modelled BMR is zero by construction.
//!
//! Shape targets: NAIVE bandwidth collapses toward 50 % exceptions where
//! BMR peaks; PATCHED degrades only linearly as patch work grows.
//!
//! Usage: `cargo run --release -p x100-bench --bin fig3_patch_vs_naive`

use std::time::Instant;

use x100_bench::TablePrinter;
use x100_compress::{NaiveBlock, PforBlock};

/// Values per measured block.
const N: usize = 1 << 20;
/// Code width (the paper's IR configuration).
const WIDTH: u8 = 8;

/// Deterministic data with an expected `rate` fraction of exceptions:
/// codeable values are < 255, exceptions are large.
fn generate(rate: f64) -> Vec<u32> {
    let threshold = (rate * u32::MAX as f64) as u32;
    let mut x = 0x2545F491u32;
    (0..N)
        .map(|_| {
            // xorshift32
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            if x < threshold {
                1_000_000 + (x % 1000) // exception (needs > 8 bits)
            } else {
                u32::from(x as u8) % 255 // codeable under NAIVE's sentinel too
            }
        })
        .collect()
}

/// Decompression bandwidth in GB/s of *decompressed* output.
fn bandwidth(mut decode: impl FnMut(&mut Vec<u32>)) -> f64 {
    let mut out = Vec::new();
    decode(&mut out); // warm-up
    let mut best = f64::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        decode(&mut out);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
    }
    (N * 4) as f64 / best / 1e9
}

fn main() {
    println!("Figure 3 — decompression bandwidth + branch miss rate vs exception rate");
    println!("(PFOR b={WIDTH}, {N} values per block; patched BMR is structurally 0)\n");

    let mut table = TablePrinter::new(&[
        "exc.rate",
        "actual",
        "NAIVE GB/s",
        "PFOR GB/s",
        "NAIVE BMR%",
        "PFOR BMR%",
    ]);
    let mut naive_at_0 = 0.0f64;
    let mut naive_at_mid = f64::MAX;
    let mut pfor_curve: Vec<(f64, f64)> = Vec::new();

    for step in 0..=20 {
        let rate = step as f64 / 20.0;
        let values = generate(rate);
        let naive = NaiveBlock::encode(&values, WIDTH, 0);
        let pfor = PforBlock::encode(&values, WIDTH, 0);
        let actual = naive.exception_rate();

        let naive_bw = bandwidth(|out| naive.decode_into(out));
        let pfor_bw = bandwidth(|out| pfor.decode_into(out));
        let naive_bmr = naive.modelled_branch_miss_rate() * 100.0;

        if step == 0 {
            naive_at_0 = naive_bw;
        }
        if (0.4..=0.6).contains(&rate) {
            naive_at_mid = naive_at_mid.min(naive_bw);
        }
        pfor_curve.push((rate, pfor_bw));

        table.push_row(vec![
            format!("{rate:.2}"),
            format!("{actual:.3}"),
            format!("{naive_bw:.2}"),
            format!("{pfor_bw:.2}"),
            format!("{naive_bmr:.1}"),
            "0.0".to_owned(),
        ]);
    }
    print!("{}", table.render());

    println!("\nShape checks (paper's Figure 3):");
    println!(
        "  NAIVE bandwidth at 50% exceptions is {:.1}x below its 0% value \
         (paper: sharp collapse)",
        naive_at_0 / naive_at_mid
    );
    let (lo, hi) = (pfor_curve[0].1, pfor_curve.last().unwrap().1);
    println!(
        "  PATCHED degrades smoothly: {:.2} GB/s at 0% -> {:.2} GB/s at 100% \
         (paper: linear patch-work growth)",
        lo, hi
    );
}
