//! **Table 3** — performance of the distributed runs (§3.4).
//!
//! Reproduces all three sections of the paper's Table 3 over the simulated
//! cluster (real per-partition compute, modeled network/queueing — see
//! `x100-distributed`):
//!
//! 1. *Full run (hot data)*: sequential (unpartitioned) baseline vs 8
//!    servers, 1 stream.
//! 2. *Using less servers*: the 8 partitions assigned to 4, 2, 1 servers.
//! 3. *Increasing the concurrency*: 8 servers with 1, 2, 4, 8 query
//!    streams — absolute and amortized per-query time.
//!
//! Shape targets (paper): latency speedup from partitioning is far from
//! linear because the slowest server gates each query (max ≈ 2× min at 8
//! servers); amortized time (throughput) *does* scale ~linearly with
//! streams while per-query latency degrades.
//!
//! Usage: `table3_distributed [--scale tiny|small|medium|large] [num_docs] [num_queries]`
//! (defaults: the medium scale's 100000 docs, 400 measured queries)

use x100_bench::{fmt_ms, reference, take_scale_flag_or_exit, TablePrinter};
use x100_corpus::{CollectionConfig, Scale, SyntheticCollection};
use x100_distributed::{simulate_run, RunConfig, SimulatedCluster};
use x100_ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

const PARTITIONS: usize = 8;
const TOP_N: usize = 20;
const STRATEGY: SearchStrategy = SearchStrategy::Bm25TwoPass;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_scale_flag_or_exit(&mut args);
    let mut cfg = scale
        .map(Scale::config)
        .unwrap_or_else(CollectionConfig::benchmark);
    if let Some(n) = args.first().and_then(|s| s.parse().ok()) {
        cfg.num_docs = n;
    }
    let num_queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    cfg.num_efficiency_queries = cfg.num_efficiency_queries.max(num_queries);

    eprintln!(
        "generating collection ({} docs) and building {} partition indexes ...",
        cfg.num_docs, PARTITIONS
    );
    let collection = SyntheticCollection::generate(&cfg);
    let queries: Vec<Vec<u32>> = collection
        .efficiency_log
        .iter()
        .take(num_queries)
        .cloned()
        .collect();

    // Sequential baseline: the unpartitioned index on one machine.
    let full_index = InvertedIndex::build(&collection, &IndexConfig::compressed());
    let engine = QueryEngine::new(&full_index);
    for q in &queries {
        let _ = engine.search(q, STRATEGY, TOP_N); // warm
    }
    let mut seq_total = std::time::Duration::ZERO;
    for q in &queries {
        seq_total += engine.search(q, STRATEGY, TOP_N).expect("search").cpu_time;
    }
    let sequential = seq_total / queries.len() as u32;

    // Cluster: measure real per-partition compute, then schedule.
    let cluster = SimulatedCluster::build(&collection, PARTITIONS, &IndexConfig::compressed());
    eprintln!(
        "measuring per-partition compute for {} queries ...",
        queries.len()
    );
    let compute = cluster
        .measure_compute(&queries, STRATEGY, TOP_N)
        .expect("healthy cluster: no node should fail during measurement");

    println!("Table 3 — performance of the distributed runs (measured vs paper)\n");
    println!(
        "Full TREC-TB run (hot data): sequential = {} ms/query (paper: {} ms)\n",
        fmt_ms(sequential),
        reference::TABLE3_SEQUENTIAL_MS
    );

    // Section 2: server scaling, 1 stream.
    let mut t = TablePrinter::new(&[
        "servers",
        "avg query ms",
        "srv min",
        "srv avg",
        "srv max",
        "paper avg",
        "paper min",
        "paper avg.",
        "paper max",
    ]);
    for paper in reference::TABLE3_SERVERS {
        let stats = simulate_run(&compute, &RunConfig::servers(paper.servers));
        t.push_row(vec![
            paper.servers.to_string(),
            fmt_ms(stats.avg_latency),
            fmt_ms(stats.server_min),
            fmt_ms(stats.server_avg),
            fmt_ms(stats.server_max),
            format!("{:.2}", paper.avg_query_ms),
            format!("{:.2}", paper.server_min_ms),
            format!("{:.2}", paper.server_avg_ms),
            format!("{:.2}", paper.server_max_ms),
        ]);
    }
    println!("Using less servers (1 stream, fixed partition count = 8):");
    print!("{}", t.render());

    // Section 3: stream concurrency on 8 servers.
    let mut t = TablePrinter::new(&[
        "streams",
        "avg query ms",
        "amortized ms",
        "srv min",
        "srv avg",
        "srv max",
        "paper avg",
        "paper amort.",
    ]);
    for paper in reference::TABLE3_STREAMS {
        let stats = simulate_run(&compute, &RunConfig::streams(PARTITIONS, paper.streams));
        t.push_row(vec![
            paper.streams.to_string(),
            fmt_ms(stats.avg_latency),
            fmt_ms(stats.amortized),
            fmt_ms(stats.server_min),
            fmt_ms(stats.server_avg),
            fmt_ms(stats.server_max),
            format!("{:.2}", paper.avg_query_ms),
            format!("{:.2}", paper.amortized_ms),
        ]);
    }
    println!("\nIncreasing the concurrency (8 servers):");
    print!("{}", t.render());

    let one = simulate_run(&compute, &RunConfig::streams(PARTITIONS, 1));
    let eight = simulate_run(&compute, &RunConfig::streams(PARTITIONS, 8));
    println!(
        "\nShape checks: 8 servers process {:.0} queries/s at 8 streams \
         ({:.1}x the 1-stream throughput; paper: >300 q/s, amortized 11.26 -> 3.26 ms). \
         Slowest/fastest server ratio at 8 servers, 1 stream: {:.2}x (paper: ~2x).",
        eight.throughput_qps,
        eight.throughput_qps / one.throughput_qps,
        one.server_max.as_secs_f64() / one.server_min.as_secs_f64(),
    );
}
