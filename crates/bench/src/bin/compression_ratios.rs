//! **§3.3 compression accounting** — bits per tuple of the index columns.
//!
//! "Using MonetDB/X100's built in compression, we were able to reduce the
//! sizes of the docid and tf columns, which constitute the major part of
//! total I/O, from 32 to 11.98 and 8.13 bits per tuple, respectively."
//! (`docid`: PFOR-DELTA, 8-bit code words; `tf`: PFOR, 8-bit code words.)
//!
//! This harness builds the index both raw and compressed and reports the
//! measured bits/tuple next to the paper's, plus the materialized-score
//! variants that explain the BM25TCM/BM25TCMQ8 I/O behaviour (32-bit floats
//! vs 8-bit quantized codes).
//!
//! Usage: `compression_ratios [--scale tiny|small|medium|large] [num_docs]`
//! (default: the medium scale's 100000 docs)

use x100_bench::{reference, take_scale_flag_or_exit, TablePrinter};
use x100_corpus::{CollectionConfig, Scale, SyntheticCollection};
use x100_ir::{IndexConfig, InvertedIndex};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_scale_flag_or_exit(&mut args);
    let mut cfg = scale
        .map(Scale::config)
        .unwrap_or_else(CollectionConfig::benchmark);
    if let Some(n) = args.first().and_then(|s| s.parse().ok()) {
        cfg.num_docs = n;
    }

    eprintln!("generating {}-doc collection ...", cfg.num_docs);
    let collection = SyntheticCollection::generate(&cfg);

    let raw = InvertedIndex::build(&collection, &IndexConfig::uncompressed());
    let compressed = InvertedIndex::build(&collection, &IndexConfig::compressed());
    let mat_f32 = InvertedIndex::build(&collection, &IndexConfig::materialized_f32());
    let mat_q8 = InvertedIndex::build(&collection, &IndexConfig::materialized_q8());

    let mut t = TablePrinter::new(&["column", "codec", "bits/tuple", "paper"]);
    t.push_row(vec![
        "docid".into(),
        "raw".into(),
        format!("{:.2}", raw.column_bits_per_tuple("docid")),
        format!("{:.2}", reference::DOCID_BITS_RAW),
    ]);
    t.push_row(vec![
        "docid".into(),
        "PFOR-DELTA/8".into(),
        format!("{:.2}", compressed.column_bits_per_tuple("docid")),
        format!("{:.2}", reference::DOCID_BITS_COMPRESSED),
    ]);
    t.push_row(vec![
        "tf".into(),
        "raw".into(),
        format!("{:.2}", raw.column_bits_per_tuple("tf")),
        "32.00".into(),
    ]);
    t.push_row(vec![
        "tf".into(),
        "PFOR/8".into(),
        format!("{:.2}", compressed.column_bits_per_tuple("tf")),
        format!("{:.2}", reference::TF_BITS_COMPRESSED),
    ]);
    t.push_row(vec![
        "score".into(),
        "f32 (raw bits)".into(),
        format!("{:.2}", mat_f32.column_bits_per_tuple("score")),
        "32.00".into(),
    ]);
    t.push_row(vec![
        "score".into(),
        "quantized PFOR/8".into(),
        format!("{:.2}", mat_q8.column_bits_per_tuple("score")),
        "~8".into(),
    ]);

    println!(
        "\nCompression accounting over {} postings ({} docs):",
        compressed.num_postings(),
        cfg.num_docs
    );
    print!("{}", t.render());

    let docid_ratio = 32.0 / compressed.column_bits_per_tuple("docid");
    let tf_ratio = 32.0 / compressed.column_bits_per_tuple("tf");
    println!(
        "\nShape checks: docid compresses {:.1}x (paper: {:.1}x), tf {:.1}x \
         (paper: {:.1}x); the materialized f32 score column stays at 32 \
         bits/tuple — the exact reason the paper's BM25TCM cold run did not \
         improve until quantization shrank it to 8 bits.",
        docid_ratio,
        32.0 / reference::DOCID_BITS_COMPRESSED,
        tf_ratio,
        32.0 / reference::TF_BITS_COMPRESSED,
    );
}
