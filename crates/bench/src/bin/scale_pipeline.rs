//! **Scale trajectory** — the full pipeline (generate → index → query →
//! distributed merge) at one rung of the `--scale` ladder, with stage
//! timings recorded to `BENCH_scale.json`.
//!
//! This is the `--scale` path's end-to-end exerciser and the CI smoke job's
//! workload. Generation is streamed ([`x100_corpus::CollectionStream`]) and
//! consumed chunk-by-chunk by *both* the single-node builder and the
//! per-partition builders of the cluster, so the collection is generated
//! exactly once and never resident.
//!
//! All index construction goes through [`x100_ir::SpillingIndexBuilder`].
//! Without `--mem-budget` the budget is unbounded — the builder never
//! touches disk and behaves exactly like the in-memory path. With
//! `--mem-budget SIZE` (e.g. `64M`) the posting accumulators are split
//! half to the full index and half across the partition builders; each
//! flushes sorted run files when its share fills and k-way merges them at
//! finish **straight into compressed column blocks**
//! ([`x100_ir::IndexColumnsWriter`]), so even `--scale large` builds in
//! bounded memory end to end: the merged columns are never materialized
//! uncompressed. The budget is **asserted in-process** over both phases:
//! peak accumulator bytes (full + all partitions) and the finish-phase
//! peak (one builder's streaming merge plus the accumulators still
//! waiting) must each come in at or under it. Budgeted runs record the
//! accumulator peak, finish peak, combined peak, run counts, spill I/O and
//! the OS-reported peak RSS to `BENCH_scale_spill.json`.
//!
//! With `--persist <path>` the finished indexes are additionally written
//! to disk — the full index as a single segment file at `<path>`, plus one
//! partition segment per node at `<path>.p<i>` — then **reopened cold**
//! and the query stages served from the reopened artifacts, with a
//! bit-identity spot check against the in-memory results before the swap.
//! A segment written here reopens in any later process via
//! `serve_bench --segment <path>`.
//!
//! Usage: `scale_pipeline [--scale tiny|small|medium|large|xlarge] [--mem-budget SIZE]
//! [--partitions N] [--queries N] [--persist path]`
//! (defaults: small, unbounded, 8 partitions, 200 measured queries)

use std::time::Instant;

use x100_bench::{
    fmt_ms, peak_rss_bytes, take_flag_value, take_mem_budget_flag_or_exit, take_scale_flag_or_exit,
    take_usize_flag_or_exit, write_trajectory, Json, TablePrinter,
};
use x100_corpus::{precision_at_k, CollectionStream, Scale};
use x100_distributed::SimulatedCluster;
use x100_ir::{
    IndexConfig, InvertedIndex, QueryEngine, SearchStrategy, SpillConfig, SpillingIndexBuilder,
};

const TOP_N: usize = 20;
const STRATEGY: SearchStrategy = SearchStrategy::Bm25TwoPass;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_scale_flag_or_exit(&mut args).unwrap_or(Scale::Small);
    let mem_budget = take_mem_budget_flag_or_exit(&mut args);
    let partitions = take_usize_flag_or_exit(&mut args, "--partitions", 8);
    let num_queries = take_usize_flag_or_exit(&mut args, "--queries", 200);
    let persist_path = take_flag_value(&mut args, "--persist");
    if partitions == 0 {
        eprintln!("error: --partitions must be at least 1");
        std::process::exit(2);
    }
    let cfg = scale.config();
    let chunk = scale.chunk_size();

    // Budget split: half to the full single-node index, half shared by the
    // partition builders — their accumulators coexist in this process, so
    // together they must stay under the flag's value. Each share must
    // comfortably exceed the largest single document (a builder's peak is
    // max(share, largest doc)), or the in-process budget assert below
    // could not be honoured; 64 KiB per accumulator is orders of magnitude
    // above any generated document at every scale.
    const MIN_SHARE: usize = 64 << 10;
    if let Some(b) = mem_budget {
        let min_budget = 2 * MIN_SHARE * partitions.max(2);
        if b < min_budget {
            eprintln!(
                "error: --mem-budget {b} too small for {partitions} partitions \
                 (need at least {min_budget} bytes: 64 KiB per accumulator)"
            );
            std::process::exit(2);
        }
    }
    let (full_budget, node_budget) = match mem_budget {
        Some(b) => (b / 2, b / 2 / partitions),
        None => (usize::MAX, usize::MAX),
    };

    eprintln!(
        "scale={scale}: {} docs, vocab {}, chunk {chunk}, {partitions} partitions, budget {}",
        cfg.num_docs,
        cfg.vocab_size,
        mem_budget.map_or("unbounded".into(), |b| format!("{b} bytes")),
    );

    // Stage 1 — one streamed generation pass feeding every index builder.
    let t0 = Instant::now();
    let mut stream = CollectionStream::new(&cfg);
    let vocab = stream.vocab();
    let mut full = SpillingIndexBuilder::new(
        vocab.len(),
        &IndexConfig::compressed(),
        SpillConfig::with_budget(full_budget),
    );
    let mut nodes: Vec<(SpillingIndexBuilder, Vec<u32>)> = (0..partitions)
        .map(|_| {
            (
                SpillingIndexBuilder::new(
                    vocab.len(),
                    &IndexConfig::compressed(),
                    SpillConfig::with_budget(node_budget),
                ),
                Vec::new(),
            )
        })
        .collect();
    let mut docs = Vec::new();
    while stream.next_chunk_into(chunk, &mut docs) > 0 {
        for doc in &docs {
            full.push_doc(&doc.name, &doc.terms, doc.len)
                .expect("full-index spill");
            let (builder, global_ids) = &mut nodes[doc.id as usize % partitions];
            builder
                .push_doc(&doc.name, &doc.terms, doc.len)
                .expect("partition spill");
            global_ids.push(doc.id);
        }
    }
    let tail = stream.finish();
    let generate_index_s = t0.elapsed().as_secs_f64();

    // Builders finish sequentially, so the process-wide finish-phase
    // footprint while builder `i` merges is its own finish peak plus the
    // resident (unspilled) accumulators of the builders still waiting.
    let t1 = Instant::now();
    let node_residents: Vec<usize> = nodes
        .iter()
        .map(|(b, _)| b.resident_accum_bytes())
        .collect();
    let mut waiting_resident: usize = node_residents.iter().sum();
    let (index, full_stats) = full.finish(&vocab).expect("full-index merge");
    let mut finish_peak = full_stats.finish_peak_bytes + waiting_resident;
    let mut node_stats = Vec::with_capacity(partitions);
    let mut parts = Vec::with_capacity(partitions);
    for (i, (builder, ids)) in nodes.into_iter().enumerate() {
        waiting_resident -= node_residents[i];
        let (idx, s) = builder.finish(&vocab).expect("partition merge");
        finish_peak = finish_peak.max(s.finish_peak_bytes + waiting_resident);
        node_stats.push(s);
        parts.push((idx, ids));
    }
    let cluster = SimulatedCluster::from_partition_indexes(parts);
    let finish_s = t1.elapsed().as_secs_f64();

    // Stage 1b — optional persistence: write the full index and one
    // segment per partition, reopen everything cold (posting blocks now
    // `pread` through the buffer pool on demand), spot-check bit-identity
    // against the in-memory build, then serve the remaining stages from
    // the reopened artifacts.
    let mut persist_json = Json::Null;
    let mut persist_row = None;
    let (index, cluster) = match &persist_path {
        Some(path) => {
            let tw = Instant::now();
            let full_bytes = index
                .write_segment(path)
                .unwrap_or_else(|e| panic!("write segment {path}: {e}"));
            let part_paths = cluster
                .persist_segments(path)
                .unwrap_or_else(|e| panic!("write partition segments at {path}: {e}"));
            let part_bytes: u64 = part_paths
                .iter()
                .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
                .sum();
            let write_s = tw.elapsed().as_secs_f64();
            let to = Instant::now();
            let (reopened, open_stats) = InvertedIndex::open_segment_with_stats(path)
                .unwrap_or_else(|e| panic!("reopen segment {path}: {e}"));
            let reopened_cluster = SimulatedCluster::open_segments(&part_paths)
                .unwrap_or_else(|e| panic!("reopen partition segments: {e}"));
            let open_s = to.elapsed().as_secs_f64();
            // Reopened artifacts must serve the exact results of the
            // in-memory build before they are allowed to replace it.
            let mem_engine = QueryEngine::new(&index);
            let seg_engine = QueryEngine::new(&reopened);
            for q in tail.efficiency_log.iter().take(10) {
                let mem = mem_engine.search(q, STRATEGY, TOP_N).expect("search");
                let seg = seg_engine.search(q, STRATEGY, TOP_N).expect("search");
                assert_eq!(
                    seg.results, mem.results,
                    "reopened segment diverged from in-memory index"
                );
                assert_eq!(
                    reopened_cluster.search(q, STRATEGY, TOP_N),
                    cluster.search(q, STRATEGY, TOP_N),
                    "reopened cluster diverged from in-memory cluster"
                );
            }
            eprintln!(
                "persisted {path} ({:.1} MiB full + {:.1} MiB across {} partitions) \
                 in {write_s:.2}s, reopened cold in {open_s:.2}s (bit-identical)",
                full_bytes as f64 / (1 << 20) as f64,
                part_bytes as f64 / (1 << 20) as f64,
                part_paths.len(),
            );
            eprintln!(
                "open footprint: {:.1} KiB resident metadata + {:.1} KiB block \
                 directories (fully materialized would be {:.1} KiB)",
                open_stats.resident_meta_bytes as f64 / 1024.0,
                open_stats.directory_bytes as f64 / 1024.0,
                open_stats.full_materialized_bytes as f64 / 1024.0,
            );
            // The whole point of the paged open: the resident metadata must
            // be a small slice of what the old fully-materialized open kept
            // in memory. Tiny fixtures fit in a handful of pages where the
            // fence overhead dominates, so only assert from medium up.
            if scale >= Scale::Medium {
                assert!(
                    open_stats.resident_meta_bytes <= open_stats.full_materialized_bytes / 10,
                    "resident metadata {} exceeds 1/10 of the materialized footprint {}",
                    open_stats.resident_meta_bytes,
                    open_stats.full_materialized_bytes,
                );
            }
            persist_json = Json::obj(vec![
                ("path", Json::str(path)),
                ("full_segment_bytes", Json::Num(full_bytes as f64)),
                ("partition_segments", Json::Num(part_paths.len() as f64)),
                ("partition_segment_bytes", Json::Num(part_bytes as f64)),
                ("write_s", Json::Num(write_s)),
                ("open_s", Json::Num(open_s)),
                (
                    "resident_meta_bytes",
                    Json::Num(open_stats.resident_meta_bytes as f64),
                ),
                (
                    "directory_bytes",
                    Json::Num(open_stats.directory_bytes as f64),
                ),
                (
                    "full_materialized_bytes",
                    Json::Num(open_stats.full_materialized_bytes as f64),
                ),
                ("reopened_bit_identical", Json::Bool(true)),
            ]);
            persist_row = Some(format!(
                "{:.1} MiB written in {write_s:.2}s, reopened in {open_s:.2}s \
                 ({:.1} KiB resident metadata)",
                (full_bytes + part_bytes) as f64 / (1 << 20) as f64,
                open_stats.resident_meta_bytes as f64 / 1024.0,
            ));
            (reopened, reopened_cluster)
        }
        None => (index, cluster),
    };

    // Spill accounting — and the in-process budget guarantee, covering the
    // accumulator phase *and* the streaming columnar finish phase.
    let peak_accum =
        full_stats.peak_accum_bytes + node_stats.iter().map(|s| s.peak_accum_bytes).sum::<usize>();
    let combined_peak = peak_accum.max(finish_peak);
    let spill_runs = full_stats.runs + node_stats.iter().map(|s| s.runs).sum::<usize>();
    let mut spill_io = full_stats.total_io();
    for s in &node_stats {
        spill_io.merge(&s.total_io());
    }
    if let Some(budget) = mem_budget {
        assert!(
            peak_accum <= budget,
            "peak accumulator bytes {peak_accum} exceeded --mem-budget {budget}"
        );
        assert!(
            finish_peak <= budget,
            "finish-phase peak bytes {finish_peak} exceeded --mem-budget {budget}"
        );
    }
    eprintln!(
        "indexed {} postings in {:.2}s (+{:.2}s streamed merge+column build); \
         accumulator peak {:.1} MiB, finish peak {:.1} MiB, {spill_runs} spill runs, \
         {:.1} MiB spill I/O",
        index.num_postings(),
        generate_index_s,
        finish_s,
        peak_accum as f64 / (1 << 20) as f64,
        finish_peak as f64 / (1 << 20) as f64,
        spill_io.bytes as f64 / (1 << 20) as f64,
    );

    // Stage 2 — single-node query throughput + effectiveness.
    let engine = QueryEngine::new(&index);
    let queries: Vec<&Vec<u32>> = tail.efficiency_log.iter().take(num_queries).collect();
    for q in &queries {
        let _ = engine.search(q, STRATEGY, TOP_N); // warm
    }
    let t2 = Instant::now();
    let mut cpu_total = std::time::Duration::ZERO;
    for q in &queries {
        cpu_total += engine.search(q, STRATEGY, TOP_N).expect("search").cpu_time;
    }
    let query_wall_s = t2.elapsed().as_secs_f64();
    let query_avg = cpu_total / queries.len().max(1) as u32;
    let qps = queries.len() as f64 / query_wall_s;

    let mut p20 = 0.0;
    for q in &tail.eval_queries {
        let ranked: Vec<u32> = engine
            .search(&q.terms, STRATEGY, TOP_N)
            .expect("search")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        p20 += precision_at_k(&ranked, &q.relevant, TOP_N);
    }
    p20 /= tail.eval_queries.len().max(1) as f64;

    // Stage 3 — distributed broadcast + merge over the same queries.
    let t3 = Instant::now();
    let mut merged_nonempty = 0usize;
    for q in &queries {
        if !cluster.search(q, STRATEGY, TOP_N).is_empty() {
            merged_nonempty += 1;
        }
    }
    let merge_wall_s = t3.elapsed().as_secs_f64();
    let merge_avg_ms = merge_wall_s * 1e3 / queries.len().max(1) as f64;

    // Sanity: the merged top-20 must strongly overlap the single-node one.
    let mut overlap = 0usize;
    let mut overlap_total = 0usize;
    for q in queries.iter().take(20) {
        let single: Vec<u32> = engine
            .search(q, STRATEGY, TOP_N)
            .expect("search")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let dist: Vec<u32> = cluster
            .search(q, STRATEGY, TOP_N)
            .iter()
            .map(|r| r.docid)
            .collect();
        overlap += single.iter().filter(|d| dist.contains(d)).count();
        overlap_total += single.len();
    }
    let overlap_pct = if overlap_total == 0 {
        100.0
    } else {
        100.0 * overlap as f64 / overlap_total as f64
    };

    let mut t = TablePrinter::new(&["stage", "result"]);
    t.push_row(vec![
        "generate+index (streamed)".into(),
        format!(
            "{generate_index_s:.2}s for {} postings",
            index.num_postings()
        ),
    ]);
    t.push_row(vec![
        "merge + column build".into(),
        format!("{finish_s:.2}s"),
    ]);
    t.push_row(vec![
        "posting accumulator peak".into(),
        format!(
            "{:.1} MiB ({spill_runs} spill runs)",
            peak_accum as f64 / (1 << 20) as f64
        ),
    ]);
    t.push_row(vec![
        "finish-phase peak".into(),
        format!(
            "{:.1} MiB (combined {:.1} MiB)",
            finish_peak as f64 / (1 << 20) as f64,
            combined_peak as f64 / (1 << 20) as f64
        ),
    ]);
    t.push_row(vec![
        "single-node query".into(),
        format!(
            "{} ms avg CPU, {qps:.0} q/s, p@20 {p20:.3}",
            fmt_ms(query_avg)
        ),
    ]);
    t.push_row(vec![
        format!("distributed merge ({partitions} nodes)"),
        format!(
            "{merge_avg_ms:.2} ms avg, {merged_nonempty}/{} non-empty",
            queries.len()
        ),
    ]);
    t.push_row(vec![
        "single-vs-merged overlap".into(),
        format!("{overlap_pct:.0}%"),
    ]);
    if let Some(row) = persist_row {
        t.push_row(vec!["persist + cold reopen".into(), row]);
    }
    println!("\nScale pipeline — {scale}:");
    print!("{}", t.render());

    let doc = Json::obj(vec![
        ("bench", Json::str("scale_pipeline")),
        ("scale", Json::str(scale.name())),
        ("num_docs", Json::Num(cfg.num_docs as f64)),
        ("vocab_size", Json::Num(cfg.vocab_size as f64)),
        ("partitions", Json::Num(partitions as f64)),
        ("num_postings", Json::Num(index.num_postings() as f64)),
        (
            "mem_budget_bytes",
            mem_budget.map_or(Json::Null, |b| Json::Num(b as f64)),
        ),
        ("peak_accum_bytes", Json::Num(peak_accum as f64)),
        ("finish_peak_bytes", Json::Num(finish_peak as f64)),
        ("combined_peak_bytes", Json::Num(combined_peak as f64)),
        (
            "peak_rss_bytes",
            peak_rss_bytes().map_or(Json::Null, |b| Json::Num(b as f64)),
        ),
        ("spill_runs", Json::Num(spill_runs as f64)),
        ("spill_io_bytes", Json::Num(spill_io.bytes as f64)),
        (
            "spill_io_sim_ms",
            Json::Num(spill_io.sim_time.as_secs_f64() * 1e3),
        ),
        ("generate_index_s", Json::Num(generate_index_s)),
        ("column_build_s", Json::Num(finish_s)),
        ("query_avg_ms", Json::Num(query_avg.as_secs_f64() * 1e3)),
        ("query_qps", Json::Num(qps)),
        ("p_at_20", Json::Num(p20)),
        ("merge_avg_ms", Json::Num(merge_avg_ms)),
        ("overlap_pct", Json::Num(overlap_pct)),
        ("persist", persist_json),
    ]);
    // Budgeted runs record to their own file: spill I/O inflates the build
    // timings, so overwriting the unbudgeted baseline would make successive
    // BENCH_scale.json diffs compare incompatible configurations.
    let out = if mem_budget.is_some() {
        "BENCH_scale_spill.json"
    } else {
        "BENCH_scale.json"
    };
    write_trajectory(out, &doc).unwrap_or_else(|e| panic!("write {out}: {e}"));
}
