//! **Scale trajectory** — the full pipeline (generate → index → query →
//! distributed merge) at one rung of the `--scale` ladder, with stage
//! timings recorded to `BENCH_scale.json`.
//!
//! This is the `--scale` path's end-to-end exerciser and the CI smoke job's
//! workload. Generation is streamed ([`x100_corpus::CollectionStream`]) and
//! consumed chunk-by-chunk by *both* the single-node
//! [`x100_ir::StreamingIndexBuilder`] and the per-partition builders of the
//! cluster, so the collection is generated exactly once and never resident:
//! peak memory is the indexes plus one document chunk, whatever the scale.
//!
//! Usage: `scale_pipeline [--scale tiny|small|medium|large] [--partitions N] [--queries N]`
//! (defaults: small, 8 partitions, 200 measured queries)

use std::time::Instant;

use x100_bench::{fmt_ms, take_scale_flag_or_exit, write_trajectory, Json, TablePrinter};
use x100_corpus::{precision_at_k, CollectionStream, Scale};
use x100_distributed::SimulatedCluster;
use x100_ir::{IndexConfig, QueryEngine, SearchStrategy, StreamingIndexBuilder};

const TOP_N: usize = 20;
const STRATEGY: SearchStrategy = SearchStrategy::Bm25TwoPass;

fn take_usize_flag(args: &mut Vec<String>, name: &str, default: usize) -> usize {
    let Some(pos) = args.iter().position(|a| a == name) else {
        return default;
    };
    args.remove(pos);
    if pos < args.len() {
        if let Ok(v) = args.remove(pos).parse() {
            return v;
        }
    }
    eprintln!("error: {name} expects an integer value");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_scale_flag_or_exit(&mut args).unwrap_or(Scale::Small);
    let partitions = take_usize_flag(&mut args, "--partitions", 8);
    let num_queries = take_usize_flag(&mut args, "--queries", 200);
    if partitions == 0 {
        eprintln!("error: --partitions must be at least 1");
        std::process::exit(2);
    }
    let cfg = scale.config();
    let chunk = scale.chunk_size();

    eprintln!(
        "scale={scale}: {} docs, vocab {}, chunk {chunk}, {partitions} partitions",
        cfg.num_docs, cfg.vocab_size
    );

    // Stage 1 — one streamed generation pass feeding every index builder.
    let t0 = Instant::now();
    let mut stream = CollectionStream::new(&cfg);
    let vocab = stream.vocab();
    let mut full = StreamingIndexBuilder::new(vocab.len(), &IndexConfig::compressed());
    let mut nodes: Vec<(StreamingIndexBuilder, Vec<u32>)> = (0..partitions)
        .map(|_| {
            (
                StreamingIndexBuilder::new(vocab.len(), &IndexConfig::compressed()),
                Vec::new(),
            )
        })
        .collect();
    while let Some(docs) = stream.next_chunk(chunk) {
        for doc in &docs {
            full.push_doc(&doc.name, &doc.terms, doc.len);
            let (builder, global_ids) = &mut nodes[doc.id as usize % partitions];
            builder.push_doc(&doc.name, &doc.terms, doc.len);
            global_ids.push(doc.id);
        }
    }
    let tail = stream.finish();
    let generate_index_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let index = full.finish(&vocab);
    let cluster = SimulatedCluster::from_partition_builders(nodes, &vocab);
    let finish_s = t1.elapsed().as_secs_f64();
    eprintln!(
        "indexed {} postings in {:.2}s (+{:.2}s column build)",
        index.num_postings(),
        generate_index_s,
        finish_s
    );

    // Stage 2 — single-node query throughput + effectiveness.
    let engine = QueryEngine::new(&index);
    let queries: Vec<&Vec<u32>> = tail.efficiency_log.iter().take(num_queries).collect();
    for q in &queries {
        let _ = engine.search(q, STRATEGY, TOP_N); // warm
    }
    let t2 = Instant::now();
    let mut cpu_total = std::time::Duration::ZERO;
    for q in &queries {
        cpu_total += engine.search(q, STRATEGY, TOP_N).expect("search").cpu_time;
    }
    let query_wall_s = t2.elapsed().as_secs_f64();
    let query_avg = cpu_total / queries.len().max(1) as u32;
    let qps = queries.len() as f64 / query_wall_s;

    let mut p20 = 0.0;
    for q in &tail.eval_queries {
        let ranked: Vec<u32> = engine
            .search(&q.terms, STRATEGY, TOP_N)
            .expect("search")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        p20 += precision_at_k(&ranked, &q.relevant, TOP_N);
    }
    p20 /= tail.eval_queries.len().max(1) as f64;

    // Stage 3 — distributed broadcast + merge over the same queries.
    let t3 = Instant::now();
    let mut merged_nonempty = 0usize;
    for q in &queries {
        if !cluster.search(q, STRATEGY, TOP_N).is_empty() {
            merged_nonempty += 1;
        }
    }
    let merge_wall_s = t3.elapsed().as_secs_f64();
    let merge_avg_ms = merge_wall_s * 1e3 / queries.len().max(1) as f64;

    // Sanity: the merged top-20 must strongly overlap the single-node one.
    let mut overlap = 0usize;
    let mut overlap_total = 0usize;
    for q in queries.iter().take(20) {
        let single: Vec<u32> = engine
            .search(q, STRATEGY, TOP_N)
            .expect("search")
            .results
            .iter()
            .map(|r| r.docid)
            .collect();
        let dist: Vec<u32> = cluster
            .search(q, STRATEGY, TOP_N)
            .iter()
            .map(|r| r.docid)
            .collect();
        overlap += single.iter().filter(|d| dist.contains(d)).count();
        overlap_total += single.len();
    }
    let overlap_pct = if overlap_total == 0 {
        100.0
    } else {
        100.0 * overlap as f64 / overlap_total as f64
    };

    let mut t = TablePrinter::new(&["stage", "result"]);
    t.push_row(vec![
        "generate+index (streamed)".into(),
        format!(
            "{generate_index_s:.2}s for {} postings",
            index.num_postings()
        ),
    ]);
    t.push_row(vec!["column build".into(), format!("{finish_s:.2}s")]);
    t.push_row(vec![
        "single-node query".into(),
        format!(
            "{} ms avg CPU, {qps:.0} q/s, p@20 {p20:.3}",
            fmt_ms(query_avg)
        ),
    ]);
    t.push_row(vec![
        format!("distributed merge ({partitions} nodes)"),
        format!(
            "{merge_avg_ms:.2} ms avg, {merged_nonempty}/{} non-empty",
            queries.len()
        ),
    ]);
    t.push_row(vec![
        "single-vs-merged overlap".into(),
        format!("{overlap_pct:.0}%"),
    ]);
    println!("\nScale pipeline — {scale}:");
    print!("{}", t.render());

    let doc = Json::obj(vec![
        ("bench", Json::str("scale_pipeline")),
        ("scale", Json::str(scale.name())),
        ("num_docs", Json::Num(cfg.num_docs as f64)),
        ("vocab_size", Json::Num(cfg.vocab_size as f64)),
        ("partitions", Json::Num(partitions as f64)),
        ("num_postings", Json::Num(index.num_postings() as f64)),
        ("generate_index_s", Json::Num(generate_index_s)),
        ("column_build_s", Json::Num(finish_s)),
        ("query_avg_ms", Json::Num(query_avg.as_secs_f64() * 1e3)),
        ("query_qps", Json::Num(qps)),
        ("p_at_20", Json::Num(p20)),
        ("merge_avg_ms", Json::Num(merge_avg_ms)),
        ("overlap_pct", Json::Num(overlap_pct)),
    ]);
    write_trajectory("BENCH_scale.json", &doc).expect("write BENCH_scale.json");
}
