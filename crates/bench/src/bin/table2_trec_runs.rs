//! **Table 2** — the MonetDB/X100 TREC-TB optimization ladder, plus the
//! **Table 1** context block (published TREC-TB 2005 leaders).
//!
//! Runs the seven configurations of Table 2 against the synthetic
//! TREC-TB-like collection:
//!
//! | run        | index                      | strategy                |
//! |------------|----------------------------|-------------------------|
//! | BoolAND    | raw columns                | conjunctive, unranked   |
//! | BoolOR     | raw columns                | disjunctive, unranked   |
//! | BM25       | raw columns                | computed BM25           |
//! | BM25T      | raw columns                | + two-pass              |
//! | BM25TC     | PFOR-DELTA/PFOR columns    | + compression           |
//! | BM25TCM    | + materialized f32 scores  | + materialization       |
//! | BM25TCMQ8  | + 8-bit quantized scores   | + quantization          |
//!
//! Reported per run: mean p@20 over the judged queries, mean cold-data
//! query time (measured CPU + simulated disk I/O with everything evicted
//! before each query), and mean hot-data query time (all blocks resident).
//!
//! Shape targets (paper): boolean p@20 near zero vs ~0.55 for every BM25
//! variant; hot time improves at +Two-pass and +Materialization; cold time
//! improves at +Compression and +Quantization while +Materialization makes
//! cold *worse* (32-bit floats read instead of 8.13-bit tf).
//!
//! Usage: `table2_trec_runs [--scale tiny|small|medium|large] [num_docs] [num_queries]`
//! (defaults: the medium scale's 100000 docs, 800 efficiency queries; cold
//! uses a subsample)

use std::time::Duration;

use x100_bench::{fmt_ms, reference, take_scale_flag_or_exit, TablePrinter};
use x100_corpus::{precision_at_k, CollectionConfig, Scale, SyntheticCollection};
use x100_ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};
use x100_storage::{BufferMode, DiskModel};

const TOP_N: usize = 20;
/// Queries measured in the cold condition (eviction per query is the
/// expensive part, not the queries themselves).
const COLD_SAMPLE: usize = 150;

struct RunSpec {
    name: &'static str,
    index: fn() -> IndexConfig,
    strategy: SearchStrategy,
}

const RUNS: &[RunSpec] = &[
    RunSpec {
        name: "BoolAND",
        index: IndexConfig::uncompressed,
        strategy: SearchStrategy::BoolAnd,
    },
    RunSpec {
        name: "BoolOR",
        index: IndexConfig::uncompressed,
        strategy: SearchStrategy::BoolOr,
    },
    RunSpec {
        name: "BM25",
        index: IndexConfig::uncompressed,
        strategy: SearchStrategy::Bm25,
    },
    RunSpec {
        name: "BM25T",
        index: IndexConfig::uncompressed,
        strategy: SearchStrategy::Bm25TwoPass,
    },
    RunSpec {
        name: "BM25TC",
        index: IndexConfig::compressed,
        strategy: SearchStrategy::Bm25TwoPass,
    },
    RunSpec {
        name: "BM25TCM",
        index: IndexConfig::materialized_f32,
        strategy: SearchStrategy::Bm25MaterializedTwoPass,
    },
    RunSpec {
        name: "BM25TCMQ8",
        index: IndexConfig::materialized_q8,
        strategy: SearchStrategy::Bm25MaterializedTwoPass,
    },
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_scale_flag_or_exit(&mut args);
    let mut cfg = scale
        .map(Scale::config)
        .unwrap_or_else(CollectionConfig::benchmark);
    if let Some(n) = args.first().and_then(|s| s.parse().ok()) {
        cfg.num_docs = n;
    }
    if let Some(n) = args.get(1).and_then(|s| s.parse().ok()) {
        cfg.num_efficiency_queries = n;
    } else if scale.is_none() {
        cfg.num_efficiency_queries = 800; // historical default without --scale
    }

    println!("Table 1 (context) — published TREC-TB 2005 leaders (verbatim):");
    let mut t1 = TablePrinter::new(&["Run", "p@20", "CPUs", "ms/query"]);
    for r in reference::TABLE1 {
        t1.push_row(vec![
            r.run.to_owned(),
            format!("{:.4}", r.p_at_20),
            r.cpus.to_string(),
            format!("{:.0}", r.time_per_query_ms),
        ]);
    }
    print!("{}", t1.render());

    eprintln!(
        "\ngenerating collection: {} docs, vocab {}, {} efficiency queries ...",
        cfg.num_docs, cfg.vocab_size, cfg.num_efficiency_queries
    );
    let collection = SyntheticCollection::generate(&cfg);
    eprintln!(
        "collection ready: {} term occurrences, avg doc len {:.1}",
        collection.total_occurrences(),
        collection.avg_doc_len()
    );

    let mut table = TablePrinter::new(&[
        "Run",
        "p@20",
        "cold ms",
        "hot ms",
        "2nd-pass%",
        "paper p@20",
        "paper cold",
        "paper hot",
    ]);

    for (spec, paper) in RUNS.iter().zip(reference::TABLE2) {
        eprintln!("running {} ...", spec.name);
        let index = InvertedIndex::build(&collection, &(spec.index)());

        // Boolean retrieval has no ranking cutoff: the paper's BoolAND /
        // BoolOR runs evaluate the full (un-ranked) result set, which is
        // exactly why OR costs more than AND in Table 2. Ranked runs
        // retrieve the top 20.
        let fetch_n = match spec.strategy {
            SearchStrategy::BoolAnd | SearchStrategy::BoolOr => cfg.num_docs,
            _ => TOP_N,
        };

        // Effectiveness: p@20 over the judged queries (hot).
        let engine = QueryEngine::new(&index);
        let mut p20 = 0.0;
        for q in &collection.eval_queries {
            let ranked: Vec<u32> = engine
                .search(&q.terms, spec.strategy, fetch_n)
                .expect("search")
                .results
                .iter()
                .take(TOP_N)
                .map(|r| r.docid)
                .collect();
            p20 += precision_at_k(&ranked, &q.relevant, TOP_N);
        }
        p20 /= collection.eval_queries.len() as f64;

        // Hot timing: warm pass, then measure.
        let mut second_pass = 0usize;
        for q in &collection.efficiency_log {
            let _ = engine.search(q, spec.strategy, fetch_n);
        }
        let mut hot_total = Duration::ZERO;
        for q in &collection.efficiency_log {
            let resp = engine.search(q, spec.strategy, fetch_n).expect("search");
            hot_total += resp.cpu_time;
            if resp.passes == 2 {
                second_pass += 1;
            }
        }
        let hot_avg = hot_total / collection.efficiency_log.len() as u32;

        // Cold timing: evict everything before each query; a query's cost
        // is its CPU time plus the simulated disk time it incurred.
        let cold_engine =
            QueryEngine::with_buffering(&index, DiskModel::raid12(), BufferMode::Hot, 0);
        let sample: Vec<_> = collection.efficiency_log.iter().take(COLD_SAMPLE).collect();
        let mut cold_total = Duration::ZERO;
        for q in &sample {
            cold_engine.buffers().evict_all();
            let resp = cold_engine
                .search(q, spec.strategy, fetch_n)
                .expect("search");
            cold_total += resp.cpu_time + resp.io.sim_time;
        }
        let cold_avg = cold_total / sample.len() as u32;

        table.push_row(vec![
            spec.name.to_owned(),
            format!("{p20:.4}"),
            fmt_ms(cold_avg),
            fmt_ms(hot_avg),
            format!(
                "{:.1}",
                100.0 * second_pass as f64 / collection.efficiency_log.len() as f64
            ),
            format!("{:.4}", paper.p_at_20),
            format!("{:.0}", paper.cold_ms),
            format!("{:.0}", paper.hot_ms),
        ]);
    }

    println!("\nTable 2 — MonetDB/X100 TREC-TB experiments (measured vs paper):");
    print!("{}", table.render());
    println!(
        "\nNotes: absolute times are not comparable (2006 Xeon + 426GB GOV2 vs \
         this machine + a {}-doc synthetic collection); the accountable shape \
         is the p@20 ladder and the per-step time improvements. The paper \
         reports ~15% of queries needing a second pass.",
        cfg.num_docs
    );
}
