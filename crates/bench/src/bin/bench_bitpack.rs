//! **Bitpack kernel trajectory** — unrolled per-width unpack vs the generic
//! oracle, at every code width 1–32.
//!
//! The PFOR family's LOOP1 is a bitpack unpack; at the paper's target
//! bandwidths it must run memory-bound. This harness measures, for each
//! width `b`, the decode throughput of:
//!
//! * `generic` — [`x100_compress::bitpack::unpack_generic`], the per-value
//!   shift-computing loop (the property-test oracle);
//! * `kernel` — [`x100_compress::bitpack::unpack`], the macro-generated
//!   fully unrolled 32-value-group kernel for that width.
//!
//! Outputs are asserted identical before anything is timed. Results go to
//! stdout as a table and to `BENCH_bitpack.json` as a machine-readable
//! trajectory (GB/s of decoded output, best-of-trials), so future PRs have
//! a perf baseline to diff against.
//!
//! Usage: `bench_bitpack [num_values]` (default 262144)

use std::time::Instant;

use x100_bench::{write_trajectory, Json, TablePrinter};
use x100_compress::bitpack;

/// Timing trials per width; best-of is reported to suppress scheduler noise.
const TRIALS: usize = 7;
/// Decode repetitions per trial so each sample is comfortably above timer
/// resolution even at the fastest widths.
const REPS: usize = 8;

fn throughput_gbps(n: usize, mut decode: impl FnMut()) -> f64 {
    decode(); // warm-up
    let mut best = f64::MAX;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..REPS {
            decode();
        }
        best = best.min(start.elapsed().as_secs_f64() / REPS as f64);
    }
    (n * 4) as f64 / best / 1e9
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1 << 18);

    println!("Bitpack unpack throughput: unrolled kernels vs generic oracle ({n} values)\n");
    let mut table = TablePrinter::new(&["width", "generic GB/s", "kernel GB/s", "speedup"]);
    let mut records = Vec::new();
    let mut min_speedup = f64::MAX;

    for b in 1..=bitpack::MAX_WIDTH {
        // Deterministic values exercising the full code range of the width.
        let mask = bitpack::mask(b) as u32;
        let mut x = 0x9E3779B9u32;
        let values: Vec<u32> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x & mask
            })
            .collect();
        let packed = bitpack::pack(&values, b);

        // Correctness gate: identical outputs or no measurement.
        let (mut fast, mut oracle) = (Vec::new(), Vec::new());
        bitpack::unpack(&packed, n, b, &mut fast);
        bitpack::unpack_generic(&packed, n, b, &mut oracle);
        assert_eq!(fast, oracle, "kernel and oracle disagree at width {b}");
        assert_eq!(fast, values, "roundtrip failed at width {b}");

        let mut out = Vec::new();
        let generic = throughput_gbps(n, || bitpack::unpack_generic(&packed, n, b, &mut out));
        let kernel = throughput_gbps(n, || bitpack::unpack(&packed, n, b, &mut out));
        let speedup = kernel / generic;
        min_speedup = min_speedup.min(speedup);

        table.push_row(vec![
            b.to_string(),
            format!("{generic:.2}"),
            format!("{kernel:.2}"),
            format!("{speedup:.2}x"),
        ]);
        records.push(Json::obj(vec![
            ("width", Json::Num(f64::from(b))),
            ("generic_gbps", Json::Num(generic)),
            ("kernel_gbps", Json::Num(kernel)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    print!("{}", table.render());
    println!(
        "\nMinimum speedup across widths: {min_speedup:.2}x \
         (kernels must beat the generic path everywhere)"
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("bitpack_unpack")),
        ("num_values", Json::Num(n as f64)),
        ("trials", Json::Num(TRIALS as f64)),
        ("min_speedup", Json::Num(min_speedup)),
        ("widths", Json::Arr(records)),
    ]);
    write_trajectory("BENCH_bitpack.json", &doc).expect("write BENCH_bitpack.json");
}
