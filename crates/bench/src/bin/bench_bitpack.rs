//! **Bitpack kernel trajectory** — generic oracle vs unrolled scalar
//! kernels vs the AVX2 wide path, at every code width 1–32.
//!
//! The PFOR family's LOOP1 is a bitpack unpack; at the paper's target
//! bandwidths it must run memory-bound. This harness measures, for each
//! width `b`, the decode throughput of:
//!
//! * `generic` — [`x100_compress::bitpack::unpack_generic`], the per-value
//!   shift-computing loop (the property-test oracle);
//! * `scalar` — [`x100_compress::bitpack::unpack`] with the wide path
//!   forced off: the macro-generated fully unrolled 32-value-group kernel;
//! * `wide` — the same entry point with the runtime-dispatched AVX2
//!   kernel allowed (requires `--features simd` *and* AVX2; otherwise it
//!   is the scalar path again and the two columns coincide).
//!
//! Outputs are asserted identical — across all three paths — before
//! anything is timed. Results go to stdout as a table and to
//! `BENCH_bitpack.json` as a machine-readable trajectory (GB/s of decoded
//! output, best-of-trials), so future PRs have a perf baseline to diff
//! against.
//!
//! Usage: `bench_bitpack [num_values]` (default 262144)

use std::time::Instant;

use x100_bench::{write_trajectory, Json, TablePrinter};
use x100_compress::{bitpack, simd_active, simd_force_scalar};

/// Timing trials per width; best-of is reported to suppress scheduler noise.
const TRIALS: usize = 7;
/// Decode repetitions per trial so each sample is comfortably above timer
/// resolution even at the fastest widths.
const REPS: usize = 8;

fn throughput_gbps(n: usize, mut decode: impl FnMut()) -> f64 {
    decode(); // warm-up
    let mut best = f64::MAX;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..REPS {
            decode();
        }
        best = best.min(start.elapsed().as_secs_f64() / REPS as f64);
    }
    (n * 4) as f64 / best / 1e9
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1 << 18);

    let wide_live = simd_active();
    println!(
        "Bitpack unpack throughput ({n} values); wide (AVX2) path {}\n",
        if wide_live {
            "ACTIVE"
        } else {
            "inactive - scalar fallback"
        }
    );
    let mut table = TablePrinter::new(&[
        "width",
        "generic GB/s",
        "scalar GB/s",
        "wide GB/s",
        "scalar/generic",
        "wide/scalar",
    ]);
    let mut records = Vec::new();
    let mut min_speedup = f64::MAX;
    let mut wide_wins = 0usize;

    for b in 1..=bitpack::MAX_WIDTH {
        // Deterministic values exercising the full code range of the width.
        let mask = bitpack::mask(b) as u32;
        let mut x = 0x9E3779B9u32;
        let values: Vec<u32> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x & mask
            })
            .collect();
        let packed = bitpack::pack(&values, b);

        // Correctness gate: identical outputs on all paths or no
        // measurement.
        let (mut wide_out, mut scalar_out, mut oracle) = (Vec::new(), Vec::new(), Vec::new());
        simd_force_scalar(false);
        bitpack::unpack(&packed, n, b, &mut wide_out);
        simd_force_scalar(true);
        bitpack::unpack(&packed, n, b, &mut scalar_out);
        bitpack::unpack_generic(&packed, n, b, &mut oracle);
        assert_eq!(
            wide_out, oracle,
            "wide path and oracle disagree at width {b}"
        );
        assert_eq!(
            scalar_out, oracle,
            "scalar kernel and oracle disagree at width {b}"
        );
        assert_eq!(wide_out, values, "roundtrip failed at width {b}");

        let mut out = Vec::new();
        simd_force_scalar(true);
        let generic = throughput_gbps(n, || bitpack::unpack_generic(&packed, n, b, &mut out));
        let scalar = throughput_gbps(n, || bitpack::unpack(&packed, n, b, &mut out));
        simd_force_scalar(false);
        let wide = throughput_gbps(n, || bitpack::unpack(&packed, n, b, &mut out));

        let speedup = scalar / generic;
        let wide_speedup = wide / scalar;
        min_speedup = min_speedup.min(speedup);
        if wide_speedup >= 1.2 {
            wide_wins += 1;
        }

        table.push_row(vec![
            b.to_string(),
            format!("{generic:.2}"),
            format!("{scalar:.2}"),
            format!("{wide:.2}"),
            format!("{speedup:.2}x"),
            format!("{wide_speedup:.2}x"),
        ]);
        records.push(Json::obj(vec![
            ("width", Json::Num(f64::from(b))),
            ("generic_gbps", Json::Num(generic)),
            ("kernel_gbps", Json::Num(scalar)),
            ("wide_gbps", Json::Num(wide)),
            ("speedup", Json::Num(speedup)),
            ("wide_speedup", Json::Num(wide_speedup)),
        ]));
    }

    print!("{}", table.render());
    println!(
        "\nMinimum scalar/generic speedup across widths: {min_speedup:.2}x \
         (kernels must beat the generic path everywhere)"
    );
    if wide_live {
        println!(
            "Wide kernel at least 1.2x over scalar at {wide_wins}/{} widths",
            bitpack::MAX_WIDTH
        );
    }

    let doc = Json::obj(vec![
        ("bench", Json::str("bitpack_unpack")),
        ("num_values", Json::Num(n as f64)),
        ("trials", Json::Num(TRIALS as f64)),
        ("simd_active", Json::Bool(wide_live)),
        ("min_speedup", Json::Num(min_speedup)),
        ("wide_widths_over_1_2x", Json::Num(wide_wins as f64)),
        ("widths", Json::Arr(records)),
    ]);
    write_trajectory("BENCH_bitpack.json", &doc).expect("write BENCH_bitpack.json");
}
