//! **§4 demonstration knob** — query performance as a function of the
//! execution vector size.
//!
//! The paper's demo runs "benchmarks using varying MonetDB/X100 parameters,
//! such as the vector size used in the execution pipeline". The expected
//! shape is the classic X100 curve (from the CIDR'05 paper this system
//! builds on): tiny vectors degenerate to tuple-at-a-time Volcano execution
//! (interpretation overhead dominates — every operator `next()` and
//! primitive call processes one value), huge vectors degenerate to
//! column-at-a-time MonetDB/MIL (intermediates spill out of the CPU cache).
//! The sweet spot sits around a few hundred to a few thousand values.
//!
//! Usage: `ablation_vector_size [--scale tiny|small|medium|large] [num_docs] [num_queries]`
//! (defaults: 10000 docs, 60 queries — vector size 1 is *slow*, which is
//! the point)

use std::time::{Duration, Instant};

use x100_bench::{fmt_ms, take_scale_flag_or_exit, TablePrinter};
use x100_corpus::{CollectionConfig, Scale, SyntheticCollection};
use x100_ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

const TOP_N: usize = 20;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_scale_flag_or_exit(&mut args);
    let mut cfg = scale
        .map(Scale::config)
        .unwrap_or_else(CollectionConfig::benchmark);
    if scale.is_none() {
        cfg.num_docs = 10_000; // historical default: vector size 1 is slow
    }
    if let Some(n) = args.first().and_then(|s| s.parse().ok()) {
        cfg.num_docs = n;
    }
    let num_queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60);

    eprintln!("generating {}-doc collection ...", cfg.num_docs);
    let collection = SyntheticCollection::generate(&cfg);
    let index = InvertedIndex::build(&collection, &IndexConfig::compressed());
    let queries: Vec<Vec<u32>> = collection
        .efficiency_log
        .iter()
        .take(num_queries)
        .cloned()
        .collect();

    let sizes: &[usize] = &[1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144];
    let mut table = TablePrinter::new(&["vector size", "avg query ms", "vs best"]);
    let mut results: Vec<(usize, Duration)> = Vec::new();

    for &vs in sizes {
        let engine = QueryEngine::new(&index).with_vector_size(vs);
        for q in queries.iter().take(5) {
            let _ = engine.search(q, SearchStrategy::Bm25, TOP_N); // warm
        }
        let start = Instant::now();
        for q in &queries {
            let _ = engine.search(q, SearchStrategy::Bm25, TOP_N);
        }
        let avg = start.elapsed() / queries.len() as u32;
        eprintln!("vector size {vs}: {} ms/query", fmt_ms(avg));
        results.push((vs, avg));
    }

    let best = results.iter().map(|&(_, d)| d).min().expect("non-empty");
    for &(vs, d) in &results {
        table.push_row(vec![
            vs.to_string(),
            fmt_ms(d),
            format!("{:.2}x", d.as_secs_f64() / best.as_secs_f64()),
        ]);
    }
    println!("\nVector-size ablation (BM25 top-20, hot data):");
    print!("{}", table.render());

    let at_1 = results[0].1;
    let (best_vs, _) = results.iter().min_by_key(|&&(_, d)| d).expect("non-empty");
    println!(
        "\nShape checks: tuple-at-a-time (vector size 1) is {:.0}x slower than \
         the best size ({best_vs}); the optimum sits in the in-cache range, \
         matching the X100 design argument (§2).",
        at_1.as_secs_f64() / best.as_secs_f64()
    );
}
