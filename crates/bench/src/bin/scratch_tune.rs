//! Scratch workload-tuning probe (not part of the reproduction harness).

use x100_corpus::{precision_at_k, CollectionConfig, SyntheticCollection};
use x100_ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

fn main() {
    let mut cfg = CollectionConfig::small();
    for (skip, band, exp) in [
        (15usize, 2000usize, 0.6f64),
        (10, 600, 0.6),
        (8, 300, 0.8),
        (5, 150, 1.0),
    ] {
        cfg.query_log.head_skip = skip;
        cfg.query_log.band_size = band;
        cfg.query_log.band_exponent = exp;
        let c = SyntheticCollection::generate(&cfg);
        let idx = InvertedIndex::build(&c, &IndexConfig::uncompressed());
        let engine = QueryEngine::new(&idx);
        let mut p_and = 0.0;
        let mut p_or = 0.0;
        let mut p_bm = 0.0;
        let mut and_sizes = Vec::new();
        for q in &c.eval_queries {
            let and = engine
                .search(&q.terms, SearchStrategy::BoolAnd, 100_000)
                .unwrap();
            and_sizes.push(and.results.len());
            let and_top: Vec<u32> = and.results.iter().take(20).map(|r| r.docid).collect();
            let or_top: Vec<u32> = engine
                .search(&q.terms, SearchStrategy::BoolOr, 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            let bm_top: Vec<u32> = engine
                .search(&q.terms, SearchStrategy::Bm25, 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            p_and += precision_at_k(&and_top, &q.relevant, 20);
            p_or += precision_at_k(&or_top, &q.relevant, 20);
            p_bm += precision_at_k(&bm_top, &q.relevant, 20);
        }
        let n = c.eval_queries.len() as f64;
        and_sizes.sort_unstable();
        println!(
            "skip={skip:4} band={band:5} exp={exp:.1}: p@20 AND={:.3} OR={:.3} BM25={:.3}  |AND| med={} p10={} p90={}",
            p_and / n,
            p_or / n,
            p_bm / n,
            and_sizes[and_sizes.len() / 2],
            and_sizes[and_sizes.len() / 10],
            and_sizes[9 * and_sizes.len() / 10],
        );
    }
}
