//! **Serving trajectory** — concurrent query serving through the worker
//! pool, swept over worker counts, with results pinned bit-identical to
//! sequential execution and the trajectory recorded to `BENCH_serve.json`.
//!
//! The setup reproduces the paper's serving condition at one node: a
//! materialized-score index (the Table 2 ladder's fastest run) served by a
//! pool of workers that clone one [`x100_ir::QueryExecutor`] over a shared
//! lock-striped buffer pool. The pool runs **cold** with a capacity far
//! below the index size and *enacted* miss latency
//! ([`x100_storage::BufferManager::with_simulated_miss_latency`]): every
//! miss sleeps its simulated disk cost inside the query that triggered it,
//! so added workers overlap I/O waits exactly as a real server overlaps
//! outstanding disk requests — which is where the 1 → N throughput scaling
//! comes from even on a single-core harness (on multicore, CPU overlap
//! adds on top).
//!
//! For every worker count the run asserts, in process, that each query's
//! `(docid, score)` hits are **bit-identical** to the single-threaded
//! reference — concurrency must never change results. At `--scale medium`
//! and above, the sweep additionally asserts the ≥ 2.5× closed-loop QPS
//! gain from 1 to 4 workers that the serving subsystem exists to deliver.
//! A final open-loop run at ~60 % of peak capacity records p50/p95/p99
//! under a fixed arrival rate.
//!
//! With `--segment <path>` the index is not built at all: a segment file
//! written by `scale_pipeline --persist` is reopened **cold in this
//! process** — every buffer-pool miss is then a *real* `pread` from the
//! segment (the simulated disk cost stays on top as the timing overlay),
//! so the sweep measures the true disk-backed serving path. The
//! bit-identity assertion is unchanged: a reopened segment must serve
//! exactly what the in-memory index served.
//!
//! With `--nodes N` the single executor is replaced by the **networked
//! scatter-gather path**: the collection is partitioned over N real
//! [`x100_distributed::NodeServer`]s (each a TCP endpoint, `--replicas R`
//! serving endpoints per partition) and every worker-pool query runs
//! through the [`x100_distributed::Coordinator`]'s deadline/hedge/failover
//! machinery. Bit-identity is then asserted against the in-process
//! `search_scatter` oracle, and the trajectory gains per-node tail-latency
//! attribution plus `hedged` / `failed_over` counters. `--kill-node`
//! additionally kills one replica of partition 0 *mid-sweep* — with
//! `--replicas >= 2` every query must still complete bit-identically via
//! failover.
//!
//! With `--mixed` the query log becomes the **two-class workload**: short
//! (1–2 term) and long (8-term disjunctive) Zipfian queries interleaved
//! 1:1. The run serves it with the block-max pruned strategy (when the
//! index carries block-max metadata) through the **two-lane admission
//! queue** (short queries ride the priority lane, the long lane is served
//! at least every 4th dequeue), and the report breaks latency out
//! per class — the short-query p99 is the number the two-lane queue
//! exists to protect.
//!
//! Usage: `serve_bench [--scale tiny|small|medium|large|xlarge] [--workers 1,2,4]
//! [--queries N] [--seed N] [--segment path] [--mixed]
//! [--nodes N [--replicas R] [--kill-node]]`
//! (defaults: medium, sweep 1,2,4, 500 queries, seed 0xC0FFEE, replicas 2)

use std::sync::Arc;
use std::time::{Duration, Instant};

use x100_bench::{
    take_flag_value, take_scale_flag_or_exit, take_usize_flag_or_exit, write_trajectory, Json,
    TablePrinter,
};
use x100_corpus::{CollectionStream, QueryLogConfig, QueryLogGenerator, Scale};
use x100_distributed::{
    run_closed_loop, run_open_loop, Coordinator, CoordinatorConfig, LatencyHistogram, NetCluster,
    ServeConfig, ServeReport, SimulatedCluster,
};
use x100_ir::{build_index_streaming, IndexConfig, InvertedIndex, QueryExecutor, SearchStrategy};
use x100_storage::{BufferManager, BufferMode, DiskModel};

const TOP_N: usize = 20;
/// `--mixed` class boundary: queries with at most this many terms are
/// "short" and ride the priority lane.
const SHORT_MAX_TERMS: usize = 2;
/// Term count of the long disjunctive class in `--mixed`.
const LONG_QUERY_TERMS: usize = 8;

fn take_workers_flag(args: &mut Vec<String>) -> Vec<usize> {
    let Some(spec) = take_flag_value(args, "--workers") else {
        return vec![1, 2, 4];
    };
    let parsed: Result<Vec<usize>, _> = spec.split(',').map(str::parse).collect();
    match parsed {
        Ok(list) if !list.is_empty() && list.iter().all(|&w| w > 0) => list,
        _ => {
            eprintln!("error: --workers expects a comma-separated list of positive integers");
            std::process::exit(2);
        }
    }
}

/// Total compressed bytes of the index's posting columns — what a fully
/// resident pool would hold. Uses the columns' own accounting, which for
/// disk-backed columns comes from the segment's block directory without
/// faulting a single block in.
fn index_compressed_bytes(index: &InvertedIndex) -> usize {
    ["docid", "tf", "score"]
        .iter()
        .filter_map(|name| index.td().column(name).ok())
        .map(|col| col.compressed_bytes())
        .sum()
}

/// A fresh cold executor over its own pool — each sweep point starts from
/// an identical buffer state. The disk is the paper's *per-node* storage
/// (one commodity disk, §3.4), not the 12-disk RAID: a serving node's
/// queries are I/O-bound, which is exactly the regime where worker
/// concurrency pays.
/// `sleep_io` additionally enacts each miss's simulated disk cost as a
/// real sleep on the touching thread (off for the sequential reference,
/// whose results do not depend on timing).
fn cold_executor(index: &Arc<InvertedIndex>, capacity: usize, sleep_io: bool) -> QueryExecutor {
    let mut pool = BufferManager::with_mode(DiskModel::single_disk(), BufferMode::Cold, capacity);
    if sleep_io {
        pool = pool.with_simulated_miss_latency();
    }
    QueryExecutor::with_buffer_manager(index.clone(), Arc::new(pool))
}

fn percentiles_json(report: &ServeReport) -> Vec<(&'static str, Json)> {
    let ms = |d: std::time::Duration| Json::Num(d.as_secs_f64() * 1e3);
    vec![
        ("qps", Json::Num(report.qps)),
        ("wall_s", Json::Num(report.wall.as_secs_f64())),
        ("latency_p50_ms", ms(report.latency.p50())),
        ("latency_p95_ms", ms(report.latency.p95())),
        ("latency_p99_ms", ms(report.latency.p99())),
        ("latency_mean_ms", ms(report.latency.mean())),
        ("queue_wait_p95_ms", ms(report.queue_wait.p95())),
        ("service_p50_ms", ms(report.service.p50())),
        ("io_reads", Json::Num(report.io.reads as f64)),
        ("io_bytes", Json::Num(report.io.bytes as f64)),
        (
            "io_sim_ms",
            Json::Num(report.io.sim_time.as_secs_f64() * 1e3),
        ),
    ]
}

/// The `--mixed` workload: short (1–2 term) and long (8-term disjunctive)
/// Zipfian queries interleaved 1:1 — the traffic shape where size-aware
/// two-lane admission pays, because a short lookup otherwise queues behind
/// multi-list disjunctions. Deterministic in `seed` like the plain log.
fn mixed_query_log(base: &QueryLogConfig, vocab_size: usize, seed: u64, n: usize) -> Vec<Vec<u32>> {
    let short_cfg = QueryLogConfig {
        avg_terms: 1.5,
        max_terms: SHORT_MAX_TERMS,
        ..base.clone()
    };
    let long_cfg = QueryLogConfig {
        avg_terms: LONG_QUERY_TERMS as f64,
        max_terms: LONG_QUERY_TERMS,
        ..base.clone()
    };
    let target_long = LONG_QUERY_TERMS.min(vocab_size);
    let mut short_gen = QueryLogGenerator::new(short_cfg, vocab_size, seed);
    let mut long_gen = QueryLogGenerator::new(long_cfg, vocab_size, seed ^ 0x9E37_79B9);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                short_gen.next().expect("generator is endless")
            } else {
                // The generator's geometric length draw tops out below 8;
                // merge draws until the query has its full distinct-term
                // complement.
                let mut terms = long_gen.next().expect("generator is endless");
                terms.truncate(target_long);
                while terms.len() < target_long {
                    for t in long_gen.next().expect("generator is endless") {
                        if !terms.contains(&t) {
                            terms.push(t);
                            if terms.len() == target_long {
                                break;
                            }
                        }
                    }
                }
                terms
            }
        })
        .collect()
}

/// Splits a report's end-to-end latencies by query class, `(short, long)`.
fn class_histograms(
    report: &ServeReport,
    queries: &[Vec<u32>],
) -> (LatencyHistogram, LatencyHistogram) {
    let mut short = LatencyHistogram::new();
    let mut long = LatencyHistogram::new();
    for o in &report.outcomes {
        if queries[o.id].len() <= SHORT_MAX_TERMS {
            short.record(o.latency);
        } else {
            long.record(o.latency);
        }
    }
    (short, long)
}

fn class_json(label: &'static str, h: &LatencyHistogram) -> (&'static str, Json) {
    (
        label,
        Json::obj(vec![
            ("count", Json::Num(h.count() as f64)),
            ("latency_p50_ms", Json::Num(h.p50().as_secs_f64() * 1e3)),
            ("latency_p99_ms", Json::Num(h.p99().as_secs_f64() * 1e3)),
        ]),
    )
}

/// Removes a boolean flag from `args`, returning whether it was present.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scale = take_scale_flag_or_exit(&mut args).unwrap_or(Scale::Medium);
    let workers_sweep = take_workers_flag(&mut args);
    let num_queries = take_usize_flag_or_exit(&mut args, "--queries", 500);
    let seed = take_usize_flag_or_exit(&mut args, "--seed", 0xC0FFEE) as u64;
    let segment_path = take_flag_value(&mut args, "--segment");
    let nodes_flag = take_flag_value(&mut args, "--nodes");
    let replicas = take_usize_flag_or_exit(&mut args, "--replicas", 2);
    let kill_node = take_bool_flag(&mut args, "--kill-node");
    let mixed = take_bool_flag(&mut args, "--mixed");
    if mixed && nodes_flag.is_some() {
        eprintln!("error: --mixed is a single-node workload; drop --nodes");
        std::process::exit(2);
    }
    if let Some(unknown) = args.first() {
        eprintln!("error: unknown argument {unknown:?}");
        std::process::exit(2);
    }

    if let Some(spec) = nodes_flag {
        let nodes = match spec.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: --nodes expects a positive integer");
                std::process::exit(2);
            }
        };
        if segment_path.is_some() {
            eprintln!("error: --nodes builds per-partition indexes; --segment is incompatible");
            std::process::exit(2);
        }
        if replicas == 0 || (kill_node && replicas < 2) {
            eprintln!("error: --kill-node needs --replicas >= 2 (someone must survive)");
            std::process::exit(2);
        }
        run_networked(
            scale,
            nodes,
            replicas,
            kill_node,
            &workers_sweep,
            num_queries,
            seed,
        );
        return;
    }
    if kill_node {
        eprintln!("error: --kill-node requires --nodes");
        std::process::exit(2);
    }

    let cfg = scale.config();
    eprintln!(
        "serve_bench scale={scale}: {} docs, sweep {:?} workers, {num_queries} queries",
        cfg.num_docs, workers_sweep
    );

    // Either reopen a persisted segment cold (real preads on every pool
    // miss) or build the materialized-score index in memory (streamed
    // generation).
    let t0 = Instant::now();
    let mut open_stats = None;
    let index = match &segment_path {
        Some(path) => {
            let (index, stats) = InvertedIndex::open_segment_with_stats(path)
                .unwrap_or_else(|e| panic!("open segment {path}: {e}"));
            eprintln!(
                "opened segment {path}: {} docs, {} postings, cold \
                 ({:.1} KiB resident metadata, {:.1} KiB directories)",
                index.stats().num_docs,
                index.num_postings(),
                stats.resident_meta_bytes as f64 / 1024.0,
                stats.directory_bytes as f64 / 1024.0,
            );
            open_stats = Some(stats);
            index
        }
        None => {
            let stream = CollectionStream::new(&cfg);
            let (index, _tail) =
                build_index_streaming(stream, &IndexConfig::materialized_q8(), scale.chunk_size());
            index
        }
    };
    let index = Arc::new(index);
    // Reopened segments may predate score materialization (or block-max
    // metadata); serve with the fastest strategy the index actually
    // supports. The mixed workload's long disjunctions are where dynamic
    // pruning pays, so `--mixed` picks the pruned variant when the index
    // carries block-max metadata — pruned results are bit-identical, so
    // the reference comparison below is unchanged in meaning.
    let strategy = match (
        mixed && index.block_max().is_some(),
        index.has_materialized_scores(),
    ) {
        (true, true) => SearchStrategy::Bm25MaterializedPruned,
        (true, false) => SearchStrategy::Bm25Pruned,
        (false, true) => SearchStrategy::Bm25Materialized,
        (false, false) => SearchStrategy::Bm25TwoPass,
    };
    let strategy_name = match strategy {
        SearchStrategy::Bm25Materialized => "bm25_materialized",
        SearchStrategy::Bm25MaterializedPruned => "bm25_materialized_pruned",
        SearchStrategy::Bm25Pruned => "bm25_pruned",
        _ => "bm25_two_pass",
    };
    let build_s = t0.elapsed().as_secs_f64();
    let compressed = index_compressed_bytes(&index);
    // A deliberately small pool (1/16 of the index, ≥ 1 MiB) keeps the
    // serving runs in the cold, I/O-bound regime at every sweep point.
    let pool_capacity = (compressed / 16).max(1 << 20);
    eprintln!(
        "indexed {} postings in {build_s:.2}s; columns {:.1} MiB compressed, pool {:.1} MiB",
        index.num_postings(),
        compressed as f64 / (1 << 20) as f64,
        pool_capacity as f64 / (1 << 20) as f64,
    );

    // One reproducible Zipfian query log for every run. In segment mode
    // the vocabulary comes from the reopened index (the segment may have
    // been written at a different scale than `--scale` implies).
    let vocab_size = if segment_path.is_some() {
        index.num_terms()
    } else {
        cfg.vocab_size
    };
    let queries: Vec<Vec<u32>> = if mixed {
        mixed_query_log(&cfg.query_log, vocab_size, seed, num_queries)
    } else {
        QueryLogGenerator::new(cfg.query_log.clone(), vocab_size, seed)
            .take(num_queries)
            .collect()
    };

    // Single-threaded reference: the ground truth every concurrent run
    // must reproduce bit-identically.
    let reference_exec = cold_executor(&index, pool_capacity, false);
    let reference: Vec<Vec<(u32, f32)>> = queries
        .iter()
        .map(|q| {
            reference_exec
                .search(q, strategy, TOP_N)
                .expect("reference search")
                .results
                .iter()
                .map(|r| (r.docid, r.score))
                .collect()
        })
        .collect();

    let mut table = if mixed {
        TablePrinter::new(&[
            "workers",
            "qps",
            "short p50 ms",
            "short p99 ms",
            "long p50 ms",
            "long p99 ms",
            "io sim ms",
        ])
    } else {
        TablePrinter::new(&[
            "workers",
            "qps",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "queue p95 ms",
            "io sim ms",
        ])
    };
    let mut sweep_json = Vec::new();
    let mut qps_by_workers: Vec<(usize, f64)> = Vec::new();
    for &workers in &workers_sweep {
        let exec = cold_executor(&index, pool_capacity, true);
        let mut run_cfg = ServeConfig::new(workers);
        run_cfg.queue_depth = workers * 2;
        run_cfg.strategy = strategy;
        run_cfg.top_n = TOP_N;
        if mixed {
            run_cfg.short_query_max_terms = Some(SHORT_MAX_TERMS);
        }
        let report = run_closed_loop(&exec, &run_cfg, &queries);
        assert_eq!(report.completed, queries.len());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(
                outcome.hits, reference[i],
                "concurrent hits diverged from sequential on query {i} at {workers} workers"
            );
        }
        eprintln!(
            "{workers} workers: {:.1} qps, p99 {:.1} ms (bit-identical to sequential)",
            report.qps,
            report.latency.p99().as_secs_f64() * 1e3
        );
        let mut entry = vec![("workers", Json::Num(workers as f64))];
        entry.extend(percentiles_json(&report));
        if mixed {
            let (short_h, long_h) = class_histograms(&report, &queries);
            table.push_row(vec![
                workers.to_string(),
                format!("{:.1}", report.qps),
                format!("{:.2}", short_h.p50().as_secs_f64() * 1e3),
                format!("{:.2}", short_h.p99().as_secs_f64() * 1e3),
                format!("{:.2}", long_h.p50().as_secs_f64() * 1e3),
                format!("{:.2}", long_h.p99().as_secs_f64() * 1e3),
                format!("{:.0}", report.io.sim_time.as_secs_f64() * 1e3),
            ]);
            entry.push(class_json("short", &short_h));
            entry.push(class_json("long", &long_h));
        } else {
            table.push_row(vec![
                workers.to_string(),
                format!("{:.1}", report.qps),
                format!("{:.2}", report.latency.p50().as_secs_f64() * 1e3),
                format!("{:.2}", report.latency.p95().as_secs_f64() * 1e3),
                format!("{:.2}", report.latency.p99().as_secs_f64() * 1e3),
                format!("{:.2}", report.queue_wait.p95().as_secs_f64() * 1e3),
                format!("{:.0}", report.io.sim_time.as_secs_f64() * 1e3),
            ]);
        }
        entry.push(("identical_to_sequential", Json::Bool(true)));
        sweep_json.push(Json::obj(entry));
        qps_by_workers.push((workers, report.qps));
    }

    // The serving subsystem's reason to exist: worker scaling. Asserted at
    // the scales where the cold pool makes queries I/O-bound (tiny/small
    // indexes fit the pool floor, so they stay CPU-bound and are exempt).
    let qps_at = |w: usize| {
        qps_by_workers
            .iter()
            .find(|&&(ws, _)| ws == w)
            .map(|&(_, q)| q)
    };
    let scaling_1_to_4 = match (qps_at(1), qps_at(4)) {
        (Some(one), Some(four)) if one > 0.0 => Some(four / one),
        _ => None,
    };
    if let Some(ratio) = scaling_1_to_4 {
        eprintln!("1 -> 4 worker scaling: {ratio:.2}x");
        // In segment mode real pread times ride on top of the simulated
        // sleeps, so the floor is only asserted for the purely simulated
        // in-memory runs where timing is deterministic.
        if scale >= Scale::Medium && segment_path.is_none() {
            assert!(
                ratio >= 2.5,
                "1 -> 4 workers yielded only {ratio:.2}x QPS (expected >= 2.5x)"
            );
        }
    }

    // Open-loop at ~60 % of the sweep's best capacity: latency at a fixed
    // arrival rate, measured from the schedule (no coordinated omission).
    let best_qps = qps_by_workers.iter().map(|&(_, q)| q).fold(0.0, f64::max);
    let open_workers = *workers_sweep.iter().max().expect("non-empty sweep");
    let open_rate = best_qps * 0.6;
    let open_json = if open_rate > 0.0 {
        let exec = cold_executor(&index, pool_capacity, true);
        let mut run_cfg = ServeConfig::new(open_workers);
        run_cfg.queue_depth = open_workers * 2;
        run_cfg.strategy = strategy;
        run_cfg.top_n = TOP_N;
        if mixed {
            run_cfg.short_query_max_terms = Some(SHORT_MAX_TERMS);
        }
        let report = run_open_loop(&exec, &run_cfg, &queries, open_rate);
        eprintln!(
            "open loop at {open_rate:.0} q/s, {open_workers} workers: p50 {:.1} ms, p99 {:.1} ms",
            report.latency.p50().as_secs_f64() * 1e3,
            report.latency.p99().as_secs_f64() * 1e3,
        );
        let mut entry = vec![
            ("workers", Json::Num(open_workers as f64)),
            ("arrival_rate_qps", Json::Num(open_rate)),
        ];
        entry.extend(percentiles_json(&report));
        if mixed {
            let (short_h, long_h) = class_histograms(&report, &queries);
            entry.push(class_json("short", &short_h));
            entry.push(class_json("long", &long_h));
        }
        Json::obj(entry)
    } else {
        Json::Null
    };

    let mode = if segment_path.is_some() {
        "reopened segment (real cold-cache I/O)"
    } else {
        "in-memory build"
    };
    let workload = if mixed {
        ", mixed short/long workload (two-lane admission)"
    } else {
        ""
    };
    println!("\nServe bench — {scale}, strategy {strategy_name}, {mode}{workload}:");
    print!("{}", table.render());

    let doc = Json::obj(vec![
        ("bench", Json::str("serve_bench")),
        ("scale", Json::str(scale.name())),
        ("mixed", Json::Bool(mixed)),
        (
            "short_lane_max_terms",
            if mixed {
                Json::Num(SHORT_MAX_TERMS as f64)
            } else {
                Json::Null
            },
        ),
        ("num_docs", Json::Num(cfg.num_docs as f64)),
        ("vocab_size", Json::Num(vocab_size as f64)),
        ("num_queries", Json::Num(num_queries as f64)),
        ("seed", Json::Num(seed as f64)),
        ("strategy", Json::str(strategy_name)),
        (
            "segment",
            segment_path.as_deref().map_or(Json::Null, Json::str),
        ),
        ("real_cold_cache_io", Json::Bool(segment_path.is_some())),
        (
            "open_resident_meta_bytes",
            open_stats.map_or(Json::Null, |s| Json::Num(s.resident_meta_bytes as f64)),
        ),
        (
            "open_directory_bytes",
            open_stats.map_or(Json::Null, |s| Json::Num(s.directory_bytes as f64)),
        ),
        ("simulated_miss_latency", Json::Bool(true)),
        ("index_compressed_bytes", Json::Num(compressed as f64)),
        ("pool_capacity_bytes", Json::Num(pool_capacity as f64)),
        ("build_s", Json::Num(build_s)),
        ("closed_loop", Json::Arr(sweep_json)),
        (
            "scaling_1_to_4",
            scaling_1_to_4.map_or(Json::Null, Json::Num),
        ),
        ("open_loop", open_json),
    ]);
    write_trajectory("BENCH_serve.json", &doc)
        .unwrap_or_else(|e| panic!("write BENCH_serve.json: {e}"));
}

/// The `--nodes` mode: the worker pool serves every query through the
/// networked [`Coordinator`] over real per-partition TCP endpoints, with
/// the in-process `search_scatter` as the bit-identity oracle and the
/// coordinator's hedge/failover counters recorded per node.
fn run_networked(
    scale: Scale,
    nodes: usize,
    replicas: usize,
    kill_node: bool,
    workers_sweep: &[usize],
    num_queries: usize,
    seed: u64,
) {
    let cfg = scale.config();
    eprintln!(
        "serve_bench scale={scale}, networked: {nodes} nodes x {replicas} replicas, \
         sweep {workers_sweep:?} workers, {num_queries} queries{}",
        if kill_node {
            ", killing one replica mid-sweep"
        } else {
            ""
        }
    );

    let t0 = Instant::now();
    let stream = CollectionStream::new(&cfg);
    let (cluster, _tail) = SimulatedCluster::build_streaming(
        stream,
        nodes,
        &IndexConfig::materialized_q8(),
        scale.chunk_size(),
    );
    let build_s = t0.elapsed().as_secs_f64();
    let strategy = SearchStrategy::Bm25Materialized;
    eprintln!("built {nodes} partition indexes in {build_s:.2}s");

    let queries: Vec<Vec<u32>> =
        QueryLogGenerator::new(cfg.query_log.clone(), cfg.vocab_size, seed)
            .take(num_queries)
            .collect();

    // The differential oracle: in-process scatter-gather over the same
    // nodes. Networked serving must reproduce these hits bit-for-bit.
    let reference: Vec<Vec<(u32, f32)>> = queries
        .iter()
        .map(|q| {
            let resp = cluster.search_scatter(q, strategy, TOP_N);
            assert!(resp.failures.is_empty(), "oracle scatter lost a node");
            resp.results.iter().map(|r| (r.docid, r.score)).collect()
        })
        .collect();

    let net = Arc::new(
        NetCluster::serve(
            &cluster,
            replicas,
            CoordinatorConfig {
                // Generous per-partition budget: CI machines stall; a
                // deadline miss here would abort the bench, not a query.
                deadline: Duration::from_secs(30),
                ..CoordinatorConfig::default()
            },
        )
        .expect("spawn node servers"),
    );
    let coordinator: Arc<Coordinator> = Arc::clone(net.coordinator());

    let mut table = TablePrinter::new(&[
        "workers",
        "qps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "hedged",
        "failed over",
    ]);
    let mut sweep_json = Vec::new();
    let mut qps_by_workers: Vec<(usize, f64)> = Vec::new();
    let mut kill_pending = kill_node;
    for &workers in workers_sweep {
        let mut run_cfg = ServeConfig::new(workers);
        run_cfg.queue_depth = workers * 2;
        run_cfg.strategy = strategy;
        run_cfg.top_n = TOP_N;
        let before = coordinator.stats();
        // The injected fault: one replica of partition 0 dies mid-run of
        // the first sweep point, while queries are in flight.
        let killer = if kill_pending {
            kill_pending = false;
            let net = Arc::clone(&net);
            Some(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                eprintln!("-- killing partition 0 replica 0 mid-run --");
                net.kill_server(0, 0);
            }))
        } else {
            None
        };
        let report = run_closed_loop(&coordinator, &run_cfg, &queries);
        if let Some(h) = killer {
            let _ = h.join();
        }
        assert_eq!(report.completed, queries.len());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(
                outcome.hits, reference[i],
                "networked hits diverged from the in-process scatter on query {i} \
                 at {workers} workers"
            );
        }
        let after = coordinator.stats();
        assert_eq!(
            after.unavailable, 0,
            "no query may lose a partition: replication must absorb every fault"
        );
        let hedged = after.hedged - before.hedged;
        let failed_over = after.failed_over - before.failed_over;
        eprintln!(
            "{workers} workers: {:.1} qps, p99 {:.1} ms, {hedged} hedged, \
             {failed_over} failed over (bit-identical to in-process scatter)",
            report.qps,
            report.latency.p99().as_secs_f64() * 1e3
        );
        table.push_row(vec![
            workers.to_string(),
            format!("{:.1}", report.qps),
            format!("{:.2}", report.latency.p50().as_secs_f64() * 1e3),
            format!("{:.2}", report.latency.p95().as_secs_f64() * 1e3),
            format!("{:.2}", report.latency.p99().as_secs_f64() * 1e3),
            hedged.to_string(),
            failed_over.to_string(),
        ]);
        let mut entry = vec![("workers", Json::Num(workers as f64))];
        entry.extend(percentiles_json(&report));
        entry.push(("hedged", Json::Num(hedged as f64)));
        entry.push(("failed_over", Json::Num(failed_over as f64)));
        entry.push(("identical_to_scatter", Json::Bool(true)));
        sweep_json.push(Json::obj(entry));
        qps_by_workers.push((workers, report.qps));
    }

    // With an injected kill the coordinator must both have taken the
    // failover path and still be serving bit-identically afterwards.
    if kill_node {
        for (i, q) in queries.iter().take(50).enumerate() {
            let outcome = coordinator
                .search(q, strategy, TOP_N)
                .expect("post-kill query must be served by the surviving replica");
            assert_eq!(
                outcome.hits, reference[i],
                "post-kill networked hits diverged on query {i}"
            );
        }
        let stats = coordinator.stats();
        assert!(
            stats.hedged + stats.failed_over >= 1,
            "the killed replica must be visible as hedges or failovers"
        );
        assert!(
            stats.partitions[0].replicas_down[0],
            "the killed replica must be marked down"
        );
        eprintln!(
            "post-kill: 50/50 queries bit-identical via failover ({} hedged, {} failed over)",
            stats.hedged, stats.failed_over
        );
    }

    // Per-node tail-latency attribution: which node gates the gather.
    let stats = coordinator.stats();
    let mut node_table = TablePrinter::new(&[
        "node",
        "requests",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "hedged",
        "failed over",
        "served/replica",
    ]);
    let mut per_node_json = Vec::new();
    for p in &stats.partitions {
        let served: Vec<String> = p.served_by_replica.iter().map(u64::to_string).collect();
        node_table.push_row(vec![
            p.partition.to_string(),
            p.requests.to_string(),
            format!("{:.2}", p.latency_p50.as_secs_f64() * 1e3),
            format!("{:.2}", p.latency_p95.as_secs_f64() * 1e3),
            format!("{:.2}", p.latency_p99.as_secs_f64() * 1e3),
            p.hedged.to_string(),
            p.failed_over.to_string(),
            served.join("/"),
        ]);
        per_node_json.push(Json::obj(vec![
            ("node", Json::Num(p.partition as f64)),
            ("requests", Json::Num(p.requests as f64)),
            (
                "latency_p50_ms",
                Json::Num(p.latency_p50.as_secs_f64() * 1e3),
            ),
            (
                "latency_p95_ms",
                Json::Num(p.latency_p95.as_secs_f64() * 1e3),
            ),
            (
                "latency_p99_ms",
                Json::Num(p.latency_p99.as_secs_f64() * 1e3),
            ),
            ("hedged", Json::Num(p.hedged as f64)),
            ("failed_over", Json::Num(p.failed_over as f64)),
            ("unavailable", Json::Num(p.unavailable as f64)),
            (
                "served_by_replica",
                Json::Arr(
                    p.served_by_replica
                        .iter()
                        .map(|&s| Json::Num(s as f64))
                        .collect(),
                ),
            ),
            (
                "replicas_down",
                Json::Arr(p.replicas_down.iter().map(|&d| Json::Bool(d)).collect()),
            ),
        ]));
    }

    println!(
        "\nServe bench — {scale}, networked {nodes} nodes x {replicas} replicas, \
         strategy bm25_materialized{}:",
        if kill_node {
            ", one replica killed"
        } else {
            ""
        }
    );
    print!("{}", table.render());
    println!("\nPer-node attribution:");
    print!("{}", node_table.render());

    let qps_at = |w: usize| {
        qps_by_workers
            .iter()
            .find(|&&(ws, _)| ws == w)
            .map(|&(_, q)| q)
    };
    let scaling_1_to_4 = match (qps_at(1), qps_at(4)) {
        (Some(one), Some(four)) if one > 0.0 => Some(four / one),
        _ => None,
    };

    let doc = Json::obj(vec![
        ("bench", Json::str("serve_bench")),
        ("mode", Json::str("networked")),
        ("scale", Json::str(scale.name())),
        ("nodes", Json::Num(nodes as f64)),
        ("replicas", Json::Num(replicas as f64)),
        ("kill_node", Json::Bool(kill_node)),
        ("num_docs", Json::Num(cfg.num_docs as f64)),
        ("vocab_size", Json::Num(cfg.vocab_size as f64)),
        ("num_queries", Json::Num(num_queries as f64)),
        ("seed", Json::Num(seed as f64)),
        ("strategy", Json::str("bm25_materialized")),
        ("build_s", Json::Num(build_s)),
        ("closed_loop", Json::Arr(sweep_json)),
        ("per_node", Json::Arr(per_node_json)),
        ("hedged", Json::Num(stats.hedged as f64)),
        ("failed_over", Json::Num(stats.failed_over as f64)),
        ("unavailable", Json::Num(stats.unavailable as f64)),
        (
            "scaling_1_to_4",
            scaling_1_to_4.map_or(Json::Null, Json::Num),
        ),
    ]);
    write_trajectory("BENCH_serve.json", &doc)
        .unwrap_or_else(|e| panic!("write BENCH_serve.json: {e}"));
}
