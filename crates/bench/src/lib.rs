//! Shared support for the table/figure reproduction harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index); this library holds what they share:
//! the paper's published numbers ([`mod@reference`]), `--scale` flag
//! handling ([`mod@cli`]), `BENCH_*.json` trajectory emission
//! ([`mod@json`]), and small formatting helpers.

pub mod alloc;
pub mod cli;
pub mod json;
pub mod reference;

pub use cli::{
    parse_mem_size, take_flag_value, take_mem_budget_flag_or_exit, take_scale_flag,
    take_scale_flag_or_exit, take_usize_flag_or_exit,
};
pub use json::{write_trajectory, Json};

use std::time::Duration;

/// The process's peak resident set size (`VmHWM`) in bytes, when the
/// platform exposes it (`/proc/self/status` on Linux); `None` elsewhere.
/// Recorded into `BENCH_scale.json` so trajectory runs can watch real
/// memory alongside the builders' own accounting.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Formats a duration as fractional milliseconds, Table-2 style.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// A Markdown-ish table printer: pads cells, separates header.
pub struct TablePrinter {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Starts a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        let mut t = TablePrinter {
            widths: header.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.push_row(header.iter().map(|s| (*s).to_owned()).collect());
        t
    }

    /// Adds a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.widths.len(), "ragged table row");
        for (w, cell) in self.widths.iter_mut().zip(&row) {
            *w = (*w).max(cell.len());
        }
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                out.push_str(&sep.join("  "));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ms_two_decimals() {
        assert_eq!(fmt_ms(Duration::from_micros(1234)), "1.23");
        assert_eq!(fmt_ms(Duration::ZERO), "0.00");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TablePrinter::new(&["run", "p@20"]);
        t.push_row(vec!["BM25".into(), "0.546".into()]);
        let s = t.render();
        assert!(s.contains("run"));
        assert!(s.contains("----"));
        assert!(s.contains("BM25"));
    }

    #[test]
    fn peak_rss_is_plausible_when_available() {
        if let Some(bytes) = peak_rss_bytes() {
            // A running test process has touched at least a megabyte and
            // (sanity bound) less than a terabyte.
            assert!(bytes > 1 << 20, "peak RSS {bytes} implausibly small");
            assert!(bytes < 1 << 40, "peak RSS {bytes} implausibly large");
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = TablePrinter::new(&["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }
}
