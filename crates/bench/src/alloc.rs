//! An allocation-counting global allocator for pinning allocation-free
//! hot paths.
//!
//! The fused query path (`x100_ir::hot`) promises *zero heap allocations
//! per query* at steady state. Promises like that rot silently — one
//! `collect()` added in review and the property is gone with no test
//! noticing. This module makes the property testable: install
//! [`CountingAlloc`] as the `#[global_allocator]` of a test binary and
//! wrap the section under test in [`assert_no_allocs`].
//!
//! Counters are **per thread** (const-initialized `Cell`s, so reading
//! them never allocates or locks): concurrent tests and worker threads
//! count independently, and a scatter-gather worker can assert its own
//! hot loop clean while other threads allocate freely.
//!
//! ```ignore
//! use x100_bench::alloc::{assert_no_allocs, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//!
//! let hits = assert_no_allocs("warm query", || {
//!     executor.search_hits_into(&terms, strategy, 10, &mut out)
//! });
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-backed allocator that counts this thread's allocations,
/// reallocations (counted as allocations) and deallocations. Install as
/// `#[global_allocator]` in the binary under test.
pub struct CountingAlloc;

// Safety: defers the actual memory management to `System` verbatim; the
// counters are plain per-thread cells with no destructors, so bumping
// them from inside the allocator cannot recurse into allocation.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.with(|c| c.set(c.get() + 1));
        System.dealloc(ptr, layout)
    }
}

/// This thread's `(allocations, deallocations)` counted so far. Zero
/// forever unless the binary installed [`CountingAlloc`].
pub fn thread_alloc_counts() -> (u64, u64) {
    (ALLOCS.with(Cell::get), DEALLOCS.with(Cell::get))
}

/// Runs `f` and returns `(result, allocations, deallocations)` charged to
/// this thread while it ran.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    let (a0, d0) = thread_alloc_counts();
    let result = f();
    let (a1, d1) = thread_alloc_counts();
    (result, a1 - a0, d1 - d0)
}

/// Runs `f`, asserting it performs **zero** heap allocations and zero
/// deallocations on this thread.
///
/// # Panics
/// Panics (with `label`) if `f` touched the allocator. Meaningful only in
/// binaries that installed [`CountingAlloc`] — pair with a sanity check
/// that the counters move at all (see `tests/hot_path_allocs.rs`).
pub fn assert_no_allocs<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let (result, allocs, deallocs) = count_allocs(f);
    assert!(
        allocs == 0 && deallocs == 0,
        "{label}: expected an allocation-free hot path, \
         counted {allocs} allocations and {deallocs} deallocations"
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is NOT installed in this test binary, so the counters
    // never move — which is itself the documented behaviour.
    #[test]
    fn counters_are_inert_without_installation() {
        let (_, a, d) = count_allocs(|| std::hint::black_box(vec![1u8, 2, 3]));
        assert_eq!((a, d), (0, 0));
        assert_no_allocs("inert", || std::hint::black_box(Box::new(7)));
    }
}
