//! The paper's published numbers, kept verbatim for side-by-side output.
//!
//! Absolute times are 2006-hardware artifacts and are *not* expected to
//! match; they are printed next to our measurements so the reader can check
//! the shapes (orderings, ratios, crossovers) that the reproduction is
//! accountable for.

/// One row of Table 1 — "Top results for TREC-TB 2005".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    pub run: &'static str,
    pub p_at_20: f64,
    pub cpus: u32,
    pub time_per_query_ms: f64,
}

/// Table 1 verbatim.
pub const TABLE1: &[Table1Row] = &[
    Table1Row {
        run: "MU05TBy3",
        p_at_20: 0.5550,
        cpus: 8,
        time_per_query_ms: 24.0,
    },
    Table1Row {
        run: "uwmtEwteD10",
        p_at_20: 0.3900,
        cpus: 2,
        time_per_query_ms: 27.0,
    },
    Table1Row {
        run: "MU05TBy1",
        p_at_20: 0.5620,
        cpus: 8,
        time_per_query_ms: 42.0,
    },
    Table1Row {
        run: "zetdist",
        p_at_20: 0.5300,
        cpus: 8,
        time_per_query_ms: 58.0,
    },
    Table1Row {
        run: "pisaEff4",
        p_at_20: 0.3420,
        cpus: 23,
        time_per_query_ms: 143.0,
    },
];

/// One row of Table 2 — "MonetDB/X100 TREC-TB Experiments".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    pub run: &'static str,
    pub p_at_20: f64,
    pub cold_ms: f64,
    pub hot_ms: f64,
}

/// Table 2 verbatim.
pub const TABLE2: &[Table2Row] = &[
    Table2Row {
        run: "BoolAND",
        p_at_20: 0.0130,
        cold_ms: 76.0,
        hot_ms: 12.0,
    },
    Table2Row {
        run: "BoolOR",
        p_at_20: 0.0000,
        cold_ms: 133.0,
        hot_ms: 80.0,
    },
    Table2Row {
        run: "BM25",
        p_at_20: 0.5460,
        cold_ms: 440.0,
        hot_ms: 342.0,
    },
    Table2Row {
        run: "BM25T",
        p_at_20: 0.5470,
        cold_ms: 198.0,
        hot_ms: 72.0,
    },
    Table2Row {
        run: "BM25TC",
        p_at_20: 0.5470,
        cold_ms: 158.0,
        hot_ms: 73.0,
    },
    Table2Row {
        run: "BM25TCM",
        p_at_20: 0.5470,
        cold_ms: 155.0,
        hot_ms: 29.0,
    },
    Table2Row {
        run: "BM25TCMQ8",
        p_at_20: 0.5490,
        cold_ms: 118.0,
        hot_ms: 28.0,
    },
];

/// One row of Table 3's upper sections (server scaling, 1 stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3ServersRow {
    pub servers: usize,
    pub avg_query_ms: f64,
    pub server_min_ms: f64,
    pub server_avg_ms: f64,
    pub server_max_ms: f64,
}

/// Table 3, "Full TREC-TB run (hot data)" + "Using less servers" verbatim.
/// The sequential (unpartitioned) run took 23.1 ms/query.
pub const TABLE3_SEQUENTIAL_MS: f64 = 23.1;

/// Server-scaling rows of Table 3.
pub const TABLE3_SERVERS: &[Table3ServersRow] = &[
    Table3ServersRow {
        servers: 8,
        avg_query_ms: 11.26,
        server_min_ms: 5.50,
        server_avg_ms: 6.39,
        server_max_ms: 11.00,
    },
    Table3ServersRow {
        servers: 4,
        avg_query_ms: 9.21,
        server_min_ms: 5.92,
        server_avg_ms: 6.78,
        server_max_ms: 9.06,
    },
    Table3ServersRow {
        servers: 2,
        avg_query_ms: 7.30,
        server_min_ms: 6.46,
        server_avg_ms: 6.83,
        server_max_ms: 7.20,
    },
    Table3ServersRow {
        servers: 1,
        avg_query_ms: 7.41,
        server_min_ms: 7.34,
        server_avg_ms: 7.34,
        server_max_ms: 7.34,
    },
];

/// One row of Table 3's stream-concurrency section (8 servers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3StreamsRow {
    pub streams: usize,
    pub avg_query_ms: f64,
    pub amortized_ms: f64,
    pub server_min_ms: f64,
    pub server_avg_ms: f64,
    pub server_max_ms: f64,
}

/// Stream-concurrency rows of Table 3 verbatim.
pub const TABLE3_STREAMS: &[Table3StreamsRow] = &[
    Table3StreamsRow {
        streams: 1,
        avg_query_ms: 11.24,
        amortized_ms: 11.26,
        server_min_ms: 5.50,
        server_avg_ms: 6.39,
        server_max_ms: 11.00,
    },
    Table3StreamsRow {
        streams: 2,
        avg_query_ms: 9.61,
        amortized_ms: 4.86,
        server_min_ms: 5.56,
        server_avg_ms: 6.92,
        server_max_ms: 9.36,
    },
    Table3StreamsRow {
        streams: 4,
        avg_query_ms: 14.30,
        amortized_ms: 3.64,
        server_min_ms: 5.81,
        server_avg_ms: 8.56,
        server_max_ms: 13.99,
    },
    Table3StreamsRow {
        streams: 8,
        avg_query_ms: 25.46,
        amortized_ms: 3.26,
        server_min_ms: 6.21,
        server_avg_ms: 12.28,
        server_max_ms: 25.07,
    },
];

/// §3.3's compression accounting: bits per tuple before/after.
pub const DOCID_BITS_RAW: f64 = 32.0;
/// Compressed docid bits/tuple (PFOR-DELTA, 8-bit codes) from §3.3.
pub const DOCID_BITS_COMPRESSED: f64 = 11.98;
/// Compressed tf bits/tuple (PFOR, 8-bit codes) from §3.3.
pub const TF_BITS_COMPRESSED: f64 = 8.13;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ladder_is_monotone_where_the_paper_says_so() {
        // Sanity on the transcription: hot time improves at +Two-pass and
        // +Materialization; cold improves at +Compression and +Quant.
        let t = TABLE2;
        assert!(t[3].hot_ms < t[2].hot_ms); // BM25T < BM25
        assert!(t[4].cold_ms < t[3].cold_ms); // BM25TC < BM25T
        assert!(t[5].hot_ms < t[4].hot_ms); // BM25TCM < BM25TC
        assert!(t[6].cold_ms < t[5].cold_ms); // BM25TCMQ8 < BM25TCM
    }

    #[test]
    fn table3_amortized_improves_with_streams() {
        assert!(TABLE3_STREAMS
            .windows(2)
            .all(|w| w[1].amortized_ms < w[0].amortized_ms));
    }

    #[test]
    fn tables_are_fully_transcribed() {
        assert_eq!(TABLE1.len(), 5);
        assert_eq!(TABLE2.len(), 7);
        assert_eq!(TABLE3_SERVERS.len(), 4);
        assert_eq!(TABLE3_STREAMS.len(), 4);
    }
}
