//! Minimal JSON emission for the `BENCH_*.json` trajectory files.
//!
//! The offline environment has no serde, and the trajectories only need
//! writing, never parsing — so this is a tiny value tree with a renderer.
//! Perf-tracking files (`BENCH_bitpack.json`, `BENCH_scale.json`) are
//! written to the working directory so successive runs can be diffed or
//! collected by CI artifacts.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => render_seq(out, indent, '[', ']', items.len(), |out, i| {
                items[i].render_into(out, indent + 1);
            }),
            Json::Obj(pairs) => render_seq(out, indent, '{', '}', pairs.len(), |out, i| {
                Json::Str(pairs[i].0.clone()).render_into(out, 0);
                out.push_str(": ");
                pairs[i].1.render_into(out, indent + 1);
            }),
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        out.push_str(&"  ".repeat(indent + 1));
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    out.push_str(&"  ".repeat(indent));
    out.push(close);
}

/// Writes a trajectory file and tells the user where it went.
pub fn write_trajectory(path: impl AsRef<Path>, value: &Json) -> io::Result<()> {
    let path = path.as_ref();
    std::fs::write(path, value.render())?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj(vec![
            ("width", Json::Num(8.0)),
            ("speedup", Json::Num(2.5)),
            ("name", Json::str("kernel")),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"width\": 8"));
        assert!(s.contains("\"speedup\": 2.5"));
        assert!(s.contains("\"tags\": [\n"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(100000.0).render(), "100000\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }
}
