//! Shared command-line handling for the figure/table binaries.
//!
//! Every collection-driven bin accepts `--scale tiny|small|medium|large`
//! (see [`x100_corpus::Scale`]) ahead of its positional arguments, so the
//! whole harness can be pointed at one rung of the scale ladder:
//!
//! ```text
//! cargo run --release -p x100-bench --bin table2_trec_runs -- --scale medium
//! ```

use x100_corpus::scale::ParseScaleError;
use x100_corpus::Scale;

/// Extracts a `--scale NAME` or `--scale=NAME` flag from `args` (removing
/// the consumed elements so positional parsing is unaffected).
///
/// Returns `Ok(None)` when the flag is absent, and an error when the flag
/// has a bad value or no value at all.
pub fn take_scale_flag(args: &mut Vec<String>) -> Result<Option<Scale>, ParseScaleError> {
    let Some(pos) = args
        .iter()
        .position(|a| a == "--scale" || a.starts_with("--scale="))
    else {
        return Ok(None);
    };
    let raw = if let Some(inline) = args[pos].strip_prefix("--scale=") {
        let value = inline.to_owned();
        args.remove(pos);
        value
    } else {
        args.remove(pos);
        if pos < args.len() {
            args.remove(pos)
        } else {
            String::new() // missing value parses to a helpful error
        }
    };
    raw.parse::<Scale>().map(Some)
}

/// [`take_scale_flag`], exiting with a usage message on a bad value — the
/// behaviour every bin wants.
pub fn take_scale_flag_or_exit(args: &mut Vec<String>) -> Option<Scale> {
    match take_scale_flag(args) {
        Ok(scale) => scale,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        let mut a = args(&["50000", "400"]);
        assert_eq!(take_scale_flag(&mut a).unwrap(), None);
        assert_eq!(a, args(&["50000", "400"]));
    }

    #[test]
    fn separate_value_form() {
        let mut a = args(&["--scale", "medium", "400"]);
        assert_eq!(take_scale_flag(&mut a).unwrap(), Some(Scale::Medium));
        assert_eq!(a, args(&["400"]));
    }

    #[test]
    fn inline_value_form() {
        let mut a = args(&["7", "--scale=large"]);
        assert_eq!(take_scale_flag(&mut a).unwrap(), Some(Scale::Large));
        assert_eq!(a, args(&["7"]));
    }

    #[test]
    fn bad_value_errors() {
        let mut a = args(&["--scale", "galactic"]);
        assert!(take_scale_flag(&mut a).is_err());
    }

    #[test]
    fn missing_value_errors() {
        let mut a = args(&["--scale"]);
        assert!(take_scale_flag(&mut a).is_err());
    }
}
