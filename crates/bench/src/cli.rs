//! Shared command-line handling for the figure/table binaries.
//!
//! Every collection-driven bin accepts `--scale tiny|small|medium|large`
//! (see [`x100_corpus::Scale`]) ahead of its positional arguments, so the
//! whole harness can be pointed at one rung of the scale ladder:
//!
//! ```text
//! cargo run --release -p x100-bench --bin table2_trec_runs -- --scale medium
//! ```

use x100_corpus::scale::ParseScaleError;
use x100_corpus::Scale;

/// Extracts a `--scale NAME` or `--scale=NAME` flag from `args` (removing
/// the consumed elements so positional parsing is unaffected).
///
/// Returns `Ok(None)` when the flag is absent, and an error when the flag
/// has a bad value or no value at all.
pub fn take_scale_flag(args: &mut Vec<String>) -> Result<Option<Scale>, ParseScaleError> {
    match take_flag_value(args, "--scale") {
        Some(raw) => raw.parse::<Scale>().map(Some),
        None => Ok(None),
    }
}

/// Extracts `NAME VALUE` or `NAME=VALUE` from `args` (removing the
/// consumed elements so positional parsing is unaffected). `None` when the
/// flag is absent; a present flag with no value yields an empty string,
/// which every value parser turns into a helpful error.
pub fn take_flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let inline_prefix = format!("{name}=");
    let pos = args
        .iter()
        .position(|a| a == name || a.starts_with(&inline_prefix))?;
    if let Some(inline) = args[pos].strip_prefix(&inline_prefix) {
        let value = inline.to_owned();
        args.remove(pos);
        Some(value)
    } else {
        args.remove(pos);
        if pos < args.len() {
            Some(args.remove(pos))
        } else {
            Some(String::new())
        }
    }
}

/// [`take_scale_flag`], exiting with a usage message on a bad value — the
/// behaviour every bin wants.
pub fn take_scale_flag_or_exit(args: &mut Vec<String>) -> Option<Scale> {
    match take_scale_flag(args) {
        Ok(scale) => scale,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Extracts an integer-valued `NAME N` or `NAME=N` flag from `args`,
/// exiting with a usage message on a malformed value; `default` when
/// absent.
pub fn take_usize_flag_or_exit(args: &mut Vec<String>, name: &str, default: usize) -> usize {
    match take_flag_value(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects an integer value");
            std::process::exit(2);
        }),
    }
}

/// Parses a human memory size: plain bytes (`1048576`) or a `K`/`M`/`G`
/// suffix in binary units (`64M` = 64 MiB), case-insensitive.
pub fn parse_mem_size(s: &str) -> Result<usize, String> {
    let s = s.trim();
    let (digits, shift) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 10),
        Some('m') | Some('M') => (&s[..s.len() - 1], 20),
        Some('g') | Some('G') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: usize = digits
        .parse()
        .map_err(|_| format!("bad memory size {s:?} (expected e.g. 64M, 512K, 1G or bytes)"))?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("memory size {s:?} overflows"))
}

/// Extracts a `--mem-budget SIZE` or `--mem-budget=SIZE` flag from `args`,
/// exiting with a usage message on a bad value. `None` when absent.
pub fn take_mem_budget_flag_or_exit(args: &mut Vec<String>) -> Option<usize> {
    let raw = take_flag_value(args, "--mem-budget")?;
    match parse_mem_size(&raw) {
        Ok(bytes) if bytes > 0 => Some(bytes),
        Ok(_) => {
            eprintln!("error: --mem-budget must be positive");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        let mut a = args(&["50000", "400"]);
        assert_eq!(take_scale_flag(&mut a).unwrap(), None);
        assert_eq!(a, args(&["50000", "400"]));
    }

    #[test]
    fn separate_value_form() {
        let mut a = args(&["--scale", "medium", "400"]);
        assert_eq!(take_scale_flag(&mut a).unwrap(), Some(Scale::Medium));
        assert_eq!(a, args(&["400"]));
    }

    #[test]
    fn inline_value_form() {
        let mut a = args(&["7", "--scale=large"]);
        assert_eq!(take_scale_flag(&mut a).unwrap(), Some(Scale::Large));
        assert_eq!(a, args(&["7"]));
    }

    #[test]
    fn bad_value_errors() {
        let mut a = args(&["--scale", "galactic"]);
        assert!(take_scale_flag(&mut a).is_err());
    }

    #[test]
    fn missing_value_errors() {
        let mut a = args(&["--scale"]);
        assert!(take_scale_flag(&mut a).is_err());
    }

    #[test]
    fn usize_flag_forms() {
        let mut a = args(&["--queries", "400", "rest"]);
        assert_eq!(take_usize_flag_or_exit(&mut a, "--queries", 500), 400);
        assert_eq!(a, args(&["rest"]));
        let mut a = args(&["--queries=250"]);
        assert_eq!(take_usize_flag_or_exit(&mut a, "--queries", 500), 250);
        assert!(a.is_empty());
        let mut a = args(&["positional"]);
        assert_eq!(take_usize_flag_or_exit(&mut a, "--queries", 500), 500);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn mem_sizes_parse_binary_suffixes() {
        assert_eq!(parse_mem_size("4096").unwrap(), 4096);
        assert_eq!(parse_mem_size("512K").unwrap(), 512 << 10);
        assert_eq!(parse_mem_size("64M").unwrap(), 64 << 20);
        assert_eq!(parse_mem_size("64m").unwrap(), 64 << 20);
        assert_eq!(parse_mem_size("2G").unwrap(), 2 << 30);
        assert!(parse_mem_size("").is_err());
        assert!(parse_mem_size("M").is_err());
        assert!(parse_mem_size("12.5M").is_err());
        assert!(parse_mem_size("lots").is_err());
        assert!(parse_mem_size("99999999999999999999G").is_err());
    }

    #[test]
    fn mem_budget_flag_forms() {
        let mut a = args(&["--mem-budget", "64M", "rest"]);
        assert_eq!(take_mem_budget_flag_or_exit(&mut a), Some(64 << 20));
        assert_eq!(a, args(&["rest"]));
        let mut a = args(&["--mem-budget=1G"]);
        assert_eq!(take_mem_budget_flag_or_exit(&mut a), Some(1 << 30));
        assert!(a.is_empty());
        let mut a = args(&["--scale", "tiny"]);
        assert_eq!(take_mem_budget_flag_or_exit(&mut a), None);
        assert_eq!(a.len(), 2);
    }
}
