//! End-to-end query-pipeline bench: the Table 2 strategies head to head on
//! a fixed collection (hot data). Complements the `table2_trec_runs`
//! harness with Criterion's statistical rigor on a per-strategy basis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use x100_corpus::{CollectionConfig, SyntheticCollection};
use x100_ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

fn bench_pipeline(c: &mut Criterion) {
    let collection = SyntheticCollection::generate(&CollectionConfig::small());
    let raw = InvertedIndex::build(&collection, &IndexConfig::uncompressed());
    let compressed = InvertedIndex::build(&collection, &IndexConfig::compressed());
    let materialized = InvertedIndex::build(&collection, &IndexConfig::materialized_q8());
    let queries: Vec<Vec<u32>> = collection.efficiency_log.iter().take(20).cloned().collect();

    let mut group = c.benchmark_group("query_pipeline");
    group.sample_size(15);

    let cases: Vec<(&str, &InvertedIndex, SearchStrategy)> = vec![
        ("bool_and/raw", &raw, SearchStrategy::BoolAnd),
        ("bool_or/raw", &raw, SearchStrategy::BoolOr),
        ("bm25/raw", &raw, SearchStrategy::Bm25),
        ("bm25_two_pass/raw", &raw, SearchStrategy::Bm25TwoPass),
        (
            "bm25_two_pass/compressed",
            &compressed,
            SearchStrategy::Bm25TwoPass,
        ),
        (
            "bm25_materialized_q8/compressed",
            &materialized,
            SearchStrategy::Bm25MaterializedTwoPass,
        ),
    ];

    for (name, index, strategy) in cases {
        let engine = QueryEngine::new(index);
        for q in &queries {
            let _ = engine.search(q, strategy, 20); // warm
        }
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &strat| {
            b.iter(|| {
                for q in &queries {
                    black_box(engine.search(q, strat, 20).expect("search").results.len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
