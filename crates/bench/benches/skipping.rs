//! Ablation bench: entry-point skipping (design decision 5 in DESIGN.md).
//!
//! The block format keeps an entry point every 128 values because that
//! "allows fine-granularity access and skipping, which is especially useful
//! during merging of inverted-lists" (§2.1). This bench quantifies it:
//! touching `k` scattered 128-value windows of a block via
//! `decode_range_into` vs decoding the whole block to reach the same
//! windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use x100_compress::{PforDeltaBlock, ENTRY_POINT_STRIDE};

const N: usize = 1 << 20;

fn sorted_docids() -> Vec<u32> {
    let mut acc = 0u32;
    let mut x = 0xABCDEFu32;
    (0..N)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            acc += 1 + x % 7;
            acc
        })
        .collect()
}

fn bench_skipping(c: &mut Criterion) {
    let block = PforDeltaBlock::encode_with_width(&sorted_docids(), 8);
    let strides = N / ENTRY_POINT_STRIDE;
    let mut group = c.benchmark_group("skipping");
    group.sample_size(20);

    for &windows in &[4usize, 16, 64] {
        // Evenly scattered windows across the block.
        let starts: Vec<usize> = (0..windows)
            .map(|i| (i * strides / windows) * ENTRY_POINT_STRIDE)
            .collect();

        group.bench_with_input(
            BenchmarkId::new("entry_point_seek", windows),
            &starts,
            |b, starts| {
                let mut out = Vec::new();
                b.iter(|| {
                    for &s in starts {
                        block
                            .decode_range_into(s, ENTRY_POINT_STRIDE, &mut out)
                            .expect("aligned");
                        black_box(out.last().copied());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_decode", windows),
            &starts,
            |b, starts| {
                let mut all = Vec::new();
                b.iter(|| {
                    block.decode_into(&mut all);
                    for &s in starts {
                        black_box(all[s]);
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_skipping);
criterion_main!(benches);
