//! Criterion bench behind the **§4 vector-size demonstration**: one BM25
//! query executed at different execution vector sizes. See also the
//! `ablation_vector_size` binary, which sweeps a wider range over a larger
//! query batch and prints the full table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use x100_corpus::{CollectionConfig, SyntheticCollection};
use x100_ir::{IndexConfig, InvertedIndex, QueryEngine, SearchStrategy};

fn bench_vector_size(c: &mut Criterion) {
    let collection = SyntheticCollection::generate(&CollectionConfig::small());
    let index = InvertedIndex::build(&collection, &IndexConfig::compressed());
    let query = collection.eval_queries[0].terms.clone();

    let mut group = c.benchmark_group("vector_size");
    group.sample_size(20);
    for &vs in &[1usize, 16, 256, 1024, 8192, 65536] {
        let engine = QueryEngine::new(&index).with_vector_size(vs);
        let _ = engine.search(&query, SearchStrategy::Bm25, 20); // warm buffers
        group.bench_with_input(BenchmarkId::from_parameter(vs), &vs, |b, _| {
            b.iter(|| {
                black_box(
                    engine
                        .search(&query, SearchStrategy::Bm25, 20)
                        .expect("search")
                        .results
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vector_size);
criterion_main!(benches);
