//! Criterion micro-bench behind **Figure 3**: NAIVE vs patched PFOR
//! decompression across exception rates, plus PFOR-DELTA and PDICT for
//! context. Throughput is reported in bytes of decompressed output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use x100_compress::{NaiveBlock, PdictBlock, PforBlock, PforDeltaBlock};

const N: usize = 1 << 16;

fn data_with_exception_rate(rate: f64) -> Vec<u32> {
    let threshold = (rate * u32::MAX as f64) as u32;
    let mut x = 0x9E3779B9u32;
    (0..N)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            if x < threshold {
                1_000_000 + (x % 1000)
            } else {
                u32::from(x as u8) % 255
            }
        })
        .collect()
}

fn bench_decompression(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompression");
    group.throughput(Throughput::Bytes((N * 4) as u64));
    group.sample_size(30);

    for &rate in &[0.0, 0.01, 0.05, 0.25, 0.50, 1.0] {
        let values = data_with_exception_rate(rate);
        let naive = NaiveBlock::encode(&values, 8, 0);
        let pfor = PforBlock::encode(&values, 8, 0);
        let mut out = Vec::with_capacity(N);

        group.bench_with_input(BenchmarkId::new("naive", rate), &naive, |b, blk| {
            b.iter(|| {
                blk.decode_into(&mut out);
                black_box(out.last().copied())
            })
        });
        group.bench_with_input(BenchmarkId::new("pfor_patched", rate), &pfor, |b, blk| {
            b.iter(|| {
                blk.decode_into(&mut out);
                black_box(out.last().copied())
            })
        });
    }

    // Sorted docid-like data for the delta/dict codecs.
    let sorted: Vec<u32> = (0..N as u32).map(|i| i * 3 + (i % 5)).collect();
    let delta = PforDeltaBlock::encode_with_width(&sorted, 8);
    let skewed: Vec<u32> = (0..N as u32).map(|i| i % 32).collect();
    let dict = PdictBlock::encode(&skewed, 8);
    let mut out = Vec::with_capacity(N);
    group.bench_function("pfor_delta_sorted", |b| {
        b.iter(|| {
            delta.decode_into(&mut out);
            black_box(out.last().copied())
        })
    });
    group.bench_function("pdict_skewed", |b| {
        b.iter(|| {
            dict.decode_into(&mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decompression);
criterion_main!(benches);
