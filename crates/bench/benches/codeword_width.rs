//! Ablation bench: PFOR code-word width (design decision 6 in DESIGN.md).
//!
//! The paper fixes b = 8 for the IR columns; this bench shows the trade-off
//! that choice sits on: narrower codes decompress more values per cache
//! line but push more values into the exception path, wider codes waste
//! bits but almost never take exceptions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use x100_compress::PforBlock;

const N: usize = 1 << 16;

/// Posting-list-like tf values: mostly small, occasionally large.
fn tf_like() -> Vec<u32> {
    let mut x = 0xC0FFEEu32;
    (0..N)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            match x % 100 {
                0..=79 => 1 + x % 4,   // 80%: tf 1-4
                80..=97 => 5 + x % 60, // 18%: tf 5-64
                _ => 300 + x % 5000,   // 2%: outliers
            }
        })
        .collect()
}

fn bench_width(c: &mut Criterion) {
    let values = tf_like();
    let mut group = c.benchmark_group("codeword_width");
    group.throughput(Throughput::Bytes((N * 4) as u64));
    group.sample_size(30);
    for &b in &[2u8, 4, 6, 8, 12, 16] {
        let block = PforBlock::encode_with_width(&values, b);
        let label = format!(
            "b={b} ({:.1} bits/val, {:.1}% exc)",
            block.bits_per_value(),
            block.exception_rate() * 100.0
        );
        let mut out = Vec::with_capacity(N);
        group.bench_with_input(BenchmarkId::from_parameter(label), &block, |bench, blk| {
            bench.iter(|| {
                blk.decode_into(&mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_width);
criterion_main!(benches);
