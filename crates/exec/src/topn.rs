//! The TopN operator — IR ranking's missing relational primitive.
//!
//! The related-work discussion in the paper (§5) points at proposals to
//! extend relational algebra with a top-k operator; the paper's own BM25
//! query plan ends in `TopN(..., [score DESC], 20)` (§3.2). This operator
//! keeps the best `n` rows by a score column in a bounded min-heap — O(rows
//! · log n) with only `n` rows of state, never a full sort.
//!
//! Ties on the score break toward the earlier input row (lower docid for
//! posting-list inputs), making results deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use x100_vector::{Batch, ValueType, Vector, VectorData};

use crate::{ExecError, Operator};

/// One buffered value (rows can mix i32 and f32 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cell {
    I32(i32),
    F32(f32),
}

/// A heap entry: score, arrival order, carried row.
#[derive(Debug, Clone)]
struct HeapRow {
    score: f32,
    seq: u64,
    row: Vec<Cell>,
}

impl PartialEq for HeapRow {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapRow {}

impl PartialOrd for HeapRow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapRow {
    fn cmp(&self, other: &Self) -> Ordering {
        // Primary: score. Secondary: later arrivals order as *smaller*, so
        // on a tie the heap evicts the later row and keeps the earlier one.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Keeps the top `n` rows by a score column, descending.
pub struct TopN<'a> {
    input: Box<dyn Operator + 'a>,
    score_col: usize,
    n: usize,
    vector_size: usize,
    schema: Vec<ValueType>,
    /// Sorted results, filled when the input is drained.
    results: Option<Vec<HeapRow>>,
    cursor: usize,
}

impl<'a> TopN<'a> {
    /// Creates a top-`n` over `input`, ordered by `score_col` descending.
    /// The score column must be f32 or i32.
    pub fn new(
        input: Box<dyn Operator + 'a>,
        score_col: usize,
        n: usize,
        vector_size: usize,
    ) -> Result<Self, ExecError> {
        let schema = input.schema().to_vec();
        match schema.get(score_col) {
            Some(ValueType::F32) | Some(ValueType::I32) => {}
            Some(t) => {
                return Err(ExecError::Plan(format!(
                    "TopN score column must be f32 or i32, got {t}"
                )))
            }
            None => return Err(ExecError::Plan("TopN score column out of range".into())),
        }
        Ok(TopN {
            input,
            score_col,
            n,
            vector_size,
            schema,
            results: None,
            cursor: 0,
        })
    }

    fn drain(&mut self) -> Result<(), ExecError> {
        let mut heap: BinaryHeap<std::cmp::Reverse<HeapRow>> =
            BinaryHeap::with_capacity(self.n + 1);
        let mut seq = 0u64;
        while let Some(mut batch) = self.input.next()? {
            batch.compact();
            let rows = batch.num_rows();
            if rows == 0 {
                continue;
            }
            let scores: Vec<f32> = match batch.column(self.score_col).data() {
                VectorData::F32(v) => v.clone(),
                VectorData::I32(v) => v.iter().map(|&x| x as f32).collect(),
                other => {
                    return Err(ExecError::Plan(format!(
                        "TopN score column has type {}",
                        other.value_type()
                    )))
                }
            };
            for r in 0..rows {
                let score = scores[r];
                seq += 1;
                if self.n == 0 {
                    continue;
                }
                // Cheap reject: full heap and the score does not beat the
                // current minimum (ties keep the incumbent).
                if heap.len() == self.n {
                    let min = &heap.peek().expect("non-empty").0;
                    if score <= min.score {
                        continue;
                    }
                }
                let row: Vec<Cell> = batch
                    .columns()
                    .iter()
                    .map(|c| match c.data() {
                        VectorData::I32(v) => Cell::I32(v[r]),
                        VectorData::F32(v) => Cell::F32(v[r]),
                        other => panic!("unsupported TopN carry type {}", other.value_type()),
                    })
                    .collect();
                heap.push(std::cmp::Reverse(HeapRow { score, seq, row }));
                if heap.len() > self.n {
                    heap.pop();
                }
            }
        }
        let mut rows: Vec<HeapRow> = heap.into_iter().map(|r| r.0).collect();
        // Descending score, ascending arrival for ties.
        rows.sort_unstable_by(|a, b| b.cmp(a));
        self.results = Some(rows);
        self.cursor = 0;
        Ok(())
    }
}

impl Operator for TopN<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.results = None;
        self.cursor = 0;
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        if self.results.is_none() {
            self.drain()?;
        }
        let results = self.results.as_ref().expect("drained");
        if self.cursor >= results.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.vector_size).min(results.len());
        let slice = &results[self.cursor..end];
        self.cursor = end;

        let mut columns: Vec<VectorData> = self
            .schema
            .iter()
            .map(|t| match t {
                ValueType::F32 => VectorData::F32(Vec::with_capacity(slice.len())),
                _ => VectorData::I32(Vec::with_capacity(slice.len())),
            })
            .collect();
        for hr in slice {
            for (c, cell) in hr.row.iter().enumerate() {
                match (cell, &mut columns[c]) {
                    (Cell::I32(v), VectorData::I32(col)) => col.push(*v),
                    (Cell::F32(v), VectorData::F32(col)) => col.push(*v),
                    _ => unreachable!("cell/type mismatch"),
                }
            }
        }
        Ok(Some(Batch::new(
            columns.into_iter().map(Vector::from_data).collect(),
        )))
    }

    fn close(&mut self) {
        self.results = None;
        self.input.close();
    }

    fn schema(&self) -> &[ValueType] {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_batches;
    use crate::mem::MemSource;

    fn src(ids: &[i32], scores: &[f32]) -> Box<dyn Operator> {
        Box::new(MemSource::from_batch(Batch::new(vec![
            Vector::from_i32(ids),
            Vector::from_f32(scores),
        ])))
    }

    fn top_rows(op: TopN) -> Vec<(i32, f32)> {
        let batches = collect_batches(op).unwrap();
        let mut rows = Vec::new();
        for b in &batches {
            for r in 0..b.num_rows() {
                rows.push((b.column(0).as_i32()[r], b.column(1).as_f32()[r]));
            }
        }
        rows
    }

    #[test]
    fn keeps_best_n_descending() {
        let op = TopN::new(src(&[1, 2, 3, 4, 5], &[0.5, 2.0, 1.0, 9.0, 0.1]), 1, 3, 16).unwrap();
        assert_eq!(top_rows(op), vec![(4, 9.0), (2, 2.0), (3, 1.0)]);
    }

    #[test]
    fn n_larger_than_input_returns_all_sorted() {
        let op = TopN::new(src(&[1, 2], &[1.0, 5.0]), 1, 20, 16).unwrap();
        assert_eq!(top_rows(op), vec![(2, 5.0), (1, 1.0)]);
    }

    #[test]
    fn ties_prefer_earlier_rows() {
        let op = TopN::new(src(&[10, 20, 30], &[1.0, 1.0, 1.0]), 1, 2, 16).unwrap();
        assert_eq!(top_rows(op), vec![(10, 1.0), (20, 1.0)]);
    }

    #[test]
    fn top_zero_is_empty() {
        let op = TopN::new(src(&[1], &[1.0]), 1, 0, 16).unwrap();
        assert!(top_rows(op).is_empty());
    }

    #[test]
    fn i32_score_column_works() {
        let op = TopN::new(
            Box::new(MemSource::from_batch(Batch::new(vec![Vector::from_i32(
                &[3, 9, 1],
            )]))),
            0,
            2,
            16,
        )
        .unwrap();
        let batches = collect_batches(op).unwrap();
        assert_eq!(batches[0].column(0).as_i32(), &[9, 3]);
    }

    #[test]
    fn selection_respected() {
        use crate::expr::Predicate;
        use crate::select::Select;
        let filtered = Box::new(Select::new(
            src(&[1, 2, 3], &[9.0, 5.0, 7.0]),
            Predicate::ge_f32(1, 6.0),
        ));
        let op = TopN::new(filtered, 1, 2, 16).unwrap();
        assert_eq!(top_rows(op), vec![(1, 9.0), (3, 7.0)]);
    }

    #[test]
    fn negative_and_nan_free_scores_order_totally() {
        let op = TopN::new(src(&[1, 2, 3], &[-1.0, -3.0, 0.0]), 1, 3, 16).unwrap();
        assert_eq!(top_rows(op), vec![(3, 0.0), (1, -1.0), (2, -3.0)]);
    }

    #[test]
    fn bad_score_column_rejected() {
        assert!(TopN::new(src(&[], &[]), 7, 3, 16).is_err());
    }

    #[test]
    fn results_chunked_by_vector_size() {
        let ids: Vec<i32> = (0..50).collect();
        let scores: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let mut op = TopN::new(src(&ids, &scores), 1, 40, 16).unwrap();
        op.open().unwrap();
        assert_eq!(op.next().unwrap().unwrap().num_rows(), 16);
        op.close();
    }
}
