//! Vectorized primitives — the tight loops at the bottom of the engine.
//!
//! These correspond to X100's generated primitive functions, named
//! `map_<op>_<type>_<shape>` in Figure 1 (e.g. `map_mul_flt_val_flt_col`,
//! `select_lt_date_col_date_val`, `aggr_sum_flt_col`). Each primitive is a
//! branch-free loop over raw slices so the compiler can pipeline and
//! auto-vectorize it; "function call overheads \[are\] amortized over a full
//! vector of values instead of a single tuple".
//!
//! Naming follows the paper: `col` = per-value column operand, `val` =
//! scalar constant operand.

use x100_vector::SelectionVector;

// ---- map: f32 ----------------------------------------------------------

/// `out[i] = a[i] + b[i]`
pub fn map_add_f32_col_f32_col(a: &[f32], b: &[f32], out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x + y));
}

/// `out[i] = a[i] + v`
pub fn map_add_f32_col_f32_val(a: &[f32], v: f32, out: &mut Vec<f32>) {
    out.clear();
    out.extend(a.iter().map(|&x| x + v));
}

/// `out[i] = a[i] * b[i]`
pub fn map_mul_f32_col_f32_col(a: &[f32], b: &[f32], out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x * y));
}

/// `out[i] = a[i] * v` — the paper's `map_mul_flt_val_flt_col`.
pub fn map_mul_f32_col_f32_val(a: &[f32], v: f32, out: &mut Vec<f32>) {
    out.clear();
    out.extend(a.iter().map(|&x| x * v));
}

/// `out[i] = a[i] / b[i]`
pub fn map_div_f32_col_f32_col(a: &[f32], b: &[f32], out: &mut Vec<f32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x / y));
}

/// `out[i] = ln(a[i])`
pub fn map_log_f32_col(a: &[f32], out: &mut Vec<f32>) {
    out.clear();
    out.extend(a.iter().map(|&x| x.ln()));
}

// ---- map: i32 ----------------------------------------------------------

/// `out[i] = a[i] + b[i]` (wrapping, column form).
pub fn map_add_i32_col_i32_col(a: &[i32], b: &[i32], out: &mut Vec<i32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x.wrapping_add(y)));
}

/// `out[i] = a[i] + v` (wrapping, scalar form).
pub fn map_add_i32_col_i32_val(a: &[i32], v: i32, out: &mut Vec<i32>) {
    out.clear();
    out.extend(a.iter().map(|&x| x.wrapping_add(v)));
}

/// `out[i] = max(a[i], b[i])` — the paper's query uses
/// `MAX(TD1.docid, TD2.docid)` to pick the non-null side of an outer join.
pub fn map_max_i32_col_i32_col(a: &[i32], b: &[i32], out: &mut Vec<i32>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x.max(y)));
}

/// `out[i] = a[i] as f32` — type bridge from integer columns (tf, doclen)
/// into the floating-point BM25 formula.
pub fn map_i32_col_to_f32(a: &[i32], out: &mut Vec<f32>) {
    out.clear();
    out.extend(a.iter().map(|&x| x as f32));
}

// ---- select ------------------------------------------------------------

/// Appends to `sel` the positions where `a[i] < v`.
pub fn select_lt_i32_col_i32_val(a: &[i32], v: i32, sel: &mut SelectionVector) {
    sel.clear();
    for (i, &x) in a.iter().enumerate() {
        if x < v {
            sel.push(i as u32);
        }
    }
}

/// Appends to `sel` the positions where `a[i] >= v`.
pub fn select_ge_i32_col_i32_val(a: &[i32], v: i32, sel: &mut SelectionVector) {
    sel.clear();
    for (i, &x) in a.iter().enumerate() {
        if x >= v {
            sel.push(i as u32);
        }
    }
}

/// Appends to `sel` the positions where `a[i] == v`.
pub fn select_eq_i32_col_i32_val(a: &[i32], v: i32, sel: &mut SelectionVector) {
    sel.clear();
    for (i, &x) in a.iter().enumerate() {
        if x == v {
            sel.push(i as u32);
        }
    }
}

/// Appends to `sel` the positions where `a[i] >= v` (f32 form).
pub fn select_ge_f32_col_f32_val(a: &[f32], v: f32, sel: &mut SelectionVector) {
    sel.clear();
    for (i, &x) in a.iter().enumerate() {
        if x >= v {
            sel.push(i as u32);
        }
    }
}

// ---- aggr --------------------------------------------------------------

/// Sum of an f32 column — the paper's `aggr_sum_flt_col` (as f64 to keep
/// accumulation stable over long vectors).
pub fn aggr_sum_f32_col(a: &[f32]) -> f64 {
    a.iter().map(|&x| f64::from(x)).sum()
}

/// Sum of an i32 column.
pub fn aggr_sum_i32_col(a: &[i32]) -> i64 {
    a.iter().map(|&x| i64::from(x)).sum()
}

/// Count of selected positions, or the full vector without selection.
pub fn aggr_count(len: usize, sel: Option<&SelectionVector>) -> usize {
    sel.map_or(len, SelectionVector::len)
}

// ---- hash --------------------------------------------------------------

/// Vectorized multiplicative hash of an i32 column — the paper's
/// `map_hash_chr_col` analogue for our key types (Fibonacci hashing).
pub fn map_hash_i32_col(a: &[i32], out: &mut Vec<u64>) {
    out.clear();
    out.extend(
        a.iter()
            .map(|&x| (x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_f32_arithmetic() {
        let mut out = Vec::new();
        map_add_f32_col_f32_col(&[1.0, 2.0], &[3.0, 4.0], &mut out);
        assert_eq!(out, vec![4.0, 6.0]);
        map_mul_f32_col_f32_val(&[1.5, -2.0], 2.0, &mut out);
        assert_eq!(out, vec![3.0, -4.0]);
        map_div_f32_col_f32_col(&[9.0], &[3.0], &mut out);
        assert_eq!(out, vec![3.0]);
        map_add_f32_col_f32_val(&[1.0], 0.5, &mut out);
        assert_eq!(out, vec![1.5]);
        map_mul_f32_col_f32_col(&[2.0, 3.0], &[4.0, 5.0], &mut out);
        assert_eq!(out, vec![8.0, 15.0]);
    }

    #[test]
    fn map_log_is_natural_log() {
        let mut out = Vec::new();
        map_log_f32_col(&[std::f32::consts::E], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn map_i32_ops() {
        let mut out = Vec::new();
        map_add_i32_col_i32_col(&[1, i32::MAX], &[2, 1], &mut out);
        assert_eq!(out, vec![3, i32::MIN]); // wrapping by design
        map_add_i32_col_i32_val(&[5], -3, &mut out);
        assert_eq!(out, vec![2]);
        map_max_i32_col_i32_col(&[1, 9], &[4, 2], &mut out);
        assert_eq!(out, vec![4, 9]);
    }

    #[test]
    fn int_to_float_bridge() {
        let mut out = Vec::new();
        map_i32_col_to_f32(&[3, -1], &mut out);
        assert_eq!(out, vec![3.0, -1.0]);
    }

    #[test]
    fn select_primitives() {
        let mut sel = SelectionVector::default();
        select_lt_i32_col_i32_val(&[5, 1, 7, 0], 5, &mut sel);
        assert_eq!(sel.positions(), &[1, 3]);
        select_ge_i32_col_i32_val(&[5, 1, 7, 0], 5, &mut sel);
        assert_eq!(sel.positions(), &[0, 2]);
        select_eq_i32_col_i32_val(&[5, 1, 5], 5, &mut sel);
        assert_eq!(sel.positions(), &[0, 2]);
        select_ge_f32_col_f32_val(&[0.5, 1.5], 1.0, &mut sel);
        assert_eq!(sel.positions(), &[1]);
    }

    #[test]
    fn aggregates() {
        assert_eq!(aggr_sum_f32_col(&[1.0, 2.5]), 3.5);
        assert_eq!(aggr_sum_i32_col(&[1, -4]), -3);
        assert_eq!(aggr_count(10, None), 10);
        let sel = SelectionVector::from_positions(vec![0, 2]);
        assert_eq!(aggr_count(10, Some(&sel)), 2);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let mut out = Vec::new();
        map_hash_i32_col(&[1, 2, 1], &mut out);
        assert_eq!(out[0], out[2]);
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn empty_inputs() {
        let mut f = Vec::new();
        map_add_f32_col_f32_col(&[], &[], &mut f);
        assert!(f.is_empty());
        let mut sel = SelectionVector::default();
        select_eq_i32_col_i32_val(&[], 1, &mut sel);
        assert!(sel.is_empty());
        assert_eq!(aggr_sum_f32_col(&[]), 0.0);
    }
}
