//! The Project operator: computing new columns with vectorized expressions.
//!
//! Project evaluates a list of [`Expr`]s against each input batch and emits
//! a batch of the results (Figure 1's `Project` node computing
//! `vat_price`). The input's selection vector is preserved: expressions run
//! over all physical rows (branch-free), and selection stays a consumer-side
//! annotation.

use x100_vector::{Batch, ValueType};

use crate::expr::Expr;
use crate::{ExecError, Operator};

/// Computes expressions over each input batch.
pub struct Project<'a> {
    input: Box<dyn Operator + 'a>,
    exprs: Vec<Expr>,
    schema: Vec<ValueType>,
}

impl<'a> Project<'a> {
    /// Creates a projection of `exprs` over `input`.
    pub fn new(input: Box<dyn Operator + 'a>, exprs: Vec<Expr>) -> Self {
        let schema = exprs.iter().map(Expr::output_type).collect();
        Project {
            input,
            exprs,
            schema,
        }
    }
}

impl Operator for Project<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        let Some(batch) = self.input.next()? else {
            return Ok(None);
        };
        let mut columns = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            columns.push(e.eval(&batch)?);
        }
        let mut out = Batch::new(columns);
        out.set_selection(batch.selection().cloned());
        Ok(Some(out))
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn schema(&self) -> &[ValueType] {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use crate::mem::MemSource;
    use crate::select::Select;
    use crate::{collect_f32_column, collect_i32_column};
    use x100_vector::Vector;

    fn src(values: &[i32]) -> Box<dyn Operator> {
        Box::new(MemSource::from_batch(Batch::new(vec![Vector::from_i32(
            values,
        )])))
    }

    #[test]
    fn computes_expressions() {
        let p = Project::new(
            src(&[1, 2, 3]),
            vec![Expr::mul(Expr::col_i32(0), Expr::const_i32(10))],
        );
        assert_eq!(collect_i32_column(p, 0).unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn multiple_output_columns() {
        let p = Project::new(
            src(&[4]),
            vec![
                Expr::col_i32(0),
                Expr::cast_f32(Expr::add(Expr::col_i32(0), Expr::const_i32(1))),
            ],
        );
        assert_eq!(p.schema(), &[ValueType::I32, ValueType::F32]);
        assert_eq!(collect_f32_column(p, 1).unwrap(), vec![5.0]);
    }

    #[test]
    fn selection_preserved_through_projection() {
        let filtered = Select::new(src(&[1, 2, 3, 4]), Predicate::ge_i32(0, 3));
        let p = Project::new(
            Box::new(filtered),
            vec![Expr::add(Expr::col_i32(0), Expr::const_i32(100))],
        );
        assert_eq!(collect_i32_column(p, 0).unwrap(), vec![103, 104]);
    }

    #[test]
    fn plan_errors_propagate() {
        let mut p = Project::new(src(&[1]), vec![Expr::col_f32(0)]);
        p.open().unwrap();
        assert!(matches!(p.next(), Err(ExecError::Plan(_))));
        p.close();
    }
}
