//! The X100 vectorized in-cache execution engine (§2, Figure 1).
//!
//! Operators follow the traditional Volcano `open()/next()/close()`
//! interface, but every `next()` returns a **vector of tuples** — a
//! [`Batch`] of aligned column vectors — instead of a single tuple.
//! "Vectorization of the iterator pipeline allows MonetDB/X100 primitives
//! ... to be implemented as simple loops over vectors", amortizing call
//! overhead over a full vector and letting the compiler emit data-parallel
//! code.
//!
//! The operator set covers everything the paper's IR queries use (§3.2):
//!
//! * [`scan::TableScan`] — scan a (range of a) stored table at vector
//!   granularity; with a range restriction this is the paper's
//!   `ScanSelect(TD, term=t)` once the term range index resolves `t`.
//! * [`select::Select`] — filter via selection vectors (no copying).
//! * [`project::Project`] — compute expressions ([`expr::Expr`]) built from
//!   vectorized primitives ([`primitives`]).
//! * [`merge_join::MergeJoin`] / [`merge_join::MergeOuterJoin`] — combine
//!   sorted posting lists: boolean `AND` maps to the former, `OR` to the
//!   latter.
//! * [`aggregate::HashAggregate`] — grouped sums/counts (Figure 1's example
//!   query).
//! * [`topn::TopN`] — the top-N operator IR ranking needs.
//! * [`mem::MemSource`] — in-memory batches (test inputs, intermediate
//!   results).
//!
//! # Example: a tiny pipeline
//!
//! ```
//! use x100_exec::prelude::*;
//! use x100_vector::{Batch, Vector};
//!
//! // SELECT x + 1 WHERE x >= 2, over x = [1,2,3,4]
//! let input = MemSource::new(
//!     vec![Batch::new(vec![Vector::from_i32(&[1, 2, 3, 4])])],
//!     vec![x100_vector::ValueType::I32],
//! );
//! let selected = Select::new(Box::new(input), Predicate::ge_i32(0, 2));
//! let projected = Project::new(
//!     Box::new(selected),
//!     vec![Expr::add(Expr::col_i32(0), Expr::const_i32(1))],
//! );
//! let rows = collect_i32_column(projected, 0).unwrap();
//! assert_eq!(rows, vec![3, 4, 5]);
//! ```

pub mod aggregate;
pub mod expr;
pub mod mem;
pub mod merge_join;
pub mod primitives;
pub mod project;
pub mod scan;
pub mod select;
pub mod topn;

use std::fmt;

pub use x100_vector::{Batch, SelectionVector, Value, ValueType, Vector, VectorSize};

/// Everything needed to assemble a pipeline.
pub mod prelude {
    pub use crate::aggregate::{AggFunc, HashAggregate};
    pub use crate::expr::{Expr, Predicate};
    pub use crate::mem::MemSource;
    pub use crate::merge_join::{MergeJoin, MergeOuterJoin};
    pub use crate::project::Project;
    pub use crate::scan::TableScan;
    pub use crate::select::Select;
    pub use crate::topn::TopN;
    pub use crate::{collect_batches, collect_f32_column, collect_i32_column, Operator};
}

/// Errors surfaced by query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Underlying storage failure.
    Storage(x100_storage::StorageError),
    /// Operator protocol misuse (e.g. `next()` before `open()`).
    Protocol(&'static str),
    /// Plan shape error caught at runtime (column index/type mismatch).
    Plan(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::Protocol(what) => write!(f, "operator protocol violation: {what}"),
            ExecError::Plan(what) => write!(f, "plan error: {what}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<x100_storage::StorageError> for ExecError {
    fn from(e: x100_storage::StorageError) -> Self {
        ExecError::Storage(e)
    }
}

/// The pipelined operator interface: `open()`, then `next()` until it
/// returns `Ok(None)`, then `close()`.
pub trait Operator {
    /// Prepares the operator (allocates vector buffers, opens children).
    fn open(&mut self) -> Result<(), ExecError>;

    /// Produces the next vector of tuples, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Batch>, ExecError>;

    /// Releases resources (closes children).
    fn close(&mut self);

    /// Output column types.
    fn schema(&self) -> &[ValueType];
}

/// Runs a plan to completion, returning all produced batches (compacted).
pub fn collect_batches(mut op: impl Operator) -> Result<Vec<Batch>, ExecError> {
    op.open()?;
    let mut batches = Vec::new();
    while let Some(mut batch) = op.next()? {
        batch.compact();
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    op.close();
    Ok(batches)
}

/// Runs a plan and concatenates one `i32` output column.
pub fn collect_i32_column(op: impl Operator, col: usize) -> Result<Vec<i32>, ExecError> {
    let batches = collect_batches(op)?;
    let mut out = Vec::new();
    for b in &batches {
        out.extend_from_slice(b.column(col).as_i32());
    }
    Ok(out)
}

/// Runs a plan and concatenates one `f32` output column.
pub fn collect_f32_column(op: impl Operator, col: usize) -> Result<Vec<f32>, ExecError> {
    let batches = collect_batches(op)?;
    let mut out = Vec::new();
    for b in &batches {
        out.extend_from_slice(b.column(col).as_f32());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = ExecError::Plan("bad column".into());
        assert!(e.to_string().contains("bad column"));
        let e: ExecError = x100_storage::StorageError::UnknownColumn("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(ExecError::Protocol("next before open")
            .to_string()
            .contains("protocol"));
    }
}
