//! Grouped aggregation (Figure 1's `Aggregate` node).
//!
//! A hash aggregate over one i32 grouping key, supporting the aggregate
//! functions the paper's example plan and the IR workload use: `SUM` over
//! float and integer columns and `COUNT(*)`. The operator is a pipeline
//! breaker: it drains its input on the first `next()`, then streams the
//! grouped results out in key order (sorted for determinism), one vector at
//! a time.

use std::collections::HashMap;

use x100_vector::{Batch, ValueType, Vector, VectorData};

use crate::{ExecError, Operator};

/// An aggregate function over an input column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of an f32 column (accumulated in f64, emitted as f64).
    SumF32(usize),
    /// Sum of an i32 column (accumulated and emitted as i64).
    SumI32(usize),
    /// Row count.
    CountStar,
}

impl AggFunc {
    fn output_type(self) -> ValueType {
        match self {
            AggFunc::SumF32(_) => ValueType::F64,
            AggFunc::SumI32(_) | AggFunc::CountStar => ValueType::I64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Acc {
    F(f64),
    I(i64),
}

/// Hash-grouped aggregation over one i32 key column.
pub struct HashAggregate<'a> {
    input: Box<dyn Operator + 'a>,
    key_col: usize,
    funcs: Vec<AggFunc>,
    schema: Vec<ValueType>,
    vector_size: usize,
    /// Drained results, sorted by key; `None` until the input is consumed.
    results: Option<Vec<(i32, Vec<Acc>)>>,
    cursor: usize,
}

impl<'a> HashAggregate<'a> {
    /// Creates an aggregation of `funcs` over `input`, grouped by
    /// `key_col`. Output schema: the key, then one column per function.
    pub fn new(
        input: Box<dyn Operator + 'a>,
        key_col: usize,
        funcs: Vec<AggFunc>,
        vector_size: usize,
    ) -> Result<Self, ExecError> {
        if key_col >= input.schema().len() {
            return Err(ExecError::Plan("aggregate key column out of range".into()));
        }
        let mut schema = vec![ValueType::I32];
        schema.extend(funcs.iter().map(|f| f.output_type()));
        Ok(HashAggregate {
            input,
            key_col,
            funcs,
            schema,
            vector_size,
            results: None,
            cursor: 0,
        })
    }

    fn drain_input(&mut self) -> Result<(), ExecError> {
        let mut groups: HashMap<i32, Vec<Acc>> = HashMap::new();
        let zero: Vec<Acc> = self
            .funcs
            .iter()
            .map(|f| match f {
                AggFunc::SumF32(_) => Acc::F(0.0),
                AggFunc::SumI32(_) | AggFunc::CountStar => Acc::I(0),
            })
            .collect();
        while let Some(mut batch) = self.input.next()? {
            batch.compact();
            if batch.is_empty() {
                continue;
            }
            let keys = batch.column(self.key_col).as_i32().to_vec();
            for (fi, func) in self.funcs.iter().enumerate() {
                match func {
                    AggFunc::SumF32(col) => {
                        let vals = batch.column(*col).as_f32();
                        for (k, &v) in keys.iter().zip(vals) {
                            let accs = groups.entry(*k).or_insert_with(|| zero.clone());
                            if let Acc::F(a) = &mut accs[fi] {
                                *a += f64::from(v);
                            }
                        }
                    }
                    AggFunc::SumI32(col) => {
                        let vals = batch.column(*col).as_i32();
                        for (k, &v) in keys.iter().zip(vals) {
                            let accs = groups.entry(*k).or_insert_with(|| zero.clone());
                            if let Acc::I(a) = &mut accs[fi] {
                                *a += i64::from(v);
                            }
                        }
                    }
                    AggFunc::CountStar => {
                        for k in &keys {
                            let accs = groups.entry(*k).or_insert_with(|| zero.clone());
                            if let Acc::I(a) = &mut accs[fi] {
                                *a += 1;
                            }
                        }
                    }
                }
            }
        }
        let mut results: Vec<(i32, Vec<Acc>)> = groups.into_iter().collect();
        results.sort_unstable_by_key(|&(k, _)| k);
        self.results = Some(results);
        self.cursor = 0;
        Ok(())
    }
}

impl Operator for HashAggregate<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.results = None;
        self.cursor = 0;
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        if self.results.is_none() {
            self.drain_input()?;
        }
        let results = self.results.as_ref().expect("drained");
        if self.cursor >= results.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.vector_size).min(results.len());
        let slice = &results[self.cursor..end];
        self.cursor = end;

        let mut keys = Vec::with_capacity(slice.len());
        let mut agg_cols: Vec<VectorData> = self
            .funcs
            .iter()
            .map(|f| match f.output_type() {
                ValueType::F64 => VectorData::F64(Vec::with_capacity(slice.len())),
                _ => VectorData::I64(Vec::with_capacity(slice.len())),
            })
            .collect();
        for (k, accs) in slice {
            keys.push(*k);
            for (fi, acc) in accs.iter().enumerate() {
                match (acc, &mut agg_cols[fi]) {
                    (Acc::F(v), VectorData::F64(col)) => col.push(*v),
                    (Acc::I(v), VectorData::I64(col)) => col.push(*v),
                    _ => unreachable!("accumulator/type mismatch"),
                }
            }
        }
        let mut columns = vec![Vector::from_data(VectorData::I32(keys))];
        columns.extend(agg_cols.into_iter().map(Vector::from_data));
        Ok(Some(Batch::new(columns)))
    }

    fn close(&mut self) {
        self.results = None;
        self.input.close();
    }

    fn schema(&self) -> &[ValueType] {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_batches;
    use crate::mem::MemSource;

    fn src(keys: &[i32], vals_f: &[f32]) -> Box<dyn Operator> {
        Box::new(MemSource::from_batch(Batch::new(vec![
            Vector::from_i32(keys),
            Vector::from_f32(vals_f),
        ])))
    }

    #[test]
    fn groups_and_sums() {
        let agg = HashAggregate::new(
            src(&[1, 2, 1, 2, 1], &[1.0, 10.0, 2.0, 20.0, 3.0]),
            0,
            vec![AggFunc::SumF32(1), AggFunc::CountStar],
            1024,
        )
        .unwrap();
        let batches = collect_batches(agg).unwrap();
        assert_eq!(batches.len(), 1);
        let b = &batches[0];
        assert_eq!(b.column(0).as_i32(), &[1, 2]);
        assert_eq!(b.column(1).as_f64(), &[6.0, 30.0]);
        assert_eq!(b.column(2).as_i64(), &[3, 2]);
    }

    #[test]
    fn sum_i32_accumulates_as_i64() {
        let keys = vec![7i32; 3];
        let vals = vec![i32::MAX, i32::MAX, 2];
        let src = Box::new(MemSource::from_batch(Batch::new(vec![
            Vector::from_i32(&keys),
            Vector::from_i32(&vals),
        ])));
        let agg = HashAggregate::new(src, 0, vec![AggFunc::SumI32(1)], 16).unwrap();
        let batches = collect_batches(agg).unwrap();
        assert_eq!(
            batches[0].column(1).as_i64(),
            &[i64::from(i32::MAX) * 2 + 2]
        );
    }

    #[test]
    fn empty_input_empty_output() {
        let agg = HashAggregate::new(src(&[], &[]), 0, vec![AggFunc::CountStar], 16).unwrap();
        assert!(collect_batches(agg).unwrap().is_empty());
    }

    #[test]
    fn results_stream_in_vector_sized_chunks() {
        let keys: Vec<i32> = (0..100).collect();
        let vals = vec![1.0f32; 100];
        let mut agg =
            HashAggregate::new(src(&keys, &vals), 0, vec![AggFunc::SumF32(1)], 32).unwrap();
        agg.open().unwrap();
        let first = agg.next().unwrap().unwrap();
        assert_eq!(first.num_rows(), 32);
        agg.close();
    }

    #[test]
    fn selection_respected() {
        use crate::expr::Predicate;
        use crate::select::Select;
        // Filter vals >= 10 before aggregating.
        let filtered = Box::new(Select::new(
            src(&[1, 1, 2], &[1.0, 10.0, 20.0]),
            Predicate::ge_f32(1, 10.0),
        ));
        let agg = HashAggregate::new(filtered, 0, vec![AggFunc::SumF32(1)], 16).unwrap();
        let batches = collect_batches(agg).unwrap();
        assert_eq!(batches[0].column(0).as_i32(), &[1, 2]);
        assert_eq!(batches[0].column(1).as_f64(), &[10.0, 20.0]);
    }

    #[test]
    fn bad_key_column_rejected() {
        assert!(HashAggregate::new(src(&[], &[]), 9, vec![], 16).is_err());
    }
}
