//! In-memory batch sources.
//!
//! [`MemSource`] replays a prepared sequence of batches through the operator
//! interface — the plumbing for unit tests, intermediate results, and the
//! build sides of joins.

use x100_vector::{Batch, ValueType};

use crate::{ExecError, Operator};

/// An operator that yields a fixed sequence of batches.
#[derive(Debug)]
pub struct MemSource {
    batches: Vec<Batch>,
    schema: Vec<ValueType>,
    cursor: usize,
    opened: bool,
}

impl MemSource {
    /// Creates a source over prepared batches.
    ///
    /// # Panics
    /// Panics if a batch's column count disagrees with the schema.
    pub fn new(batches: Vec<Batch>, schema: Vec<ValueType>) -> Self {
        for b in &batches {
            assert_eq!(
                b.num_columns(),
                schema.len(),
                "batch column count must match schema"
            );
        }
        MemSource {
            batches,
            schema,
            cursor: 0,
            opened: false,
        }
    }

    /// Creates a source from a single batch, inferring the schema.
    pub fn from_batch(batch: Batch) -> Self {
        let schema = batch.columns().iter().map(|c| c.value_type()).collect();
        MemSource {
            batches: vec![batch],
            schema,
            cursor: 0,
            opened: false,
        }
    }
}

impl Operator for MemSource {
    fn open(&mut self) -> Result<(), ExecError> {
        self.cursor = 0;
        self.opened = true;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        if !self.opened {
            return Err(ExecError::Protocol("next() before open()"));
        }
        if self.cursor >= self.batches.len() {
            return Ok(None);
        }
        let batch = self.batches[self.cursor].clone();
        self.cursor += 1;
        Ok(Some(batch))
    }

    fn close(&mut self) {
        self.opened = false;
    }

    fn schema(&self) -> &[ValueType] {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_vector::Vector;

    #[test]
    fn replays_batches_in_order() {
        let mut src = MemSource::new(
            vec![
                Batch::new(vec![Vector::from_i32(&[1])]),
                Batch::new(vec![Vector::from_i32(&[2, 3])]),
            ],
            vec![ValueType::I32],
        );
        src.open().unwrap();
        assert_eq!(src.next().unwrap().unwrap().column(0).as_i32(), &[1]);
        assert_eq!(src.next().unwrap().unwrap().column(0).as_i32(), &[2, 3]);
        assert!(src.next().unwrap().is_none());
        src.close();
    }

    #[test]
    fn next_before_open_is_protocol_error() {
        let mut src = MemSource::new(vec![], vec![]);
        assert!(matches!(src.next(), Err(ExecError::Protocol(_))));
    }

    #[test]
    fn reopen_restarts() {
        let mut src = MemSource::from_batch(Batch::new(vec![Vector::from_i32(&[7])]));
        src.open().unwrap();
        assert!(src.next().unwrap().is_some());
        assert!(src.next().unwrap().is_none());
        src.open().unwrap();
        assert!(src.next().unwrap().is_some());
    }

    #[test]
    fn schema_inferred_from_batch() {
        let src = MemSource::from_batch(Batch::new(vec![
            Vector::from_i32(&[1]),
            Vector::from_f32(&[1.0]),
        ]));
        assert_eq!(src.schema(), &[ValueType::I32, ValueType::F32]);
    }

    #[test]
    #[should_panic(expected = "must match schema")]
    fn schema_mismatch_rejected() {
        MemSource::new(
            vec![Batch::new(vec![Vector::from_i32(&[1])])],
            vec![ValueType::I32, ValueType::F32],
        );
    }
}
