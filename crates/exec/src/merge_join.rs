//! Merge joins over sorted streams — how boolean retrieval maps to algebra.
//!
//! "The table is ordered on (term,docid), which ... allows the occurrence
//! lists of two arbitrary terms to be combined efficiently using merge-join"
//! (§3.1). Boolean `AND` over posting lists is [`MergeJoin`] (inner),
//! boolean `OR` is [`MergeOuterJoin`] (full outer) — the paper's translation
//! of `"information AND (storing OR retrieval)"` composes exactly these
//! operators (§3.2).
//!
//! Both operators require each input stream to be **strictly increasing** on
//! its key column — true by construction for posting lists, where a docid
//! appears at most once per term. The restriction is checked in debug
//! builds.
//!
//! On the outer join, rows missing from one side carry that side's columns
//! as zero. Term frequency 0 makes the BM25 contribution of a missing term
//! vanish, and `MAX(TD1.docid, TD2.docid)` (the paper's own construction)
//! recovers the real docid — so zero-filling is semantically the paper's
//! NULL handling specialized to IR.

use x100_vector::{Batch, ValueType, Vector, VectorData};

use crate::{ExecError, Operator};

/// One side of a merge: pulls batches, compacts them, exposes a row cursor.
struct SideCursor<'a> {
    op: Box<dyn Operator + 'a>,
    batch: Option<Batch>,
    row: usize,
    key_col: usize,
    last_key: Option<i32>,
    done: bool,
}

impl<'a> SideCursor<'a> {
    fn new(op: Box<dyn Operator + 'a>, key_col: usize) -> Self {
        SideCursor {
            op,
            batch: None,
            row: 0,
            key_col,
            last_key: None,
            done: false,
        }
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.batch = None;
        self.row = 0;
        self.last_key = None;
        self.done = false;
        self.op.open()
    }

    /// Ensures a current row exists; returns false at end of stream.
    fn advance_to_valid(&mut self) -> Result<bool, ExecError> {
        loop {
            if self.done {
                return Ok(false);
            }
            if let Some(b) = &self.batch {
                if self.row < b.num_rows() {
                    return Ok(true);
                }
            }
            match self.op.next()? {
                Some(mut b) => {
                    b.compact();
                    self.row = 0;
                    self.batch = (!b.is_empty()).then_some(b);
                }
                None => {
                    self.done = true;
                    self.batch = None;
                    return Ok(false);
                }
            }
        }
    }

    /// Current key. Caller must have ensured a valid row.
    fn key(&self) -> i32 {
        let b = self.batch.as_ref().expect("valid row");
        b.column(self.key_col).as_i32()[self.row]
    }

    /// Copies the current row's columns into the output builders.
    fn emit_row(&self, out: &mut [Vec<i32>]) {
        let b = self.batch.as_ref().expect("valid row");
        for (c, sink) in out.iter_mut().enumerate() {
            sink.push(b.column(c).as_i32()[self.row]);
        }
    }

    /// Pushes zeros for this side's columns (outer-join miss).
    fn emit_nulls(out: &mut [Vec<i32>]) {
        for sink in out.iter_mut() {
            sink.push(0);
        }
    }

    fn step(&mut self) {
        debug_assert!(self.batch.is_some());
        let key = self.key();
        if let Some(last) = self.last_key {
            debug_assert!(
                key > last,
                "merge-join input must be strictly increasing on the key"
            );
        }
        self.last_key = Some(key);
        self.row += 1;
    }
}

/// How unmatched rows are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    Inner,
    FullOuter,
}

/// Shared machinery behind [`MergeJoin`] and [`MergeOuterJoin`].
struct MergeJoinCore<'a> {
    left: SideCursor<'a>,
    right: SideCursor<'a>,
    kind: JoinKind,
    schema: Vec<ValueType>,
    n_left: usize,
    n_right: usize,
    vector_size: usize,
}

impl<'a> MergeJoinCore<'a> {
    fn new(
        left: Box<dyn Operator + 'a>,
        right: Box<dyn Operator + 'a>,
        left_key: usize,
        right_key: usize,
        kind: JoinKind,
        vector_size: usize,
    ) -> Result<Self, ExecError> {
        let n_left = left.schema().len();
        let n_right = right.schema().len();
        if left_key >= n_left || right_key >= n_right {
            return Err(ExecError::Plan("join key column out of range".into()));
        }
        if left.schema().iter().any(|&t| t != ValueType::I32)
            || right.schema().iter().any(|&t| t != ValueType::I32)
        {
            return Err(ExecError::Plan(
                "merge join supports i32 columns (posting lists)".into(),
            ));
        }
        let schema = vec![ValueType::I32; n_left + n_right];
        Ok(MergeJoinCore {
            left: SideCursor::new(left, left_key),
            right: SideCursor::new(right, right_key),
            kind,
            schema,
            n_left,
            n_right,
            vector_size,
        })
    }

    fn open(&mut self) -> Result<(), ExecError> {
        self.left.open()?;
        self.right.open()
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        let mut sinks: Vec<Vec<i32>> = (0..self.n_left + self.n_right)
            .map(|_| Vec::with_capacity(self.vector_size))
            .collect();
        let mut produced = 0;
        while produced < self.vector_size {
            let l_ok = self.left.advance_to_valid()?;
            let r_ok = self.right.advance_to_valid()?;
            let (lsinks, rsinks) = sinks.split_at_mut(self.n_left);
            match (l_ok, r_ok) {
                (true, true) => {
                    let (lk, rk) = (self.left.key(), self.right.key());
                    match lk.cmp(&rk) {
                        std::cmp::Ordering::Equal => {
                            self.left.emit_row(lsinks);
                            self.right.emit_row(rsinks);
                            self.left.step();
                            self.right.step();
                            produced += 1;
                        }
                        std::cmp::Ordering::Less => {
                            if self.kind == JoinKind::FullOuter {
                                self.left.emit_row(lsinks);
                                SideCursor::emit_nulls(rsinks);
                                produced += 1;
                            }
                            self.left.step();
                        }
                        std::cmp::Ordering::Greater => {
                            if self.kind == JoinKind::FullOuter {
                                SideCursor::emit_nulls(lsinks);
                                self.right.emit_row(rsinks);
                                produced += 1;
                            }
                            self.right.step();
                        }
                    }
                }
                (true, false) => {
                    if self.kind == JoinKind::Inner {
                        break; // no more matches possible
                    }
                    self.left.emit_row(lsinks);
                    SideCursor::emit_nulls(rsinks);
                    self.left.step();
                    produced += 1;
                }
                (false, true) => {
                    if self.kind == JoinKind::Inner {
                        break;
                    }
                    SideCursor::emit_nulls(lsinks);
                    self.right.emit_row(rsinks);
                    self.right.step();
                    produced += 1;
                }
                (false, false) => break,
            }
        }
        if produced == 0 {
            return Ok(None);
        }
        let columns = sinks
            .into_iter()
            .map(|v| Vector::from_data(VectorData::I32(v)))
            .collect();
        Ok(Some(Batch::new(columns)))
    }

    fn close(&mut self) {
        self.left.op.close();
        self.right.op.close();
    }
}

/// Inner merge join on strictly increasing i32 keys — boolean `AND`.
///
/// Output columns: all left columns, then all right columns.
pub struct MergeJoin<'a> {
    core: MergeJoinCore<'a>,
}

impl<'a> MergeJoin<'a> {
    /// Creates an inner merge join of `left` and `right` on the given key
    /// columns.
    pub fn new(
        left: Box<dyn Operator + 'a>,
        right: Box<dyn Operator + 'a>,
        left_key: usize,
        right_key: usize,
        vector_size: usize,
    ) -> Result<Self, ExecError> {
        Ok(MergeJoin {
            core: MergeJoinCore::new(
                left,
                right,
                left_key,
                right_key,
                JoinKind::Inner,
                vector_size,
            )?,
        })
    }
}

impl Operator for MergeJoin<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.core.open()
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        self.core.next()
    }

    fn close(&mut self) {
        self.core.close();
    }

    fn schema(&self) -> &[ValueType] {
        &self.core.schema
    }
}

/// Full outer merge join on strictly increasing i32 keys — boolean `OR`.
///
/// Unmatched sides are zero-filled (see module docs for why that is the
/// right NULL semantics for BM25).
pub struct MergeOuterJoin<'a> {
    core: MergeJoinCore<'a>,
}

impl<'a> MergeOuterJoin<'a> {
    /// Creates a full outer merge join of `left` and `right` on the given
    /// key columns.
    pub fn new(
        left: Box<dyn Operator + 'a>,
        right: Box<dyn Operator + 'a>,
        left_key: usize,
        right_key: usize,
        vector_size: usize,
    ) -> Result<Self, ExecError> {
        Ok(MergeOuterJoin {
            core: MergeJoinCore::new(
                left,
                right,
                left_key,
                right_key,
                JoinKind::FullOuter,
                vector_size,
            )?,
        })
    }
}

impl Operator for MergeOuterJoin<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.core.open()
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        self.core.next()
    }

    fn close(&mut self) {
        self.core.close();
    }

    fn schema(&self) -> &[ValueType] {
        &self.core.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_batches;
    use crate::mem::MemSource;

    /// Posting list as (docid, tf) batches.
    fn postings(rows: &[(i32, i32)]) -> Box<dyn Operator> {
        let docid: Vec<i32> = rows.iter().map(|&(d, _)| d).collect();
        let tf: Vec<i32> = rows.iter().map(|&(_, t)| t).collect();
        Box::new(MemSource::from_batch(Batch::new(vec![
            Vector::from_i32(&docid),
            Vector::from_i32(&tf),
        ])))
    }

    fn rows_of(batches: &[Batch]) -> Vec<Vec<i32>> {
        let mut rows = Vec::new();
        for b in batches {
            for r in 0..b.num_rows() {
                rows.push(
                    (0..b.num_columns())
                        .map(|c| b.column(c).as_i32()[r])
                        .collect(),
                );
            }
        }
        rows
    }

    #[test]
    fn inner_join_is_boolean_and() {
        let left = postings(&[(1, 10), (3, 30), (5, 50), (9, 90)]);
        let right = postings(&[(3, 1), (4, 2), (9, 3)]);
        let join = MergeJoin::new(left, right, 0, 0, 1024).unwrap();
        let rows = rows_of(&collect_batches(join).unwrap());
        assert_eq!(rows, vec![vec![3, 30, 3, 1], vec![9, 90, 9, 3]]);
    }

    #[test]
    fn outer_join_is_boolean_or() {
        let left = postings(&[(1, 10), (3, 30)]);
        let right = postings(&[(2, 5), (3, 7)]);
        let join = MergeOuterJoin::new(left, right, 0, 0, 1024).unwrap();
        let rows = rows_of(&collect_batches(join).unwrap());
        assert_eq!(
            rows,
            vec![vec![1, 10, 0, 0], vec![0, 0, 2, 5], vec![3, 30, 3, 7],]
        );
    }

    #[test]
    fn inner_join_empty_side_is_empty() {
        let join = MergeJoin::new(postings(&[]), postings(&[(1, 1)]), 0, 0, 64).unwrap();
        assert!(collect_batches(join).unwrap().is_empty());
    }

    #[test]
    fn outer_join_empty_side_passes_other_through() {
        let join =
            MergeOuterJoin::new(postings(&[]), postings(&[(1, 1), (2, 2)]), 0, 0, 64).unwrap();
        let rows = rows_of(&collect_batches(join).unwrap());
        assert_eq!(rows, vec![vec![0, 0, 1, 1], vec![0, 0, 2, 2]]);
    }

    #[test]
    fn disjoint_lists_inner_empty_outer_full() {
        let inner = MergeJoin::new(postings(&[(1, 1)]), postings(&[(2, 2)]), 0, 0, 64).unwrap();
        assert!(collect_batches(inner).unwrap().is_empty());
        let outer =
            MergeOuterJoin::new(postings(&[(1, 1)]), postings(&[(2, 2)]), 0, 0, 64).unwrap();
        assert_eq!(rows_of(&collect_batches(outer).unwrap()).len(), 2);
    }

    #[test]
    fn respects_vector_size_in_output() {
        let left = postings(&(0..100).map(|i| (i, i)).collect::<Vec<_>>());
        let right = postings(&(0..100).map(|i| (i, i * 2)).collect::<Vec<_>>());
        let mut join = MergeJoin::new(left, right, 0, 0, 16).unwrap();
        join.open().unwrap();
        let first = join.next().unwrap().unwrap();
        assert_eq!(first.num_rows(), 16);
        join.close();
    }

    #[test]
    fn join_across_multiple_input_batches() {
        let left = Box::new(MemSource::new(
            vec![
                Batch::new(vec![Vector::from_i32(&[1, 2]), Vector::from_i32(&[1, 1])]),
                Batch::new(vec![Vector::from_i32(&[5, 8]), Vector::from_i32(&[1, 1])]),
            ],
            vec![ValueType::I32, ValueType::I32],
        ));
        let right = postings(&[(2, 9), (8, 9)]);
        let join = MergeJoin::new(left, right, 0, 0, 1024).unwrap();
        let rows = rows_of(&collect_batches(join).unwrap());
        assert_eq!(rows, vec![vec![2, 1, 2, 9], vec![8, 1, 8, 9]]);
    }

    #[test]
    fn key_out_of_range_rejected() {
        assert!(MergeJoin::new(postings(&[]), postings(&[]), 5, 0, 64).is_err());
    }

    #[test]
    fn selection_on_input_respected() {
        // A filtered input: only even docids survive into the join.
        use crate::expr::Predicate;
        use crate::select::Select;
        let left = postings(&[(1, 1), (2, 2), (3, 3), (4, 4)]);
        // tf >= 2 filters docid 1 out.
        let filtered = Box::new(Select::new(left, Predicate::ge_i32(1, 2)));
        let right = postings(&[(1, 9), (4, 9)]);
        let join = MergeJoin::new(filtered, right, 0, 0, 64).unwrap();
        let rows = rows_of(&collect_batches(join).unwrap());
        assert_eq!(rows, vec![vec![4, 4, 4, 9]]);
    }
}

#[cfg(test)]
mod protocol_tests {
    use super::*;
    use crate::mem::MemSource;

    fn empty_src() -> Box<dyn Operator> {
        Box::new(MemSource::new(vec![], vec![ValueType::I32, ValueType::I32]))
    }

    #[test]
    fn join_of_two_empty_streams() {
        let mut j = MergeJoin::new(empty_src(), empty_src(), 0, 0, 8).unwrap();
        j.open().unwrap();
        assert!(j.next().unwrap().is_none());
        j.close();
        let mut j = MergeOuterJoin::new(empty_src(), empty_src(), 0, 0, 8).unwrap();
        j.open().unwrap();
        assert!(j.next().unwrap().is_none());
        j.close();
    }

    #[test]
    fn reopen_restarts_join() {
        let mk = || -> Box<dyn Operator> {
            Box::new(MemSource::from_batch(Batch::new(vec![
                Vector::from_i32(&[1, 2, 3]),
                Vector::from_i32(&[9, 9, 9]),
            ])))
        };
        let mut j = MergeJoin::new(mk(), mk(), 0, 0, 8).unwrap();
        j.open().unwrap();
        let first = j.next().unwrap().unwrap().num_rows();
        assert_eq!(first, 3);
        assert!(j.next().unwrap().is_none());
        j.open().unwrap();
        assert_eq!(j.next().unwrap().unwrap().num_rows(), 3);
        j.close();
    }

    #[test]
    fn non_i32_inputs_rejected_at_build() {
        let floats = Box::new(MemSource::from_batch(Batch::new(vec![Vector::from_f32(
            &[1.0],
        )])));
        assert!(MergeJoin::new(floats, empty_src(), 0, 0, 8).is_err());
    }

    #[test]
    fn outer_join_schema_width_is_sum_of_inputs() {
        let j = MergeOuterJoin::new(empty_src(), empty_src(), 0, 0, 8).unwrap();
        assert_eq!(j.schema().len(), 4);
    }
}
