//! The Select operator: filtering via selection vectors.
//!
//! Select evaluates its predicate with a `select_*` primitive and installs
//! the resulting [`x100_vector::SelectionVector`] on the batch — surviving
//! tuples are *not* copied (Figure 1's `Select` node). If the input already
//! carries a selection, the two are intersected.

use x100_vector::{Batch, SelectionVector, ValueType};

use crate::expr::Predicate;
use crate::{ExecError, Operator};

/// Filters batches by a predicate, producing selection vectors.
pub struct Select<'a> {
    input: Box<dyn Operator + 'a>,
    predicate: Predicate,
    scratch: SelectionVector,
}

impl<'a> Select<'a> {
    /// Creates a Select over `input`.
    pub fn new(input: Box<dyn Operator + 'a>, predicate: Predicate) -> Self {
        Select {
            input,
            predicate,
            scratch: SelectionVector::default(),
        }
    }
}

impl Operator for Select<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.input.open()
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        loop {
            let Some(mut batch) = self.input.next()? else {
                return Ok(None);
            };
            self.predicate.eval(&batch, &mut self.scratch)?;
            let mut sel = std::mem::take(&mut self.scratch);
            if let Some(existing) = batch.selection() {
                sel.intersect(existing);
            }
            let empty = sel.is_empty();
            batch.set_selection(Some(sel));
            if !empty {
                return Ok(Some(batch));
            }
            // Fully filtered batch: keep pulling rather than emitting noise.
        }
    }

    fn close(&mut self) {
        self.input.close();
    }

    fn schema(&self) -> &[ValueType] {
        self.input.schema()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemSource;
    use crate::{collect_batches, collect_i32_column};
    use x100_vector::Vector;

    fn src(values: &[i32]) -> Box<dyn Operator> {
        Box::new(MemSource::from_batch(Batch::new(vec![Vector::from_i32(
            values,
        )])))
    }

    #[test]
    fn filters_rows() {
        let sel = Select::new(src(&[5, 1, 9, 3]), Predicate::ge_i32(0, 4));
        assert_eq!(collect_i32_column(sel, 0).unwrap(), vec![5, 9]);
    }

    #[test]
    fn fully_filtered_batches_are_skipped() {
        let sel = Select::new(src(&[1, 2]), Predicate::ge_i32(0, 100));
        assert!(collect_batches(sel).unwrap().is_empty());
    }

    #[test]
    fn stacked_selects_intersect() {
        let inner = Select::new(src(&[1, 2, 3, 4, 5, 6]), Predicate::ge_i32(0, 3));
        let outer = Select::new(Box::new(inner), Predicate::lt_i32(0, 6));
        assert_eq!(collect_i32_column(outer, 0).unwrap(), vec![3, 4, 5]);
    }

    #[test]
    fn selection_does_not_copy_rows() {
        let mut sel = Select::new(src(&[5, 1, 9]), Predicate::ge_i32(0, 4));
        sel.open().unwrap();
        let batch = sel.next().unwrap().unwrap();
        // Physical rows intact; only the selection marks survivors.
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.live_rows(), 2);
        sel.close();
    }

    #[test]
    fn schema_passes_through() {
        let sel = Select::new(src(&[1]), Predicate::eq_i32(0, 1));
        assert_eq!(sel.schema(), &[ValueType::I32]);
    }
}
