//! Table scans at vector granularity.
//!
//! [`TableScan`] reads one or more numeric columns of a stored
//! [`x100_storage::Table`] through the buffer manager, producing one batch
//! of `vector_size` rows per `next()`. A row-range restriction turns it
//! into the paper's `ScanSelect(TD, term=t)`: the IR layer's term range
//! index maps a term to a contiguous `[start, end)` slice of the TD table,
//! and the scan touches only the blocks covering that slice.
//!
//! Stored values are `u32`; they surface as `i32` vectors (docids and term
//! frequencies are far below `i32::MAX` — enforced at index build time).

use std::ops::Range;

use x100_storage::{BufferManager, ColumnScan, Table};
use x100_vector::{Batch, ValueType, Vector, VectorData};

use crate::{ExecError, Operator};

/// Scans a contiguous row range of selected columns of a table.
pub struct TableScan<'a> {
    table: &'a Table,
    buffers: &'a BufferManager,
    column_names: Vec<String>,
    schema: Vec<ValueType>,
    range: Range<usize>,
    vector_size: usize,
    scans: Vec<ColumnScan<'a>>,
    pos: usize,
    scratch: Vec<u32>,
}

impl<'a> TableScan<'a> {
    /// Full-table scan of the named columns.
    pub fn new(
        table: &'a Table,
        buffers: &'a BufferManager,
        columns: &[&str],
        vector_size: usize,
    ) -> Result<Self, ExecError> {
        Self::with_range(table, buffers, columns, 0..table.row_count(), vector_size)
    }

    /// Scan restricted to rows `[range.start, range.end)`.
    pub fn with_range(
        table: &'a Table,
        buffers: &'a BufferManager,
        columns: &[&str],
        range: Range<usize>,
        vector_size: usize,
    ) -> Result<Self, ExecError> {
        if range.end > table.row_count() || range.start > range.end {
            return Err(ExecError::Plan(format!(
                "scan range {range:?} invalid for table of {} rows",
                table.row_count()
            )));
        }
        // Validate the columns exist up front.
        for name in columns {
            table.column(name)?;
        }
        Ok(TableScan {
            table,
            buffers,
            column_names: columns.iter().map(|s| (*s).to_owned()).collect(),
            schema: vec![ValueType::I32; columns.len()],
            range,
            vector_size,
            scans: Vec::new(),
            pos: 0,
            scratch: Vec::new(),
        })
    }
}

impl Operator for TableScan<'_> {
    fn open(&mut self) -> Result<(), ExecError> {
        self.scans.clear();
        for name in &self.column_names {
            let col = self.table.column(name)?;
            let mut scan = ColumnScan::new(col, self.buffers, self.vector_size);
            scan.seek(self.range.start)?;
            self.scans.push(scan);
        }
        self.pos = self.range.start;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Batch>, ExecError> {
        if self.scans.is_empty() && !self.column_names.is_empty() {
            return Err(ExecError::Protocol("next() before open()"));
        }
        let remaining = self.range.end.saturating_sub(self.pos);
        if remaining == 0 {
            return Ok(None);
        }
        let want = self.vector_size.min(remaining);
        let mut columns = Vec::with_capacity(self.scans.len());
        for scan in &mut self.scans {
            // ColumnScan yields up to vector_size values; clamp to the
            // range end by re-seeking is unnecessary — just truncate.
            let produced = scan.next_into(&mut self.scratch)?;
            debug_assert!(produced >= want, "columns are equal length");
            self.scratch.truncate(want);
            let data: Vec<i32> = self.scratch.iter().map(|&v| v as i32).collect();
            columns.push(Vector::from_data(VectorData::I32(data)));
            // Keep all column cursors aligned with the logical position.
            scan.seek(self.pos + want)?;
        }
        self.pos += want;
        Ok(Some(Batch::new(columns)))
    }

    fn close(&mut self) {
        self.scans.clear();
    }

    fn schema(&self) -> &[ValueType] {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_i32_column;
    use x100_compress::Codec;
    use x100_storage::{BufferMode, Column, DiskModel};

    fn setup() -> (Table, BufferManager) {
        let docid: Vec<u32> = (0..3000u32).map(|i| i * 2).collect();
        let tf: Vec<u32> = (0..3000u32).map(|i| 1 + i % 9).collect();
        let mut table = Table::new("TD");
        table.add_column(Column::from_values(
            "docid",
            Codec::PforDelta { width: 8 },
            &docid,
        ));
        table.add_column(Column::from_values("tf", Codec::Pfor { width: 8 }, &tf));
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        (table, bm)
    }

    #[test]
    fn full_scan_matches_source() {
        let (table, bm) = setup();
        let scan = TableScan::new(&table, &bm, &["docid", "tf"], 512).unwrap();
        let docids = collect_i32_column(scan, 0).unwrap();
        assert_eq!(docids.len(), 3000);
        assert_eq!(docids[10], 20);
        let scan = TableScan::new(&table, &bm, &["tf"], 512).unwrap();
        let tf = collect_i32_column(scan, 0).unwrap();
        assert_eq!(tf[10], 1 + 10 % 9);
    }

    #[test]
    fn range_scan_is_scanselect() {
        let (table, bm) = setup();
        let scan = TableScan::with_range(&table, &bm, &["docid"], 100..228, 50).unwrap();
        let docids = collect_i32_column(scan, 0).unwrap();
        assert_eq!(docids.len(), 128);
        assert_eq!(docids[0], 200);
        assert_eq!(docids[127], 454);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let (table, bm) = setup();
        let scan = TableScan::with_range(&table, &bm, &["docid"], 5..5, 50).unwrap();
        assert!(collect_i32_column(scan, 0).unwrap().is_empty());
    }

    #[test]
    fn invalid_range_rejected() {
        let (table, bm) = setup();
        assert!(TableScan::with_range(&table, &bm, &["docid"], 0..9999, 50).is_err());
    }

    #[test]
    fn unknown_column_rejected_at_build() {
        let (table, bm) = setup();
        assert!(TableScan::new(&table, &bm, &["nope"], 50).is_err());
    }

    #[test]
    fn vector_size_respected() {
        let (table, bm) = setup();
        let mut scan = TableScan::new(&table, &bm, &["docid"], 700).unwrap();
        scan.open().unwrap();
        let first = scan.next().unwrap().unwrap();
        assert_eq!(first.num_rows(), 700);
        scan.close();
    }
}

#[cfg(test)]
mod buffer_interaction_tests {
    use super::*;
    use crate::collect_i32_column;
    use x100_compress::Codec;
    use x100_storage::{BufferMode, Column, ColumnBuilder, DiskModel};

    fn multi_block_table() -> Table {
        let values: Vec<u32> = (0..2048u32).collect();
        let mut b = ColumnBuilder::with_block_size("v", Codec::PforDelta { width: 8 }, 256);
        b.extend(&values);
        let mut table = Table::new("t");
        table.add_column(b.finish());
        table
    }

    #[test]
    fn range_scan_touches_only_covering_blocks() {
        let table = multi_block_table();
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        // Rows 512..768 live entirely in block 2 of 8.
        let scan = TableScan::with_range(&table, &bm, &["v"], 512..768, 128).unwrap();
        let got = collect_i32_column(scan, 0).unwrap();
        assert_eq!(got.len(), 256);
        assert_eq!(bm.stats().reads, 1, "only one block should be charged");
    }

    #[test]
    fn full_scan_charges_every_block_once() {
        let table = multi_block_table();
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        let scan = TableScan::new(&table, &bm, &["v"], 100).unwrap();
        let got = collect_i32_column(scan, 0).unwrap();
        assert_eq!(got.len(), 2048);
        assert_eq!(bm.stats().reads, 8);
        // A second scan over a hot pool is free.
        let scan = TableScan::new(&table, &bm, &["v"], 100).unwrap();
        let _ = collect_i32_column(scan, 0).unwrap();
        assert_eq!(bm.stats().reads, 8);
    }

    #[test]
    fn two_column_scan_keeps_columns_aligned() {
        let a: Vec<u32> = (0..1000u32).collect();
        let b: Vec<u32> = (0..1000u32).map(|i| i * 7 % 997).collect();
        let mut table = Table::new("t");
        table.add_column(Column::from_values("a", Codec::Raw, &a));
        table.add_column(Column::from_values("b", Codec::Pfor { width: 8 }, &b));
        let bm = BufferManager::with_mode(DiskModel::instant(), BufferMode::Hot, 0);
        let mut scan = TableScan::with_range(&table, &bm, &["a", "b"], 100..900, 333).unwrap();
        scan.open().unwrap();
        while let Some(batch) = scan.next().unwrap() {
            let xs = batch.column(0).as_i32();
            let ys = batch.column(1).as_i32();
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(*y as u32, (*x as u32) * 7 % 997, "row misalignment at {x}");
            }
        }
        scan.close();
    }
}
