//! Expression trees evaluated one vector at a time.
//!
//! An [`Expr`] is the plan-side description of a computation; evaluating it
//! against a [`Batch`] dispatches to the vectorized primitives of
//! [`crate::primitives`] node by node. The per-node dispatch cost (a `match`
//! and a recursive call) is paid once per *vector*, not per value — exactly
//! the amortization argument of §2.
//!
//! The expression language is deliberately small: arithmetic, natural log,
//! max, an i32→f32 cast, and a positional *gather* through a shared lookup
//! array. The gather is how we express the paper's join with the dense
//! docid-indexed document table `D` (fetching `doclen[docid]` inside the
//! BM25 formula) without a general hash join on the hot path.

use std::sync::Arc;

use x100_vector::{Batch, ValueType, Vector, VectorData};

use crate::primitives as prim;
use crate::ExecError;

/// A typed, vectorized scalar expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Read an `i32` input column.
    ColI32(usize),
    /// Read an `f32` input column.
    ColF32(usize),
    /// An `i32` constant.
    ConstI32(i32),
    /// An `f32` constant.
    ConstF32(f32),
    /// Element-wise addition (both sides same numeric type).
    Add(Box<Expr>, Box<Expr>),
    /// Element-wise subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Element-wise multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Element-wise division (f32 only).
    Div(Box<Expr>, Box<Expr>),
    /// Element-wise maximum (i32 only) — `MAX(TD1.docid, TD2.docid)` in the
    /// paper's outer-join query.
    Max(Box<Expr>, Box<Expr>),
    /// Natural logarithm (f32 only).
    Log(Box<Expr>),
    /// Cast i32 to f32.
    CastF32(Box<Expr>),
    /// Reinterpret i32 *bits* as f32 (`f32::from_bits`). Materialized score
    /// columns are stored and merge-joined as opaque 32-bit integers; this
    /// node recovers the float at scoring time. The all-zero bit pattern an
    /// outer join emits for a missing side decodes to `0.0`, which is the
    /// correct "term absent" score.
    F32FromBits(Box<Expr>),
    /// `values[index[i]]` with an i32 index expression — positional join
    /// against a dense lookup table (document lengths, materialized scores).
    GatherF32 {
        values: Arc<Vec<f32>>,
        index: Box<Expr>,
    },
    /// `values[index[i]]`, i32 payload.
    GatherI32 {
        values: Arc<Vec<i32>>,
        index: Box<Expr>,
    },
}

// The arithmetic constructors intentionally mirror the paper's primitive
// names (`map_add_*`, ...) rather than implementing `std::ops`: an `Expr` is
// a *plan node builder*, and `a + b` syntax would suggest eager evaluation.
#[allow(clippy::should_implement_trait)]
impl Expr {
    // -- ergonomic constructors ------------------------------------------

    /// An i32 column reference.
    pub fn col_i32(idx: usize) -> Expr {
        Expr::ColI32(idx)
    }

    /// An f32 column reference.
    pub fn col_f32(idx: usize) -> Expr {
        Expr::ColF32(idx)
    }

    /// An i32 constant.
    pub fn const_i32(v: i32) -> Expr {
        Expr::ConstI32(v)
    }

    /// An f32 constant.
    pub fn const_f32(v: f32) -> Expr {
        Expr::ConstF32(v)
    }

    /// `a + b`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `a - b`
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `a * b`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `a / b`
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Div(Box::new(a), Box::new(b))
    }

    /// `max(a, b)`
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Max(Box::new(a), Box::new(b))
    }

    /// `ln(a)`
    pub fn log(a: Expr) -> Expr {
        Expr::Log(Box::new(a))
    }

    /// `a as f32`
    pub fn cast_f32(a: Expr) -> Expr {
        Expr::CastF32(Box::new(a))
    }

    /// `f32::from_bits(a as u32)`
    pub fn f32_from_bits(a: Expr) -> Expr {
        Expr::F32FromBits(Box::new(a))
    }

    /// `values[a]` (f32 payload).
    pub fn gather_f32(values: Arc<Vec<f32>>, index: Expr) -> Expr {
        Expr::GatherF32 {
            values,
            index: Box::new(index),
        }
    }

    /// `values[a]` (i32 payload).
    pub fn gather_i32(values: Arc<Vec<i32>>, index: Expr) -> Expr {
        Expr::GatherI32 {
            values,
            index: Box::new(index),
        }
    }

    /// The expression's output type given no context (types are intrinsic
    /// to the node shapes in this small language).
    pub fn output_type(&self) -> ValueType {
        match self {
            Expr::ColI32(_) | Expr::ConstI32(_) | Expr::GatherI32 { .. } => ValueType::I32,
            Expr::ColF32(_)
            | Expr::ConstF32(_)
            | Expr::Div(..)
            | Expr::Log(_)
            | Expr::CastF32(_)
            | Expr::F32FromBits(_)
            | Expr::GatherF32 { .. } => ValueType::F32,
            Expr::Add(a, _) | Expr::Sub(a, _) | Expr::Mul(a, _) => a.output_type(),
            Expr::Max(..) => ValueType::I32,
        }
    }

    /// Evaluates against a batch, producing one vector of `batch.num_rows()`
    /// values (selection is a consumer-side concern; evaluating unselected
    /// positions costs a little compute but keeps every loop branch-free).
    pub fn eval(&self, batch: &Batch) -> Result<Vector, ExecError> {
        let n = batch.num_rows();
        match self {
            Expr::ColI32(idx) => {
                let col = get_col(batch, *idx)?;
                if col.value_type() != ValueType::I32 {
                    return Err(type_err("ColI32", col.value_type()));
                }
                Ok(col.clone())
            }
            Expr::ColF32(idx) => {
                let col = get_col(batch, *idx)?;
                if col.value_type() != ValueType::F32 {
                    return Err(type_err("ColF32", col.value_type()));
                }
                Ok(col.clone())
            }
            Expr::ConstI32(v) => Ok(Vector::from_data(VectorData::I32(vec![*v; n]))),
            Expr::ConstF32(v) => Ok(Vector::from_data(VectorData::F32(vec![*v; n]))),
            Expr::Add(a, b) => self.eval_binary(batch, a, b, BinOp::Add),
            Expr::Sub(a, b) => self.eval_binary(batch, a, b, BinOp::Sub),
            Expr::Mul(a, b) => self.eval_binary(batch, a, b, BinOp::Mul),
            Expr::Div(a, b) => self.eval_binary(batch, a, b, BinOp::Div),
            Expr::Max(a, b) => {
                let (va, vb) = (a.eval(batch)?, b.eval(batch)?);
                let mut out = Vec::new();
                prim::map_max_i32_col_i32_col(as_i32(&va)?, as_i32(&vb)?, &mut out);
                Ok(Vector::from_data(VectorData::I32(out)))
            }
            Expr::Log(a) => {
                let va = a.eval(batch)?;
                let mut out = Vec::new();
                prim::map_log_f32_col(as_f32(&va)?, &mut out);
                Ok(Vector::from_data(VectorData::F32(out)))
            }
            Expr::CastF32(a) => {
                let va = a.eval(batch)?;
                let mut out = Vec::new();
                prim::map_i32_col_to_f32(as_i32(&va)?, &mut out);
                Ok(Vector::from_data(VectorData::F32(out)))
            }
            Expr::F32FromBits(a) => {
                let va = a.eval(batch)?;
                let bits = as_i32(&va)?;
                let out: Vec<f32> = bits.iter().map(|&x| f32::from_bits(x as u32)).collect();
                Ok(Vector::from_data(VectorData::F32(out)))
            }
            Expr::GatherF32 { values, index } => {
                let vi = index.eval(batch)?;
                let idx = as_i32(&vi)?;
                let mut out = Vec::with_capacity(idx.len());
                for &i in idx {
                    let v = values.get(i as usize).copied().ok_or_else(|| {
                        ExecError::Plan(format!("gather index {i} out of bounds"))
                    })?;
                    out.push(v);
                }
                Ok(Vector::from_data(VectorData::F32(out)))
            }
            Expr::GatherI32 { values, index } => {
                let vi = index.eval(batch)?;
                let idx = as_i32(&vi)?;
                let mut out = Vec::with_capacity(idx.len());
                for &i in idx {
                    let v = values.get(i as usize).copied().ok_or_else(|| {
                        ExecError::Plan(format!("gather index {i} out of bounds"))
                    })?;
                    out.push(v);
                }
                Ok(Vector::from_data(VectorData::I32(out)))
            }
        }
    }

    fn eval_binary(
        &self,
        batch: &Batch,
        a: &Expr,
        b: &Expr,
        op: BinOp,
    ) -> Result<Vector, ExecError> {
        let (va, vb) = (a.eval(batch)?, b.eval(batch)?);
        match (va.value_type(), vb.value_type()) {
            (ValueType::F32, ValueType::F32) => {
                let (xa, xb) = (va.as_f32(), vb.as_f32());
                let mut out = Vec::new();
                match op {
                    BinOp::Add => prim::map_add_f32_col_f32_col(xa, xb, &mut out),
                    BinOp::Sub => {
                        out.extend(xa.iter().zip(xb).map(|(&x, &y)| x - y));
                    }
                    BinOp::Mul => prim::map_mul_f32_col_f32_col(xa, xb, &mut out),
                    BinOp::Div => prim::map_div_f32_col_f32_col(xa, xb, &mut out),
                }
                Ok(Vector::from_data(VectorData::F32(out)))
            }
            (ValueType::I32, ValueType::I32) => {
                let (xa, xb) = (va.as_i32(), vb.as_i32());
                let mut out = Vec::new();
                match op {
                    BinOp::Add => prim::map_add_i32_col_i32_col(xa, xb, &mut out),
                    BinOp::Sub => {
                        out.extend(xa.iter().zip(xb).map(|(&x, &y)| x.wrapping_sub(y)));
                    }
                    BinOp::Mul => {
                        out.extend(xa.iter().zip(xb).map(|(&x, &y)| x.wrapping_mul(y)));
                    }
                    BinOp::Div => {
                        return Err(ExecError::Plan(
                            "integer division not supported; cast to f32".into(),
                        ))
                    }
                }
                Ok(Vector::from_data(VectorData::I32(out)))
            }
            (ta, tb) => Err(ExecError::Plan(format!(
                "binary op over mismatched types {ta} and {tb}; insert CastF32"
            ))),
        }
    }
}

#[derive(Clone, Copy)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

fn get_col(batch: &Batch, idx: usize) -> Result<&Vector, ExecError> {
    if idx >= batch.num_columns() {
        return Err(ExecError::Plan(format!(
            "column {idx} out of range ({} columns)",
            batch.num_columns()
        )));
    }
    Ok(batch.column(idx))
}

fn as_i32(v: &Vector) -> Result<&[i32], ExecError> {
    if v.value_type() != ValueType::I32 {
        return Err(type_err("i32 operand", v.value_type()));
    }
    Ok(v.as_i32())
}

fn as_f32(v: &Vector) -> Result<&[f32], ExecError> {
    if v.value_type() != ValueType::F32 {
        return Err(type_err("f32 operand", v.value_type()));
    }
    Ok(v.as_f32())
}

fn type_err(expected: &str, got: ValueType) -> ExecError {
    ExecError::Plan(format!("expected {expected}, got {got}"))
}

/// A filter predicate compiled to a selection primitive.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// `col >= v`
    GeI32 { col: usize, v: i32 },
    /// `col < v`
    LtI32 { col: usize, v: i32 },
    /// `col == v`
    EqI32 { col: usize, v: i32 },
    /// `col >= v` over f32.
    GeF32 { col: usize, v: f32 },
}

impl Predicate {
    /// `col >= v`
    pub fn ge_i32(col: usize, v: i32) -> Self {
        Predicate::GeI32 { col, v }
    }

    /// `col < v`
    pub fn lt_i32(col: usize, v: i32) -> Self {
        Predicate::LtI32 { col, v }
    }

    /// `col == v`
    pub fn eq_i32(col: usize, v: i32) -> Self {
        Predicate::EqI32 { col, v }
    }

    /// `col >= v` (f32)
    pub fn ge_f32(col: usize, v: f32) -> Self {
        Predicate::GeF32 { col, v }
    }

    /// Evaluates into a selection vector over the batch's physical rows.
    pub fn eval(
        &self,
        batch: &Batch,
        sel: &mut x100_vector::SelectionVector,
    ) -> Result<(), ExecError> {
        match self {
            Predicate::GeI32 { col, v } => {
                prim::select_ge_i32_col_i32_val(as_i32(get_col(batch, *col)?)?, *v, sel)
            }
            Predicate::LtI32 { col, v } => {
                prim::select_lt_i32_col_i32_val(as_i32(get_col(batch, *col)?)?, *v, sel)
            }
            Predicate::EqI32 { col, v } => {
                prim::select_eq_i32_col_i32_val(as_i32(get_col(batch, *col)?)?, *v, sel)
            }
            Predicate::GeF32 { col, v } => {
                prim::select_ge_f32_col_f32_val(as_f32(get_col(batch, *col)?)?, *v, sel)
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_vector::Vector;

    fn batch() -> Batch {
        Batch::new(vec![
            Vector::from_i32(&[1, 2, 3]),
            Vector::from_f32(&[10.0, 20.0, 30.0]),
        ])
    }

    #[test]
    fn column_refs_and_consts() {
        let b = batch();
        assert_eq!(Expr::col_i32(0).eval(&b).unwrap().as_i32(), &[1, 2, 3]);
        assert_eq!(
            Expr::const_f32(2.5).eval(&b).unwrap().as_f32(),
            &[2.5, 2.5, 2.5]
        );
    }

    #[test]
    fn arithmetic_i32() {
        let b = batch();
        let e = Expr::add(Expr::col_i32(0), Expr::const_i32(10));
        assert_eq!(e.eval(&b).unwrap().as_i32(), &[11, 12, 13]);
        let e = Expr::mul(Expr::col_i32(0), Expr::col_i32(0));
        assert_eq!(e.eval(&b).unwrap().as_i32(), &[1, 4, 9]);
        let e = Expr::sub(Expr::col_i32(0), Expr::const_i32(1));
        assert_eq!(e.eval(&b).unwrap().as_i32(), &[0, 1, 2]);
    }

    #[test]
    fn arithmetic_f32_and_log() {
        let b = batch();
        let e = Expr::div(Expr::col_f32(1), Expr::const_f32(10.0));
        assert_eq!(e.eval(&b).unwrap().as_f32(), &[1.0, 2.0, 3.0]);
        let e = Expr::log(Expr::const_f32(1.0));
        assert_eq!(e.eval(&b).unwrap().as_f32(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn cast_bridges_types() {
        let b = batch();
        let e = Expr::mul(Expr::cast_f32(Expr::col_i32(0)), Expr::col_f32(1));
        assert_eq!(e.eval(&b).unwrap().as_f32(), &[10.0, 40.0, 90.0]);
    }

    #[test]
    fn mismatched_types_need_cast() {
        let b = batch();
        let e = Expr::add(Expr::col_i32(0), Expr::col_f32(1));
        assert!(matches!(e.eval(&b), Err(ExecError::Plan(_))));
    }

    #[test]
    fn integer_division_rejected() {
        let b = batch();
        let e = Expr::div(Expr::col_i32(0), Expr::const_i32(2));
        assert!(matches!(e.eval(&b), Err(ExecError::Plan(_))));
    }

    #[test]
    fn f32_from_bits_roundtrips() {
        let bits: Vec<i32> = [1.5f32, 0.0, -2.25]
            .iter()
            .map(|v| v.to_bits() as i32)
            .collect();
        let b = Batch::new(vec![Vector::from_i32(&bits)]);
        let e = Expr::f32_from_bits(Expr::col_i32(0));
        assert_eq!(e.eval(&b).unwrap().as_f32(), &[1.5, 0.0, -2.25]);
    }

    #[test]
    fn max_picks_larger() {
        let b = batch();
        let e = Expr::max(Expr::col_i32(0), Expr::const_i32(2));
        assert_eq!(e.eval(&b).unwrap().as_i32(), &[2, 2, 3]);
    }

    #[test]
    fn gather_looks_up_dense_table() {
        let b = batch();
        let lens = Arc::new(vec![100.0f32, 200.0, 300.0, 400.0]);
        let e = Expr::gather_f32(lens, Expr::col_i32(0));
        assert_eq!(e.eval(&b).unwrap().as_f32(), &[200.0, 300.0, 400.0]);
    }

    #[test]
    fn gather_out_of_bounds_is_plan_error() {
        let b = batch();
        let e = Expr::gather_i32(Arc::new(vec![1]), Expr::col_i32(0));
        assert!(matches!(e.eval(&b), Err(ExecError::Plan(_))));
    }

    #[test]
    fn bad_column_index_is_plan_error() {
        let b = batch();
        assert!(matches!(Expr::col_i32(9).eval(&b), Err(ExecError::Plan(_))));
    }

    #[test]
    fn output_types() {
        assert_eq!(Expr::col_i32(0).output_type(), ValueType::I32);
        assert_eq!(
            Expr::add(Expr::col_f32(0), Expr::col_f32(1)).output_type(),
            ValueType::F32
        );
        assert_eq!(
            Expr::cast_f32(Expr::col_i32(0)).output_type(),
            ValueType::F32
        );
    }

    #[test]
    fn predicates_build_selections() {
        let b = batch();
        let mut sel = x100_vector::SelectionVector::default();
        Predicate::ge_i32(0, 2).eval(&b, &mut sel).unwrap();
        assert_eq!(sel.positions(), &[1, 2]);
        Predicate::lt_i32(0, 2).eval(&b, &mut sel).unwrap();
        assert_eq!(sel.positions(), &[0]);
        Predicate::eq_i32(0, 3).eval(&b, &mut sel).unwrap();
        assert_eq!(sel.positions(), &[2]);
        Predicate::ge_f32(1, 15.0).eval(&b, &mut sel).unwrap();
        assert_eq!(sel.positions(), &[1, 2]);
    }
}
