//! Relevance judgments and early-precision evaluation.
//!
//! TREC-TB measures effectiveness by **p@20** — the fraction of the top 20
//! returned documents that are relevant — over a 50-query judged subset
//! (§3.1, Table 1, Table 2). Our judgments are *generative* (planted at
//! collection-build time) rather than human, which preserves the property
//! Table 2 actually demonstrates: ranking models that exploit term
//! frequency (BM25, quantized BM25) find the relevant documents; boolean
//! retrieval does not.

use std::collections::HashSet;

/// A judged query: its term ids and the planted relevant document set.
#[derive(Debug, Clone)]
pub struct EvalQuery {
    /// Distinct term ids.
    pub terms: Vec<u32>,
    /// Relevant document ids.
    pub relevant: HashSet<u32>,
}

/// Precision at cutoff `k`: `|top-k ∩ relevant| / k`.
///
/// Matches TREC conventions: the divisor is `k` even if fewer than `k`
/// documents were returned (unreturned slots count as misses).
pub fn precision_at_k(ranked: &[u32], relevant: &HashSet<u32>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|d| relevant.contains(d))
        .count();
    hits as f64 / k as f64
}

/// Mean p@k over many queries (the paper's headline effectiveness number).
pub fn mean_precision_at_k(runs: &[(Vec<u32>, &HashSet<u32>)], k: usize) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|(ranked, relevant)| precision_at_k(ranked, relevant, k))
        .sum::<f64>()
        / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(ids: &[u32]) -> HashSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let relevant = rel(&[1, 2, 3]);
        assert_eq!(precision_at_k(&[1, 2, 3], &relevant, 3), 1.0);
    }

    #[test]
    fn misses_count_against_k() {
        let relevant = rel(&[1]);
        // Only 1 of top-4 relevant.
        assert_eq!(precision_at_k(&[1, 9, 8, 7], &relevant, 4), 0.25);
    }

    #[test]
    fn short_result_lists_penalized() {
        let relevant = rel(&[1, 2]);
        // Returned only 2 docs but k=4: 2/4.
        assert_eq!(precision_at_k(&[1, 2], &relevant, 4), 0.5);
    }

    #[test]
    fn only_top_k_considered() {
        let relevant = rel(&[5]);
        // Relevant doc ranked 3rd does not help p@2.
        assert_eq!(precision_at_k(&[9, 8, 5], &relevant, 2), 0.0);
    }

    #[test]
    fn k_zero_is_zero() {
        assert_eq!(precision_at_k(&[1], &rel(&[1]), 0), 0.0);
    }

    #[test]
    fn mean_over_queries() {
        let r1 = rel(&[1]);
        let r2 = rel(&[2]);
        let runs = vec![(vec![1u32, 9], &r1), (vec![9u32, 8], &r2)];
        assert_eq!(mean_precision_at_k(&runs, 2), 0.25); // (0.5 + 0.0) / 2
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean_precision_at_k(&[], 20), 0.0);
    }
}
