//! Synthetic collection generation.
//!
//! The generator works in three phases, all driven by one seeded RNG so the
//! whole workload is reproducible from `CollectionConfig::seed`:
//!
//! 1. **Queries first** — the evaluation queries and their planted relevant
//!    document sets are drawn before any document exists.
//! 2. **Documents** — each document draws a length, then fills itself with
//!    Zipf-distributed terms. If the document was planted as relevant to
//!    some evaluation query, each of that query's terms is injected with a
//!    boosted term frequency.
//! 3. **Efficiency log** — a larger, unjudged query stream with the same
//!    length/selectivity profile (the 50 000-query analogue).

use rand::Rng;

use crate::eval::EvalQuery;
use crate::query::QueryLogConfig;

/// Generation parameters for the synthetic collection.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionConfig {
    /// Number of documents (the paper's GOV2 has 25 M; defaults here are
    /// laptop-scale while keeping list-length *ratios* similar).
    pub num_docs: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Mean document length in term occurrences.
    pub avg_doc_len: usize,
    /// Zipf exponent for the term distribution.
    pub zipf_exponent: f64,
    /// Number of judged evaluation queries (the paper uses 50).
    pub num_eval_queries: usize,
    /// Relevant documents planted per evaluation query.
    pub relevant_per_query: usize,
    /// Term-frequency boost range `[lo, hi]` injected into relevant
    /// documents for their query's terms.
    pub boost_tf: (u32, u32),
    /// Query-log shape shared by evaluation and efficiency queries.
    pub query_log: QueryLogConfig,
    /// Number of unjudged efficiency queries.
    pub num_efficiency_queries: usize,
    /// Master RNG seed.
    pub seed: u64,
}

impl CollectionConfig {
    /// A millisecond-scale collection for unit tests and doctests.
    pub fn tiny() -> Self {
        CollectionConfig {
            num_docs: 300,
            vocab_size: 500,
            avg_doc_len: 60,
            zipf_exponent: 1.0,
            num_eval_queries: 5,
            relevant_per_query: 10,
            boost_tf: (3, 8),
            query_log: QueryLogConfig::tiny(),
            num_efficiency_queries: 30,
            seed: 0x5EED,
        }
    }

    /// A second-scale collection for integration tests.
    pub fn small() -> Self {
        CollectionConfig {
            num_docs: 10_000,
            vocab_size: 8_000,
            avg_doc_len: 120,
            zipf_exponent: 1.0,
            num_eval_queries: 20,
            relevant_per_query: 30,
            boost_tf: (3, 9),
            query_log: QueryLogConfig::default(),
            num_efficiency_queries: 300,
            seed: 0x5EED,
        }
    }

    /// The benchmark-harness scale used to regenerate Tables 2 and 3
    /// (minutes of end-to-end run time in release mode). Alias of
    /// [`CollectionConfig::medium`] — the `--scale medium` parameters.
    pub fn benchmark() -> Self {
        Self::medium()
    }
}

impl Default for CollectionConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// One synthetic document: sorted `(term, tf)` pairs plus metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Dense id, equal to the document's index in the collection.
    pub id: u32,
    /// Stable synthetic name (what the paper's final Project fetches).
    pub name: String,
    /// Distinct terms with their within-document frequency, sorted by term.
    pub terms: Vec<(u32, u32)>,
    /// Total length in term occurrences (`sum of tf`).
    pub len: u32,
}

/// The full synthetic workload: documents, vocabulary, judged queries and
/// the efficiency query stream.
#[derive(Debug, Clone)]
pub struct SyntheticCollection {
    /// The configuration it was generated from.
    pub config: CollectionConfig,
    /// All documents; `docs[i].id == i`.
    pub docs: Vec<Document>,
    /// Term strings; term id `t` is `vocab[t]` (= `"term{t}"`).
    pub vocab: Vec<String>,
    /// Judged queries with planted relevance.
    pub eval_queries: Vec<EvalQuery>,
    /// Unjudged efficiency queries (term-id lists).
    pub efficiency_log: Vec<Vec<u32>>,
}

impl SyntheticCollection {
    /// Generates the collection deterministically from the config.
    ///
    /// This is the materializing form of [`crate::CollectionStream`]: all
    /// three phases (evaluation queries with planted relevance, documents,
    /// efficiency log) run off one seeded RNG, and the whole document set is
    /// held in memory. At [`crate::Scale::Medium`] and beyond, prefer
    /// streaming chunks instead — the output is bit-identical.
    pub fn generate(config: &CollectionConfig) -> Self {
        crate::stream::CollectionStream::new(config).collect_all()
    }

    /// Total term occurrences across the collection.
    pub fn total_occurrences(&self) -> u64 {
        self.docs.iter().map(|d| u64::from(d.len)).sum()
    }

    /// Average document length.
    pub fn avg_doc_len(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_occurrences() as f64 / self.docs.len() as f64
        }
    }

    /// Document frequency of a term (number of documents containing it) —
    /// `f_{T,D}` in the paper's BM25 notation.
    pub fn document_frequency(&self, term: u32) -> usize {
        self.docs
            .iter()
            .filter(|d| d.terms.binary_search_by_key(&term, |&(t, _)| t).is_ok())
            .count()
    }
}

/// Document lengths: a geometric-ish two-sided spread around the mean with
/// a floor of 8 occurrences, giving BM25's length normalization something
/// to normalize.
pub(crate) fn draw_doc_len(avg: usize, rng: &mut impl Rng) -> usize {
    let avg = avg.max(8) as f64;
    // Log-uniform multiplier in [0.3, 3.0]: median ~0.95, long right tail.
    let factor = (rng.gen::<f64>() * (3.0f64 / 0.3).ln()).exp() * 0.3;
    (avg * factor).round().max(8.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CollectionConfig::tiny();
        let a = SyntheticCollection::generate(&cfg);
        let b = SyntheticCollection::generate(&cfg);
        assert_eq!(a.docs, b.docs);
        assert_eq!(a.efficiency_log, b.efficiency_log);
        assert_eq!(a.eval_queries.len(), b.eval_queries.len());
        for (qa, qb) in a.eval_queries.iter().zip(&b.eval_queries) {
            assert_eq!(qa.terms, qb.terms);
            assert_eq!(qa.relevant, qb.relevant);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = CollectionConfig::tiny();
        let a = SyntheticCollection::generate(&cfg);
        cfg.seed += 1;
        let b = SyntheticCollection::generate(&cfg);
        assert_ne!(a.docs, b.docs);
    }

    #[test]
    fn document_invariants_hold() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        assert_eq!(c.docs.len(), c.config.num_docs);
        for (i, d) in c.docs.iter().enumerate() {
            assert_eq!(d.id as usize, i);
            assert!(!d.terms.is_empty());
            // Terms sorted, distinct, in-vocabulary, tf >= 1.
            assert!(d.terms.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(d
                .terms
                .iter()
                .all(|&(t, tf)| { (t as usize) < c.config.vocab_size && tf >= 1 }));
            assert_eq!(d.len, d.terms.iter().map(|&(_, tf)| tf).sum::<u32>());
        }
    }

    #[test]
    fn avg_doc_len_near_target() {
        let c = SyntheticCollection::generate(&CollectionConfig::small());
        let target = c.config.avg_doc_len as f64;
        let got = c.avg_doc_len();
        assert!(
            (got - target).abs() < target * 0.35,
            "avg len {got} vs target {target}"
        );
    }

    #[test]
    fn zipf_head_terms_have_high_df() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let head = c.document_frequency(0);
        let tail = c.document_frequency((c.config.vocab_size - 1) as u32);
        assert!(head > tail, "head df {head} vs tail df {tail}");
        assert!(
            head > c.docs.len() / 2,
            "rank-0 term should be near-universal"
        );
    }

    #[test]
    fn relevant_docs_contain_query_terms_boosted() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        for q in &c.eval_queries {
            for &d in &q.relevant {
                let doc = &c.docs[d as usize];
                for &t in &q.terms {
                    let tf = doc
                        .terms
                        .binary_search_by_key(&t, |&(t2, _)| t2)
                        .map(|i| doc.terms[i].1)
                        .unwrap_or(0);
                    assert!(
                        tf >= c.config.boost_tf.0,
                        "relevant doc {d} lacks boosted term {t} (tf={tf})"
                    );
                }
            }
        }
    }

    #[test]
    fn query_logs_have_sane_shape() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        assert_eq!(c.efficiency_log.len(), c.config.num_efficiency_queries);
        for q in &c.efficiency_log {
            assert!(!q.is_empty());
            assert!(q.iter().all(|&t| (t as usize) < c.config.vocab_size));
            // Terms within a query are distinct.
            let set: HashSet<_> = q.iter().collect();
            assert_eq!(set.len(), q.len());
        }
    }

    #[test]
    fn vocab_names_match_ids() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        assert_eq!(c.vocab[7], "term7");
        assert_eq!(c.vocab.len(), c.config.vocab_size);
    }
}
