//! Streaming, chunked collection generation — the `medium`/`large` scale
//! path.
//!
//! [`SyntheticCollection::generate`] materializes every document at once,
//! which is fine up to [`Scale::Small`](crate::Scale) but wasteful at the
//! 100 k-document `medium` scale and prohibitive at `large` (1 M documents,
//! ~250 M term occurrences). [`CollectionStream`] produces the *identical*
//! document sequence in bounded chunks: phase 1 (evaluation queries and
//! planted relevance) runs eagerly at construction, documents are drawn
//! lazily per [`CollectionStream::next_chunk`] call, and phase 3 (the
//! efficiency query log) runs when the exhausted stream is
//! [`finish`](CollectionStream::finish)ed.
//!
//! All three phases consume one seeded RNG in the same order as the batch
//! generator, so for any configuration the streamed documents concatenate to
//! exactly [`SyntheticCollection::generate`]'s output — a property the
//! test-suite pins down. Consumers that need bounded memory (streaming index
//! builders, the cluster simulation) pull chunks and drop them; the whole
//! collection is never resident.

use std::collections::{BTreeMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::collection::{draw_doc_len, CollectionConfig, Document, SyntheticCollection};
use crate::eval::EvalQuery;
use crate::query::{sample_query_terms, QueryLogConfig};
use crate::zipf::ZipfSampler;

/// Default documents per chunk when the caller has no scale-specific
/// preference (see [`crate::Scale::chunk_size`]).
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// What remains of the workload once every document chunk has been drained:
/// the judged queries and the efficiency query stream.
#[derive(Debug, Clone)]
pub struct CollectionTail {
    /// Judged queries with planted relevance (phase 1).
    pub eval_queries: Vec<EvalQuery>,
    /// Unjudged efficiency queries (phase 3).
    pub efficiency_log: Vec<Vec<u32>>,
}

/// Incremental generator yielding documents in bounded chunks.
///
/// ```
/// use x100_corpus::{CollectionConfig, CollectionStream};
///
/// let cfg = CollectionConfig::tiny();
/// let mut stream = CollectionStream::new(&cfg);
/// let mut total = 0;
/// while let Some(chunk) = stream.next_chunk(128) {
///     total += chunk.len();
/// }
/// assert_eq!(total, cfg.num_docs);
/// let tail = stream.finish();
/// assert_eq!(tail.eval_queries.len(), cfg.num_eval_queries);
/// ```
#[derive(Debug, Clone)]
pub struct CollectionStream {
    config: CollectionConfig,
    rng: StdRng,
    zipf: ZipfSampler,
    eval_queries: Vec<EvalQuery>,
    /// docid -> indexes of the eval queries it was planted relevant to.
    planted: BTreeMap<u32, Vec<usize>>,
    next_doc: u32,
}

impl CollectionStream {
    /// Runs phase 1 (evaluation queries + planted relevance) and positions
    /// the stream before document 0.
    pub fn new(config: &CollectionConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zipf = ZipfSampler::new(config.vocab_size, config.zipf_exponent);

        // Judged topics draw from the mid-frequency band only; see the
        // phase-1 commentary in [`SyntheticCollection::generate`].
        let eval_log_cfg = QueryLogConfig {
            tail_prob: 0.0,
            ..config.query_log.clone()
        };
        let mut eval_queries: Vec<EvalQuery> = Vec::with_capacity(config.num_eval_queries);
        let mut planted: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for qi in 0..config.num_eval_queries {
            let terms = sample_query_terms(&eval_log_cfg, config.vocab_size, &mut rng);
            let mut relevant = HashSet::with_capacity(config.relevant_per_query);
            while relevant.len() < config.relevant_per_query.min(config.num_docs) {
                let d = rng.gen_range(0..config.num_docs as u32);
                if relevant.insert(d) {
                    planted.entry(d).or_default().push(qi);
                }
            }
            eval_queries.push(EvalQuery { terms, relevant });
        }

        CollectionStream {
            config: config.clone(),
            rng,
            zipf,
            eval_queries,
            planted,
            next_doc: 0,
        }
    }

    /// The configuration this stream generates from.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// The judged queries (available immediately; phase 1 is eager).
    pub fn eval_queries(&self) -> &[EvalQuery] {
        &self.eval_queries
    }

    /// Documents not yet yielded.
    pub fn docs_remaining(&self) -> usize {
        self.config.num_docs - self.next_doc as usize
    }

    /// The vocabulary strings (`vocab[t] == "term{t}"`), identical to the
    /// batch generator's.
    pub fn vocab(&self) -> Vec<String> {
        (0..self.config.vocab_size)
            .map(|t| format!("term{t}"))
            .collect()
    }

    /// Draws up to `max_docs` further documents, or `None` once the
    /// collection is exhausted.
    pub fn next_chunk(&mut self, max_docs: usize) -> Option<Vec<Document>> {
        let mut docs = Vec::new();
        match self.next_chunk_into(max_docs, &mut docs) {
            0 => None,
            _ => Some(docs),
        }
    }

    /// Draws up to `max_docs` further documents into `out` (cleared first),
    /// returning how many were produced — 0 means the collection is
    /// exhausted. Long-running consumers (the budgeted spill builders, the
    /// scale pipeline) reuse one chunk buffer across the whole stream
    /// instead of allocating a fresh `Vec` per chunk.
    pub fn next_chunk_into(&mut self, max_docs: usize, out: &mut Vec<Document>) -> usize {
        assert!(max_docs > 0, "chunk size must be positive");
        out.clear();
        let take = max_docs.min(self.docs_remaining());
        out.reserve(take);
        for _ in 0..take {
            let id = self.next_doc;
            self.next_doc += 1;
            out.push(self.draw_document(id));
        }
        take
    }

    /// One document, phase-2 style: Zipf term draws plus boosted injection
    /// of any eval-query terms this docid was planted relevant to.
    fn draw_document(&mut self, id: u32) -> Document {
        let len_target = draw_doc_len(self.config.avg_doc_len, &mut self.rng);
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        let mut drawn = 0usize;
        while drawn < len_target {
            let t = self.zipf.sample(&mut self.rng) as u32;
            *counts.entry(t).or_insert(0) += 1;
            drawn += 1;
        }
        if let Some(queries) = self.planted.get(&id) {
            for &qi in queries {
                for &t in &self.eval_queries[qi].terms {
                    let boost = self
                        .rng
                        .gen_range(self.config.boost_tf.0..=self.config.boost_tf.1);
                    *counts.entry(t).or_insert(0) += boost;
                }
            }
        }
        let terms: Vec<(u32, u32)> = counts.into_iter().collect();
        let len: u32 = terms.iter().map(|&(_, tf)| tf).sum();
        Document {
            id,
            name: format!("doc-{id:08}"),
            terms,
            len,
        }
    }

    /// Runs phase 3 (the efficiency query log) and returns the workload
    /// tail. Any documents not yet pulled are drawn and discarded first, so
    /// the RNG state — and therefore the log — matches the batch generator
    /// regardless of how far the caller streamed.
    pub fn finish(mut self) -> CollectionTail {
        while self.next_chunk(DEFAULT_CHUNK_SIZE).is_some() {}
        let efficiency_log = (0..self.config.num_efficiency_queries)
            .map(|_| {
                sample_query_terms(
                    &self.config.query_log,
                    self.config.vocab_size,
                    &mut self.rng,
                )
            })
            .collect();
        CollectionTail {
            eval_queries: self.eval_queries,
            efficiency_log,
        }
    }

    /// Drains the stream into a materialized [`SyntheticCollection`] —
    /// the batch generator is this, called from document 0.
    pub fn collect_all(mut self) -> SyntheticCollection {
        let mut docs = Vec::with_capacity(self.docs_remaining());
        while let Some(chunk) = self.next_chunk(DEFAULT_CHUNK_SIZE) {
            docs.extend(chunk);
        }
        let vocab = self.vocab();
        let config = self.config.clone();
        let tail = self.finish();
        SyntheticCollection {
            config,
            docs,
            vocab,
            eval_queries: tail.eval_queries,
            efficiency_log: tail.efficiency_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_chunks_concatenate_to_batch_output() {
        let cfg = CollectionConfig::tiny();
        let batch = SyntheticCollection::generate(&cfg);
        let mut stream = CollectionStream::new(&cfg);
        let mut docs = Vec::new();
        // Deliberately ragged chunk sizes: chunking must not affect output.
        for chunk_size in [1usize, 7, 64, 200, 1000].iter().cycle() {
            match stream.next_chunk(*chunk_size) {
                Some(chunk) => docs.extend(chunk),
                None => break,
            }
        }
        assert_eq!(docs, batch.docs);
        let tail = stream.finish();
        assert_eq!(tail.efficiency_log, batch.efficiency_log);
        assert_eq!(tail.eval_queries.len(), batch.eval_queries.len());
        for (a, b) in tail.eval_queries.iter().zip(&batch.eval_queries) {
            assert_eq!(a.terms, b.terms);
            assert_eq!(a.relevant, b.relevant);
        }
    }

    #[test]
    fn finish_drains_unpulled_documents() {
        let cfg = CollectionConfig::tiny();
        let batch = SyntheticCollection::generate(&cfg);
        // Pull only one small chunk, then finish: the efficiency log must
        // still match (the remaining docs are drawn and discarded).
        let mut stream = CollectionStream::new(&cfg);
        let _ = stream.next_chunk(10);
        let tail = stream.finish();
        assert_eq!(tail.efficiency_log, batch.efficiency_log);
    }

    #[test]
    fn docs_remaining_counts_down() {
        let cfg = CollectionConfig::tiny();
        let mut stream = CollectionStream::new(&cfg);
        assert_eq!(stream.docs_remaining(), cfg.num_docs);
        let chunk = stream.next_chunk(100).unwrap();
        assert_eq!(chunk.len(), 100);
        assert_eq!(stream.docs_remaining(), cfg.num_docs - 100);
        while stream.next_chunk(100).is_some() {}
        assert_eq!(stream.docs_remaining(), 0);
    }

    #[test]
    fn next_chunk_into_reuses_buffer_and_matches_batch() {
        let cfg = CollectionConfig::tiny();
        let batch = SyntheticCollection::generate(&cfg);
        let mut stream = CollectionStream::new(&cfg);
        let mut buf = Vec::new();
        let mut docs = Vec::new();
        while stream.next_chunk_into(77, &mut buf) > 0 {
            docs.extend(buf.iter().cloned());
        }
        assert_eq!(docs, batch.docs);
        assert_eq!(stream.next_chunk_into(77, &mut buf), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn exhausted_stream_yields_none() {
        let cfg = CollectionConfig::tiny();
        let mut stream = CollectionStream::new(&cfg);
        while stream.next_chunk(512).is_some() {}
        assert!(stream.next_chunk(512).is_none());
    }

    #[test]
    fn vocab_matches_batch() {
        let cfg = CollectionConfig::tiny();
        let stream = CollectionStream::new(&cfg);
        assert_eq!(stream.vocab(), SyntheticCollection::generate(&cfg).vocab);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let mut stream = CollectionStream::new(&CollectionConfig::tiny());
        let _ = stream.next_chunk(0);
    }
}
