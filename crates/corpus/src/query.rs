//! Query-log generation.
//!
//! The TREC-TB efficiency task replays 50 000 keyword queries whose average
//! length is 2.3 terms, "with each term occurring in 775 thousand documents
//! on average" (§3.2) — i.e. query terms are *mid-frequency*: users rarely
//! search for stopwords or for hapaxes. The sampler draws query lengths from
//! a truncated geometric distribution calibrated to the configured mean, and
//! terms Zipf-weighted from a rank band that excludes the extreme head and
//! the long tail.

use rand::Rng;

use crate::zipf::ZipfSampler;

/// Shape of generated queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLogConfig {
    /// Target mean query length (paper: 2.3).
    pub avg_terms: f64,
    /// Maximum query length.
    pub max_terms: usize,
    /// Query terms are drawn from vocabulary ranks
    /// `[head_skip, head_skip + band_size)`: skipping the head avoids
    /// stopword-like terms, bounding the band avoids hapaxes.
    pub head_skip: usize,
    /// Width of the rank band queries draw from.
    pub band_size: usize,
    /// Zipf exponent within the band (flatter than the corpus: real query
    /// logs reuse mid-frequency terms less steeply).
    pub band_exponent: f64,
    /// Probability that a query term is drawn uniformly from the *tail*
    /// beyond the band instead. Tail terms have short posting lists, so
    /// conjunctive first passes over such queries come up short — this is
    /// what drives the paper's "roughly 15% of the 50,000 queries required
    /// a second pass".
    pub tail_prob: f64,
}

impl QueryLogConfig {
    /// Matches the tiny test collection.
    pub fn tiny() -> Self {
        QueryLogConfig {
            avg_terms: 2.3,
            max_terms: 6,
            head_skip: 3,
            band_size: 120,
            band_exponent: 0.6,
            tail_prob: 0.1,
        }
    }
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        // Calibrated (see x100-bench's scratch_tune probe) so conjunctive
        // result sets are far larger than the top-20 cutoff: the paper's
        // query terms occur "in 775 thousand documents on average" — long
        // posting lists are what make unranked boolean retrieval useless
        // (Table 2's p@20 of 0.013) while tf-aware BM25 stays precise.
        QueryLogConfig {
            avg_terms: 2.3,
            max_terms: 8,
            head_skip: 5,
            band_size: 150,
            band_exponent: 1.0,
            tail_prob: 0.09,
        }
    }
}

/// Draws one query's distinct term ids.
///
/// Always returns at least one term; duplicates within a query are
/// rejected/redrawn (keyword queries don't repeat words).
pub fn sample_query_terms(
    config: &QueryLogConfig,
    vocab_size: usize,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let band_size = config
        .band_size
        .min(vocab_size.saturating_sub(config.head_skip))
        .max(1);
    let head_skip = config.head_skip.min(vocab_size - 1);
    let zipf = ZipfSampler::new(band_size, config.band_exponent);

    let tail_start = head_skip + band_size;
    let len = draw_query_len(config.avg_terms, config.max_terms, rng);
    let mut terms: Vec<u32> = Vec::with_capacity(len);
    let mut attempts = 0;
    while terms.len() < len && attempts < len * 20 {
        attempts += 1;
        let t = if tail_start < vocab_size && rng.gen::<f64>() < config.tail_prob {
            // A rare term from beyond the band (short posting list).
            rng.gen_range(tail_start..vocab_size) as u32
        } else {
            (head_skip + zipf.sample(rng)) as u32
        };
        if !terms.contains(&t) {
            terms.push(t);
        }
    }
    if terms.is_empty() {
        terms.push(head_skip as u32);
    }
    terms
}

/// A seeded, endless Zipfian query-log generator — the serving harness's
/// traffic source.
///
/// A collection's canned `efficiency_log` is a fixed-size sample; load
/// testing wants an *open-ended* stream with the same statistics (Zipf
/// band term selection, ~2.3-term mean length) that can be drawn once for
/// a sequential reference run and re-drawn identically for each concurrent
/// run. The generator is deterministic in `(config, vocab_size, seed)` and
/// implements [`Iterator`], so `generator.take(n)` is a reproducible
/// query log of any length.
#[derive(Debug, Clone)]
pub struct QueryLogGenerator {
    config: QueryLogConfig,
    vocab_size: usize,
    rng: rand::rngs::StdRng,
}

impl QueryLogGenerator {
    /// A generator over `vocab_size` term ids, deterministic in `seed`.
    ///
    /// # Panics
    /// Panics if `vocab_size == 0`.
    pub fn new(config: QueryLogConfig, vocab_size: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        QueryLogGenerator {
            config,
            vocab_size,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl Iterator for QueryLogGenerator {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Self::Item> {
        Some(sample_query_terms(
            &self.config,
            self.vocab_size,
            &mut self.rng,
        ))
    }
}

/// Truncated geometric length: `P(len = k) ∝ (1-p)^(k-1) p` with `p` chosen
/// so the mean is `avg` (for an untruncated geometric, mean = 1/p).
fn draw_query_len(avg: f64, max: usize, rng: &mut impl Rng) -> usize {
    let p = (1.0 / avg.max(1.0)).clamp(0.05, 1.0);
    let mut len = 1;
    while len < max && rng.gen::<f64>() > p {
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_length_near_2_3() {
        let cfg = QueryLogConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let total: usize = (0..n)
            .map(|_| sample_query_terms(&cfg, 40_000, &mut rng).len())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.3).abs() < 0.25, "mean query length {mean}");
    }

    #[test]
    fn terms_distinct_and_in_band_or_tail() {
        let cfg = QueryLogConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut tail_terms = 0usize;
        let mut total_terms = 0usize;
        for _ in 0..1000 {
            let q = sample_query_terms(&cfg, 40_000, &mut rng);
            assert!(!q.is_empty());
            assert!(q.len() <= cfg.max_terms);
            for &t in &q {
                assert!((t as usize) >= cfg.head_skip);
                assert!((t as usize) < 40_000);
                if (t as usize) >= cfg.head_skip + cfg.band_size {
                    tail_terms += 1;
                }
                total_terms += 1;
            }
            let mut sorted = q.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), q.len(), "duplicate terms in query");
        }
        // Tail terms appear at roughly the configured probability.
        let rate = tail_terms as f64 / total_terms as f64;
        assert!(
            (rate - cfg.tail_prob).abs() < 0.05,
            "tail rate {rate} vs configured {}",
            cfg.tail_prob
        );
    }

    #[test]
    fn small_vocab_does_not_panic() {
        let cfg = QueryLogConfig::default(); // band larger than vocab
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let q = sample_query_terms(&cfg, 40, &mut rng);
            assert!(q.iter().all(|&t| (t as usize) < 40));
        }
    }

    #[test]
    fn generator_is_deterministic_and_endless() {
        let cfg = QueryLogConfig::default();
        let a: Vec<Vec<u32>> = QueryLogGenerator::new(cfg.clone(), 5_000, 42)
            .take(200)
            .collect();
        let b: Vec<Vec<u32>> = QueryLogGenerator::new(cfg.clone(), 5_000, 42)
            .take(200)
            .collect();
        assert_eq!(a, b);
        let c: Vec<Vec<u32>> = QueryLogGenerator::new(cfg, 5_000, 43).take(200).collect();
        assert_ne!(a, c, "different seeds must diverge");
        assert!(a
            .iter()
            .all(|q| !q.is_empty() && q.iter().all(|&t| (t as usize) < 5_000)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn generator_rejects_empty_vocab() {
        let _ = QueryLogGenerator::new(QueryLogConfig::default(), 0, 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = QueryLogConfig::tiny();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(
                sample_query_terms(&cfg, 500, &mut a),
                sample_query_terms(&cfg, 500, &mut b)
            );
        }
    }
}
