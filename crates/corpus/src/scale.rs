//! Named workload scales — the `--scale` ladder toward TREC-TeraByte.
//!
//! The paper's headline experiments run on GOV2: 25 M documents, 426 GB,
//! 50 000 queries. This repository cannot ship that corpus, but the scale
//! ladder lets every harness run the *same* pipeline at sizes from
//! milliseconds (unit tests) to minutes (perf trajectories), with
//! [`Scale::Medium`] and above generated **in streaming chunks** (see
//! [`crate::stream::CollectionStream`]) so the whole document set never has
//! to be resident at once.
//!
//! | scale  | docs      | vocabulary | intended use                          |
//! |--------|-----------|------------|---------------------------------------|
//! | tiny   | 300       | 500        | unit tests, doctests                  |
//! | small  | 10 000    | 8 000      | integration tests                     |
//! | medium | 100 000   | 40 000     | CI smoke, Table 2/3 regeneration      |
//! | large  | 1 000 000 | 120 000    | perf trajectories (minutes, local)    |
//! | xlarge | 2 500 000 | 150 000    | out-of-core segment rung (budgeted)   |

use std::fmt;
use std::str::FromStr;

use crate::collection::CollectionConfig;
use crate::query::QueryLogConfig;

/// A named collection size on the path toward the paper's TREC-TB scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scale {
    /// 300 documents — millisecond-scale, for unit tests and doctests.
    Tiny,
    /// 10 000 documents — second-scale, for integration tests.
    Small,
    /// 100 000 documents — the Table 2/3 regeneration scale; the CI smoke
    /// job runs the full pipeline here.
    Medium,
    /// 1 000 000 documents — the perf-trajectory scale (minutes in release
    /// mode); only ever generated in streaming chunks.
    Large,
    /// 2 500 000 documents — the out-of-core rung: built under an explicit
    /// memory budget and served from a persisted segment, never fully
    /// resident.
    XLarge,
}

impl Scale {
    /// Every scale, smallest first.
    pub const ALL: [Scale; 5] = [
        Scale::Tiny,
        Scale::Small,
        Scale::Medium,
        Scale::Large,
        Scale::XLarge,
    ];

    /// The generation parameters for this scale.
    pub fn config(self) -> CollectionConfig {
        match self {
            Scale::Tiny => CollectionConfig::tiny(),
            Scale::Small => CollectionConfig::small(),
            Scale::Medium => CollectionConfig::medium(),
            Scale::Large => CollectionConfig::large(),
            Scale::XLarge => CollectionConfig::xlarge(),
        }
    }

    /// Lower-case name as accepted by [`FromStr`] and the `--scale` flags.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::XLarge => "xlarge",
        }
    }

    /// Streaming chunk size (documents per [`crate::CollectionStream`]
    /// chunk) that keeps resident memory flat without chunking overhead.
    pub fn chunk_size(self) -> usize {
        match self {
            Scale::Tiny | Scale::Small => 1024,
            Scale::Medium => 4096,
            Scale::Large => 8192,
            Scale::XLarge => 16384,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown scale name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScaleError(String);

impl fmt::Display for ParseScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scale {:?} (expected tiny, small, medium, large or xlarge)",
            self.0
        )
    }
}

impl std::error::Error for ParseScaleError {}

impl FromStr for Scale {
    type Err = ParseScaleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Ok(Scale::Tiny),
            "small" => Ok(Scale::Small),
            "medium" => Ok(Scale::Medium),
            "large" => Ok(Scale::Large),
            "xlarge" => Ok(Scale::XLarge),
            _ => Err(ParseScaleError(s.to_owned())),
        }
    }
}

impl CollectionConfig {
    /// The CI-smoke / Table-regeneration scale (100 k documents); identical
    /// to the historical [`CollectionConfig::benchmark`] parameters.
    pub fn medium() -> Self {
        CollectionConfig {
            num_docs: 100_000,
            vocab_size: 40_000,
            avg_doc_len: 200,
            zipf_exponent: 1.0,
            num_eval_queries: 50,
            relevant_per_query: 40,
            boost_tf: (3, 9),
            query_log: QueryLogConfig::default(),
            num_efficiency_queries: 2_000,
            seed: 0x5EED,
        }
    }

    /// The perf-trajectory scale: 1 M documents, ~250 M term occurrences.
    /// Generate this with [`crate::CollectionStream`], not
    /// [`crate::SyntheticCollection::generate`] — the streamed form never
    /// holds more than one chunk of documents in memory.
    pub fn large() -> Self {
        CollectionConfig {
            num_docs: 1_000_000,
            vocab_size: 120_000,
            avg_doc_len: 250,
            zipf_exponent: 1.0,
            num_eval_queries: 50,
            relevant_per_query: 40,
            boost_tf: (3, 9),
            query_log: QueryLogConfig::default(),
            num_efficiency_queries: 5_000,
            seed: 0x5EED,
        }
    }

    /// The out-of-core rung: 2.5 M documents, ~625 M term occurrences —
    /// past what an unbudgeted in-memory build should attempt. Built with
    /// [`crate::CollectionStream`] chunks under a spill budget and served
    /// from a persisted segment.
    pub fn xlarge() -> Self {
        CollectionConfig {
            num_docs: 2_500_000,
            vocab_size: 150_000,
            avg_doc_len: 250,
            zipf_exponent: 1.0,
            num_eval_queries: 50,
            relevant_per_query: 40,
            boost_tf: (3, 9),
            query_log: QueryLogConfig::default(),
            num_efficiency_queries: 5_000,
            seed: 0x5EED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_names() {
        for s in Scale::ALL {
            assert_eq!(s.name().parse::<Scale>().unwrap(), s);
            assert_eq!(s.name().to_uppercase().parse::<Scale>().unwrap(), s);
        }
        assert!("gigantic".parse::<Scale>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Scale::Medium.to_string(), "medium");
    }

    #[test]
    fn scales_strictly_grow() {
        let sizes: Vec<usize> = Scale::ALL.iter().map(|s| s.config().num_docs).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn medium_matches_benchmark_parameters() {
        assert_eq!(CollectionConfig::medium(), CollectionConfig::benchmark());
    }

    #[test]
    fn parse_error_mentions_input() {
        let err = "huge".parse::<Scale>().unwrap_err();
        assert!(err.to_string().contains("huge"));
    }
}
