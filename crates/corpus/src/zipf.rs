//! Zipf-distributed sampling over a finite vocabulary.
//!
//! Term frequencies in natural-language corpora famously follow Zipf's law:
//! the `r`-th most frequent term has probability proportional to `1/r^s`.
//! This is the single property that makes inverted indexes compressible
//! (frequent terms → long posting lists → tiny docid gaps → few PFOR-DELTA
//! exceptions), so the generator must get it right for the compression
//! numbers of §3.3 to be meaningful.
//!
//! The sampler precomputes the cumulative distribution once and draws by
//! binary search — O(log V) per sample, exact, and deterministic under a
//! seeded RNG.

use rand::Rng;

/// Samples ranks `0..n` with probability `P(r) ∝ 1/(r+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "vocabulary must be non-empty");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("non-empty") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over an empty domain (never true; see `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability of rank `r`.
    pub fn probability(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(1000, 1.0);
        let total: f64 = (0..1000).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn rank_zero_is_most_probable() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(50));
    }

    #[test]
    fn zipf_ratio_matches_law() {
        let z = ZipfSampler::new(10_000, 1.0);
        // P(0)/P(9) should be ~10 for s=1.
        let ratio = z.probability(0) / z.probability(9);
        assert!((ratio - 10.0).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let z = ZipfSampler::new(500, 1.1);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let sa: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn empirical_distribution_tracks_theory() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let expected = z.probability(r) * n as f64;
            let got = counts[r] as f64;
            assert!(
                (got - expected).abs() < expected * 0.1 + 30.0,
                "rank {r}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_rejected() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_exponent_rejected() {
        ZipfSampler::new(10, f64::NAN);
    }
}
