//! Synthetic TREC-TeraByte-like workload (the GOV2 substitute).
//!
//! The paper evaluates on the TREC TeraByte track: 25 M web documents
//! (426 GB), 50 000 keyword queries averaging 2.3 terms, and relevance
//! judgments for a 50-query subset scored with early precision (p@20)
//! (§3.1). We cannot ship GOV2, and the experiments do not need its *text* —
//! they need its *statistics*: Zipfian term frequencies (which drive
//! compression ratios and posting-list lengths), realistic document-length
//! spread (which exercises BM25's length normalization), query-term
//! selectivity (which drives merge-join cost), and a relevance signal that
//! ranking can find (which separates the p@20 of BM25 from boolean
//! retrieval).
//!
//! [`SyntheticCollection::generate`] produces exactly that, deterministically
//! from a seed:
//!
//! * a Zipf-distributed vocabulary ([`zipf::ZipfSampler`]);
//! * documents with power-law-ish lengths whose term usage follows the
//!   global distribution;
//! * an *efficiency* query log plus a judged *evaluation* subset, with
//!   query lengths matching the paper's 2.3-term average;
//! * **generative relevance**: each evaluation query plants its relevant
//!   documents by boosting the query terms' within-document frequencies, so
//!   BM25 genuinely ranks relevant documents higher while boolean retrieval
//!   (which ignores tf) cannot — reproducing the p@20 gap of Table 2.
//!
//! Everything downstream (index building, Table 2, Table 3) consumes this
//! collection through the plain data types here; swapping in a real corpus
//! would only require constructing the same types from parsed text.

pub mod collection;
pub mod eval;
pub mod query;
pub mod scale;
pub mod stream;
pub mod zipf;

pub use collection::{CollectionConfig, Document, SyntheticCollection};
pub use eval::{precision_at_k, EvalQuery};
pub use query::{QueryLogConfig, QueryLogGenerator};
pub use scale::Scale;
pub use stream::{CollectionStream, CollectionTail, DEFAULT_CHUNK_SIZE};
pub use zipf::ZipfSampler;
