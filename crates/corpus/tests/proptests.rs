//! Property tests for the synthetic workload generator: every generated
//! collection must satisfy the structural invariants the index builder and
//! the experiments rely on, across the whole configuration space.

use proptest::prelude::*;
use x100_corpus::{precision_at_k, CollectionConfig, QueryLogConfig, SyntheticCollection};

fn small_config() -> impl Strategy<Value = CollectionConfig> {
    (
        10usize..200, // num_docs
        20usize..300, // vocab_size
        8usize..80,   // avg_doc_len
        1usize..6,    // num_eval_queries
        1usize..8,    // relevant_per_query
        any::<u64>(), // seed
        0.0f64..0.4,  // tail_prob
    )
        .prop_map(
            |(num_docs, vocab_size, avg_doc_len, evals, relevant, seed, tail_prob)| {
                CollectionConfig {
                    num_docs,
                    vocab_size,
                    avg_doc_len,
                    zipf_exponent: 1.0,
                    num_eval_queries: evals,
                    relevant_per_query: relevant,
                    boost_tf: (2, 6),
                    query_log: QueryLogConfig {
                        tail_prob,
                        ..QueryLogConfig::tiny()
                    },
                    num_efficiency_queries: 10,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn collections_satisfy_structural_invariants(cfg in small_config()) {
        let c = SyntheticCollection::generate(&cfg);
        prop_assert_eq!(c.docs.len(), cfg.num_docs);
        prop_assert_eq!(c.vocab.len(), cfg.vocab_size);
        prop_assert_eq!(c.efficiency_log.len(), cfg.num_efficiency_queries);
        prop_assert_eq!(c.eval_queries.len(), cfg.num_eval_queries);

        for (i, d) in c.docs.iter().enumerate() {
            prop_assert_eq!(d.id as usize, i);
            prop_assert!(!d.terms.is_empty());
            prop_assert!(d.terms.windows(2).all(|w| w[0].0 < w[1].0));
            prop_assert!(d.terms.iter().all(|&(t, tf)| (t as usize) < cfg.vocab_size && tf >= 1));
            prop_assert_eq!(d.len, d.terms.iter().map(|&(_, tf)| tf).sum::<u32>());
        }
        for q in &c.eval_queries {
            prop_assert!(!q.terms.is_empty());
            prop_assert!(q.relevant.len() <= cfg.relevant_per_query.min(cfg.num_docs));
            prop_assert!(q.relevant.iter().all(|&d| (d as usize) < cfg.num_docs));
            // Planted docs really contain the query terms.
            for &d in &q.relevant {
                let doc = &c.docs[d as usize];
                for &t in &q.terms {
                    prop_assert!(
                        doc.terms.binary_search_by_key(&t, |&(t2, _)| t2).is_ok(),
                        "doc {} must contain planted term {}", d, t
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_config(cfg in small_config()) {
        let a = SyntheticCollection::generate(&cfg);
        let b = SyntheticCollection::generate(&cfg);
        prop_assert_eq!(a.docs, b.docs);
        prop_assert_eq!(a.efficiency_log, b.efficiency_log);
    }

    #[test]
    fn precision_is_bounded_and_monotone_in_hits(
        ranked in prop::collection::vec(0u32..100, 0..50),
        relevant in prop::collection::hash_set(0u32..100, 0..30),
        k in 1usize..30,
    ) {
        let p = precision_at_k(&ranked, &relevant, k);
        prop_assert!((0.0..=1.0).contains(&p));
        // Appending a relevant doc beyond position k never changes p@k.
        let mut extended = ranked.clone();
        extended.extend(relevant.iter().copied());
        let p2 = precision_at_k(&extended[..ranked.len().min(k)], &relevant, k);
        prop_assert_eq!(p, p2);
    }
}
