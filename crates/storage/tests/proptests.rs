//! Property tests for ColumnBM: columns round-trip under every codec, block
//! size and read pattern; the buffer manager's accounting stays consistent.

use proptest::prelude::*;
use x100_compress::{Codec, ENTRY_POINT_STRIDE};
use x100_storage::{BufferManager, BufferMode, Column, ColumnBuilder, ColumnScan, DiskModel};

fn any_codec() -> impl Strategy<Value = Codec> {
    prop_oneof![
        Just(Codec::Raw),
        (1u8..=16).prop_map(|width| Codec::Pfor { width }),
        (1u8..=16).prop_map(|width| Codec::PforDelta { width }),
        (1u8..=10).prop_map(|width| Codec::Pdict { width }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn column_roundtrips_any_codec_and_block_size(
        values in prop::collection::vec(any::<u32>(), 0..4000),
        codec in any_codec(),
        blocks in 1usize..8,
    ) {
        let block_size = blocks * ENTRY_POINT_STRIDE;
        let mut b = ColumnBuilder::with_block_size("c", codec, block_size);
        b.extend(&values);
        let col = b.finish();
        prop_assert_eq!(col.read_all(), values);
    }

    #[test]
    fn scan_equals_read_all_at_any_vector_size(
        values in prop::collection::vec(0u32..1_000_000, 1..3000),
        vector_size in 1usize..600,
        blocks in 1usize..6,
    ) {
        let mut b = ColumnBuilder::with_block_size(
            "c",
            Codec::Pfor { width: 8 },
            blocks * ENTRY_POINT_STRIDE,
        );
        b.extend(&values);
        let col = b.finish();
        let bm = BufferManager::with_mode(DiskModel::instant(), BufferMode::Hot, 0);
        let mut scan = ColumnScan::new(&col, &bm, vector_size);
        let mut got = Vec::new();
        let mut v = Vec::new();
        while scan.next_into(&mut v).unwrap() > 0 {
            got.extend_from_slice(&v);
        }
        prop_assert_eq!(got, values);
    }

    #[test]
    fn seek_then_read_matches_slice(
        values in prop::collection::vec(0u32..1_000_000, 10..2000),
        seek_frac in 0.0f64..1.0,
        vector_size in 1usize..300,
    ) {
        let col = Column::from_values("c", Codec::Pfor { width: 8 }, &values);
        let bm = BufferManager::with_mode(DiskModel::instant(), BufferMode::Hot, 0);
        let mut scan = ColumnScan::new(&col, &bm, vector_size);
        let pos = ((values.len() as f64) * seek_frac) as usize;
        scan.seek(pos).unwrap();
        let mut v = Vec::new();
        let produced = scan.next_into(&mut v).unwrap();
        let expect = &values[pos..(pos + vector_size).min(values.len())];
        prop_assert_eq!(produced, expect.len());
        prop_assert_eq!(&v[..], expect);
    }

    #[test]
    fn read_range_matches_slice(
        values in prop::collection::vec(any::<u32>(), 1..3000),
        start_stride in 0usize..20,
        len in 0usize..700,
    ) {
        let col = Column::from_values("c", Codec::PforDelta { width: 8 }, &values);
        let start = (start_stride * ENTRY_POINT_STRIDE).min(values.len());
        let start = start - start % ENTRY_POINT_STRIDE;
        let len = len.min(values.len() - start);
        let mut out = Vec::new();
        col.read_range(start, len, &mut out).unwrap();
        prop_assert_eq!(&out[..], &values[start..start + len]);
    }

    #[test]
    fn buffer_manager_accounting_is_consistent(
        touches in prop::collection::vec(0usize..12, 1..200),
        capacity_blocks in 1usize..12,
    ) {
        let values: Vec<u32> = (0..(12 * ENTRY_POINT_STRIDE) as u32).collect();
        let mut b = ColumnBuilder::with_block_size("c", Codec::Raw, ENTRY_POINT_STRIDE);
        b.extend(&values);
        let col = b.finish();
        let one_block = col.block(0).compressed_bytes();
        let bm = BufferManager::new(DiskModel::raid12(), one_block * capacity_blocks);
        for &t in &touches {
            bm.touch(&col, t);
            // Invariants after every operation:
            prop_assert!(bm.resident_bytes() <= one_block * capacity_blocks.max(1));
            prop_assert!(bm.resident_blocks() >= 1);
            prop_assert!(bm.resident_blocks() <= capacity_blocks.max(1));
        }
        // Total charged bytes equal miss count times block size.
        let stats = bm.stats();
        prop_assert_eq!(stats.bytes, stats.reads * one_block as u64);
        bm.evict_all();
        prop_assert_eq!(bm.resident_blocks(), 0);
        prop_assert_eq!(bm.resident_bytes(), 0);
    }
}
