//! ColumnBM — the column-oriented storage manager of MonetDB/X100 (§2).
//!
//! The paper's buffer manager "relies on a column-oriented storage scheme, to
//! avoid reading unnecessary columns from disk", reads in "blocks of several
//! megabytes, to optimize for fast sequential I/O", and keeps blocks
//! **compressed in RAM**, decompressing on demand at vector granularity
//! straight into the CPU cache (§2.1).
//!
//! This crate reproduces that architecture over a *simulated* disk:
//!
//! * [`disk::DiskModel`] — a deterministic seek + bandwidth cost model
//!   standing in for the paper's 12-disk software RAID. Cold-run I/O time in
//!   the Table 2 experiments is *accounted* through this model rather than
//!   measured on real hardware, which makes the experiment machine-
//!   independent while preserving the compressed-vs-raw transfer ratio that
//!   drives the paper's results (see DESIGN.md, substitution table).
//! * [`column::Column`] — a compressed column: a sequence of multi-megabyte
//!   [`x100_compress::CompressedBlock`]s plus length metadata.
//! * [`buffer::BufferManager`] — ColumnBM proper: tracks which compressed
//!   blocks are RAM-resident, charges simulated disk time on misses, and
//!   evicts LRU under a configurable RAM budget.
//! * [`scan::ColumnScan`] — a seekable cursor producing values at vector
//!   granularity, the storage-side half of the execution pipeline.
//! * [`table::Table`] — a named set of equal-length columns (the relational
//!   veneer the IR layer builds TD/D/T on).
//! * [`runfile`] — checksummed, term-ordered on-disk posting runs: the
//!   external-sort leg that lets index construction spill under a memory
//!   budget and k-way merge back to one sorted posting stream.
//! * [`segment`] — the persistent single-file format: checksummed 64-byte-
//!   aligned sections with per-column prefix-sum block directories, served
//!   back through the buffer pool with real `pread`s on misses.

pub mod buffer;
pub mod column;
pub mod disk;
pub mod runfile;
pub mod scan;
pub mod segment;
pub mod table;

pub use buffer::{BufferManager, BufferMode, NUM_STRIPES};
pub use column::{BlockRef, Column, ColumnBuilder, ColumnId, StringColumn, StringColumnBuilder};
pub use disk::{DiskModel, IoStats};
pub use runfile::{MemRun, RunFileError, RunFileReader, RunFileWriter, RunMeta, RunSource};
pub use scan::ColumnScan;
pub use segment::{SectionKind, SegmentError, SegmentReader, SegmentWriter};
pub use table::Table;

use std::fmt;

/// Errors surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Request past the end of a column.
    OutOfBounds { position: usize, len: usize },
    /// A range read whose start is not aligned to the entry-point stride.
    /// [`Column::read_range`] is where the alignment contract is enforced:
    /// compressed blocks can only begin decoding at an entry point.
    Misaligned {
        /// The requested (unaligned) start position.
        position: usize,
        /// The entry-point stride positions must align to (128).
        stride: usize,
    },
    /// A column with this name does not exist in the table.
    UnknownColumn(String),
    /// Underlying codec failure (corrupt block, misaligned range).
    Codec(x100_compress::CodecError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfBounds { position, len } => {
                write!(
                    f,
                    "position {position} out of bounds for column of length {len}"
                )
            }
            StorageError::Misaligned { position, stride } => {
                write!(
                    f,
                    "range start {position} is not aligned to the entry-point stride {stride}"
                )
            }
            StorageError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            StorageError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<x100_compress::CodecError> for StorageError {
    fn from(e: x100_compress::CodecError) -> Self {
        StorageError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = StorageError::UnknownColumn("tf".into());
        assert!(e.to_string().contains("tf"));
        let e = StorageError::OutOfBounds {
            position: 9,
            len: 3,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn codec_error_converts() {
        let e: StorageError = x100_compress::CodecError::Truncated.into();
        assert!(matches!(e, StorageError::Codec(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
