//! The persistent index segment: one file, checksummed sections, blocks
//! served back through the buffer pool.
//!
//! A segment is the durable form of a built index. Everything the serving
//! path needs lives in a single file as 64-byte-aligned **sections**: small
//! metadata sections (vocabulary, document table, posting offsets) plus one
//! section per compressed column. A column section carries a **prefix-sum
//! block directory** — `block_count + 1` byte offsets — so any block's file
//! extent is two array lookups, O(1), with no scan over preceding blocks.
//!
//! Integrity follows the run-file discipline ([`crate::runfile`]): a magic +
//! versioned header, an FNV-1a-64 checksum per section, a checksummed table
//! of contents, and **open-time verification of every byte in the file**
//! (header, sections, and the zero padding between them). Any flip or
//! truncation surfaces as a typed [`SegmentError`] from [`SegmentReader::
//! open`]; declared sizes are reconciled against the real file length with
//! checked arithmetic before any allocation, so a corrupt length field can
//! never trigger an allocation bomb. After a successful open, block reads
//! are plain `pread`s into [`Column`]s whose blocks load lazily and are
//! dropped (and later re-read) when the [`crate::BufferManager`] evicts
//! them.
//!
//! # File layout
//!
//! ```text
//! [0..64)    header: magic "X1SG", version, section count,
//!            TOC offset, file length, FNV-1a(header[0..32)), zero pad
//! [64..)     sections, each 64-byte aligned, zero padding between
//! [toc..)    TOC: per section {kind, offset, len, FNV-1a(section)},
//!            then FNV-1a over the TOC entries; ends exactly at file length
//! ```
//!
//! A column section's payload:
//!
//! ```text
//! [0..32)    codec tag, code width, block size, value count, block count
//! [32..d)    prefix-sum directory: (block_count + 1) × u64 byte offsets
//! [d..)      concatenated serialized CompressedBlocks
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

use x100_compress::{Codec, ENTRY_POINT_STRIDE};

use crate::column::Column;
use crate::runfile::Fnv1a;

/// Magic number at the start of every segment file (`X1SG`).
pub const SEGMENT_MAGIC: u32 = 0x5831_5347;

/// Current segment format version. Version 2 promoted the vocabulary,
/// document-table and offset sections to paged column sections and widened
/// the meta section; version-1 files are rejected with
/// [`SegmentError::BadVersion`] (rebuild and re-persist to upgrade).
pub const SEGMENT_VERSION: u16 = 2;

/// Every section (and the TOC) starts at a multiple of this.
pub const SECTION_ALIGN: u64 = 64;

const HEADER_LEN: u64 = 64;
const TOC_ENTRY_LEN: u64 = 32;

/// Errors surfaced by writing, opening and reading segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// Underlying I/O failure (message-only so the error stays `Clone`).
    Io(String),
    /// The file does not start with [`SEGMENT_MAGIC`].
    BadMagic(u32),
    /// The file's format version is not supported.
    BadVersion(u16),
    /// The file ends before its declared contents do.
    Truncated,
    /// Structural damage: checksum mismatches, impossible declared sizes,
    /// nonzero padding, unknown or overlapping sections.
    Corrupt(&'static str),
    /// The data being written exceeds a fixed-width field of the format
    /// (e.g. a record larger than one page, or counts past `u32`).
    TooLarge(&'static str),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment I/O error: {e}"),
            SegmentError::BadMagic(m) => write!(f, "bad segment magic {m:#010x}"),
            SegmentError::BadVersion(v) => write!(f, "unsupported segment version {v}"),
            SegmentError::Truncated => f.write_str("segment file truncated"),
            SegmentError::Corrupt(what) => write!(f, "corrupt segment: {what}"),
            SegmentError::TooLarge(what) => write!(f, "segment format limit exceeded: {what}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SegmentError::Truncated
        } else {
            SegmentError::Io(e.to_string())
        }
    }
}

/// What a section holds. The `u32` discriminants are the on-disk tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SectionKind {
    /// Index-level configuration and counts (interpreted by the IR layer).
    Meta = 1,
    /// The vocabulary, term id order.
    Terms = 2,
    /// Document names (the D table's name pages).
    DocNames = 3,
    /// Document lengths (the D table's length column).
    DocLens = 4,
    /// Per-term document frequencies.
    DocFreqs = 5,
    /// Per-term posting offsets (prefix sums over posting counts).
    Offsets = 6,
    /// The compressed `docid` posting column.
    ColDocid = 7,
    /// The compressed `tf` posting column.
    ColTf = 8,
    /// The materialized score column, when the index has one.
    ColScore = 9,
    /// Global document ids, present only in per-partition segments.
    GlobalIds = 10,
    /// Resident fence keys over the paged vocabulary: first term per page
    /// plus per-page record counts, small enough to pin in memory.
    TermsFences = 11,
    /// Resident directory over the paged document names: first docid per
    /// page, small enough to pin in memory.
    NamesDir = 12,
    /// Per-stride block-max metadata for dynamic pruning: three `u32`s per
    /// 128-value posting stride (max tf, min doc length, max materialized
    /// score payload). Optional — segments without it still open, the
    /// query side just runs exhaustively.
    BlockMax = 13,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => SectionKind::Meta,
            2 => SectionKind::Terms,
            3 => SectionKind::DocNames,
            4 => SectionKind::DocLens,
            5 => SectionKind::DocFreqs,
            6 => SectionKind::Offsets,
            7 => SectionKind::ColDocid,
            8 => SectionKind::ColTf,
            9 => SectionKind::ColScore,
            10 => SectionKind::GlobalIds,
            11 => SectionKind::TermsFences,
            12 => SectionKind::NamesDir,
            13 => SectionKind::BlockMax,
            _ => return None,
        })
    }

    fn is_column(self) -> bool {
        matches!(
            self,
            SectionKind::ColDocid
                | SectionKind::ColTf
                | SectionKind::ColScore
                | SectionKind::Terms
                | SectionKind::DocNames
                | SectionKind::DocLens
                | SectionKind::DocFreqs
                | SectionKind::Offsets
                | SectionKind::BlockMax
        )
    }
}

/// On-disk codec tag for a column section.
fn codec_parts(codec: Codec) -> (u32, u32) {
    match codec {
        Codec::Raw => (0, 0),
        Codec::Pfor { width } => (1, u32::from(width)),
        Codec::PforDelta { width } => (2, u32::from(width)),
        Codec::Pdict { width } => (3, u32::from(width)),
    }
}

fn codec_from_parts(tag: u32, width: u32) -> Result<Codec, SegmentError> {
    let w =
        u8::try_from(width).map_err(|_| SegmentError::Corrupt("column code width too large"))?;
    match (tag, w) {
        (0, 0) => Ok(Codec::Raw),
        (1, 1..=24) => Ok(Codec::Pfor { width: w }),
        (2, 1..=24) => Ok(Codec::PforDelta { width: w }),
        (3, 1..=12) => Ok(Codec::Pdict { width: w }),
        _ => Err(SegmentError::Corrupt("unrecognized column codec")),
    }
}

/// The fixed 32-byte header that opens every column section's payload.
fn column_section_header(column: &Column, block_count: usize) -> [u8; 32] {
    let (tag, width) = codec_parts(column.codec());
    let mut header = [0u8; 32];
    header[0..4].copy_from_slice(&tag.to_le_bytes());
    header[4..8].copy_from_slice(&width.to_le_bytes());
    header[8..16].copy_from_slice(&(column.block_size() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&(column.len() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(block_count as u64).to_le_bytes());
    header
}

#[derive(Debug, Clone, Copy)]
struct TocEntry {
    kind: SectionKind,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// An in-flight streaming section: state between [`SegmentWriter::
/// begin_section`] and [`SegmentWriter::end_section`].
#[derive(Debug)]
struct OpenSection {
    kind: SectionKind,
    offset: u64,
    sum: Fnv1a,
}

/// Writes one segment file: sections appended in order, header and table of
/// contents finalized by [`finish`](Self::finish).
///
/// Sections stream: [`begin_section`](Self::begin_section) opens one,
/// [`append`](Self::append) folds each chunk into a running FNV-1a checksum
/// as it hits the `BufWriter`, and [`end_section`](Self::end_section) seals
/// the TOC entry — no whole-section buffer ever exists in memory.
#[derive(Debug)]
pub struct SegmentWriter {
    out: BufWriter<File>,
    sections: Vec<TocEntry>,
    current: Option<OpenSection>,
    pos: u64,
}

impl SegmentWriter {
    /// Creates (truncating) the segment file and reserves the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, SegmentError> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(SegmentWriter {
            out,
            sections: Vec::new(),
            current: None,
            pos: HEADER_LEN,
        })
    }

    fn pad_to_alignment(&mut self) -> Result<(), SegmentError> {
        const ZEROS: [u8; SECTION_ALIGN as usize] = [0u8; SECTION_ALIGN as usize];
        let over = (self.pos % SECTION_ALIGN) as usize;
        if over != 0 {
            self.out
                .write_all(&ZEROS[..SECTION_ALIGN as usize - over])?;
            self.pos += (SECTION_ALIGN as usize - over) as u64;
        }
        Ok(())
    }

    /// Opens a streaming section. Bytes fed to [`append`](Self::append) land
    /// in it until [`end_section`](Self::end_section) seals the checksum.
    pub fn begin_section(&mut self, kind: SectionKind) -> Result<(), SegmentError> {
        assert!(
            self.current.is_none(),
            "section {kind:?} begun while another section is open"
        );
        assert!(
            self.sections.iter().all(|s| s.kind != kind),
            "section {kind:?} written twice"
        );
        self.pad_to_alignment()?;
        self.current = Some(OpenSection {
            kind,
            offset: self.pos,
            sum: Fnv1a::new(),
        });
        Ok(())
    }

    /// Appends bytes to the open section, folding them into its running
    /// checksum.
    pub fn append(&mut self, bytes: &[u8]) -> Result<(), SegmentError> {
        let open = self
            .current
            .as_mut()
            .expect("append called with no open section");
        open.sum.update(bytes);
        self.out.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Seals the open section: records its table-of-contents entry with the
    /// checksum accumulated by [`append`](Self::append).
    pub fn end_section(&mut self) -> Result<(), SegmentError> {
        let open = self
            .current
            .take()
            .expect("end_section called with no open section");
        self.sections.push(TocEntry {
            kind: open.kind,
            offset: open.offset,
            len: self.pos - open.offset,
            checksum: open.sum.finish(),
        });
        Ok(())
    }

    /// Appends a fully materialized section.
    pub fn write_section(&mut self, kind: SectionKind, bytes: &[u8]) -> Result<(), SegmentError> {
        self.begin_section(kind)?;
        self.append(bytes)?;
        self.end_section()
    }

    /// Appends a column section, streaming one serialized block at a time —
    /// the whole column is never materialized in memory. The first pass
    /// sizes each block to build the prefix-sum directory; the second
    /// serializes and writes.
    pub fn write_column_section(
        &mut self,
        kind: SectionKind,
        column: &Column,
    ) -> Result<(), SegmentError> {
        self.begin_section(kind)?;
        let block_count = column.block_count();
        let mut directory: Vec<u64> = Vec::with_capacity(block_count + 1);
        directory.push(0);
        for i in 0..block_count {
            let bytes = column.block(i).to_bytes().len() as u64;
            directory.push(directory[i] + bytes);
        }
        self.append(&column_section_header(column, block_count))?;
        for &d in &directory {
            self.append(&d.to_le_bytes())?;
        }
        for i in 0..block_count {
            self.append(&column.block(i).to_bytes())?;
        }
        self.end_section()
    }

    /// Writes the table of contents, back-patches the header, and syncs.
    /// Returns the segment's total size in bytes.
    pub fn finish(mut self) -> Result<u64, SegmentError> {
        assert!(
            self.current.is_none(),
            "finish called with a section still open"
        );
        self.pad_to_alignment()?;
        let toc_offset = self.pos;
        let mut toc = Vec::with_capacity(self.sections.len() * TOC_ENTRY_LEN as usize);
        for s in &self.sections {
            toc.extend_from_slice(&(s.kind as u32).to_le_bytes());
            toc.extend_from_slice(&0u32.to_le_bytes());
            toc.extend_from_slice(&s.offset.to_le_bytes());
            toc.extend_from_slice(&s.len.to_le_bytes());
            toc.extend_from_slice(&s.checksum.to_le_bytes());
        }
        let mut toc_sum = Fnv1a::new();
        toc_sum.update(&toc);
        self.out.write_all(&toc)?;
        self.out.write_all(&toc_sum.finish().to_le_bytes())?;
        let file_len = toc_offset + toc.len() as u64 + 8;

        let mut header = [0u8; HEADER_LEN as usize];
        header[0..4].copy_from_slice(&SEGMENT_MAGIC.to_le_bytes());
        header[4..6].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
        // [6..8) flags, [12..16) reserved: zero.
        header[8..12].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());
        header[16..24].copy_from_slice(&toc_offset.to_le_bytes());
        header[24..32].copy_from_slice(&file_len.to_le_bytes());
        let mut head_sum = Fnv1a::new();
        head_sum.update(&header[0..32]);
        header[32..40].copy_from_slice(&head_sum.finish().to_le_bytes());

        self.out.flush()?;
        let mut file = self
            .out
            .into_inner()
            .map_err(|e| SegmentError::Io(e.to_string()))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(file_len)
    }
}

/// A validated, parsed column section: everything needed to build a
/// disk-backed [`Column`] without touching the payload again.
#[derive(Debug, Clone)]
struct ColumnDesc {
    codec: Codec,
    block_size: usize,
    len: usize,
    /// Per-block (absolute file offset, serialized byte length).
    entries: Vec<(u64, u32)>,
}

/// An open, fully verified segment. Opening checksums **every byte** of the
/// file; afterwards, [`open_column`](Self::open_column) hands out lazily
/// loaded disk-backed columns and [`read_section`](Self::read_section)
/// returns raw section bytes for the IR layer to decode.
#[derive(Debug)]
pub struct SegmentReader {
    file: Arc<File>,
    sections: Vec<TocEntry>,
    columns: HashMap<SectionKind, ColumnDesc>,
}

impl SegmentReader {
    /// Opens and verifies a segment.
    ///
    /// Validation order: header (magic, version, checksum, padding, declared
    /// length against the real file length), table of contents (checksum,
    /// known kinds, alignment, bounds, no overlap), then one streaming pass
    /// over the whole body verifying each section's FNV-1a checksum and that
    /// every padding byte is zero. Column sections additionally get their
    /// headers and prefix-sum directories structurally validated, with all
    /// arithmetic checked against the real file length, so no later read can
    /// run off the file or allocate from an unvalidated length.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SegmentError> {
        let file = File::open(path)?;
        let actual_len = file.metadata()?.len();
        if actual_len < HEADER_LEN {
            return Err(SegmentError::Truncated);
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact_at(&mut header, 0)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != SEGMENT_MAGIC {
            return Err(SegmentError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
        if version != SEGMENT_VERSION {
            return Err(SegmentError::BadVersion(version));
        }
        let flags = u16::from_le_bytes(header[6..8].try_into().unwrap());
        let section_count = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let reserved = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let toc_offset = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let file_len = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let stored_sum = u64::from_le_bytes(header[32..40].try_into().unwrap());
        let mut head_sum = Fnv1a::new();
        head_sum.update(&header[0..32]);
        if head_sum.finish() != stored_sum {
            return Err(SegmentError::Corrupt("header checksum mismatch"));
        }
        if flags != 0 || reserved != 0 {
            return Err(SegmentError::Corrupt("nonzero reserved header field"));
        }
        if header[40..].iter().any(|&b| b != 0) {
            return Err(SegmentError::Corrupt("nonzero header padding"));
        }
        if file_len != actual_len {
            // A shorter file is a truncation; anything else is corruption.
            return if actual_len < file_len {
                Err(SegmentError::Truncated)
            } else {
                Err(SegmentError::Corrupt(
                    "file length disagrees with header length",
                ))
            };
        }
        // The TOC must sit exactly at the file tail.
        let toc_len = u64::from(section_count)
            .checked_mul(TOC_ENTRY_LEN)
            .and_then(|n| n.checked_add(8))
            .ok_or(SegmentError::Corrupt("section count overflows"))?;
        if toc_offset < HEADER_LEN
            || !toc_offset.is_multiple_of(SECTION_ALIGN)
            || toc_offset.checked_add(toc_len) != Some(file_len)
        {
            return Err(SegmentError::Corrupt(
                "table of contents does not sit at the file tail",
            ));
        }
        // Read and verify the TOC (allocation bounded by the real length).
        let mut toc = vec![0u8; toc_len as usize];
        file.read_exact_at(&mut toc, toc_offset)?;
        let entry_bytes = &toc[..toc.len() - 8];
        let mut toc_sum = Fnv1a::new();
        toc_sum.update(entry_bytes);
        let stored_toc_sum = u64::from_le_bytes(toc[toc.len() - 8..].try_into().unwrap());
        if toc_sum.finish() != stored_toc_sum {
            return Err(SegmentError::Corrupt("table-of-contents checksum mismatch"));
        }
        let mut sections = Vec::with_capacity(section_count as usize);
        let mut cursor = HEADER_LEN;
        for raw in entry_bytes.chunks_exact(TOC_ENTRY_LEN as usize) {
            let kind_tag = u32::from_le_bytes(raw[0..4].try_into().unwrap());
            let reserved = u32::from_le_bytes(raw[4..8].try_into().unwrap());
            let offset = u64::from_le_bytes(raw[8..16].try_into().unwrap());
            let len = u64::from_le_bytes(raw[16..24].try_into().unwrap());
            let checksum = u64::from_le_bytes(raw[24..32].try_into().unwrap());
            let kind = SectionKind::from_u32(kind_tag)
                .ok_or(SegmentError::Corrupt("unknown section kind"))?;
            if reserved != 0 {
                return Err(SegmentError::Corrupt("nonzero reserved section field"));
            }
            if sections.iter().any(|s: &TocEntry| s.kind == kind) {
                return Err(SegmentError::Corrupt("duplicate section"));
            }
            if !offset.is_multiple_of(SECTION_ALIGN) {
                return Err(SegmentError::Corrupt("misaligned section"));
            }
            if offset < cursor {
                return Err(SegmentError::Corrupt("sections overlap or run backwards"));
            }
            let end = offset
                .checked_add(len)
                .ok_or(SegmentError::Corrupt("section length overflows"))?;
            if end > toc_offset {
                return Err(SegmentError::Corrupt("section exceeds file bounds"));
            }
            cursor = end;
            sections.push(TocEntry {
                kind,
                offset,
                len,
                checksum,
            });
        }
        Self::verify_body(&file, &sections, toc_offset)?;
        // Column sections: validate structure now so nothing after open can
        // encounter an unvalidated length.
        let mut columns = HashMap::new();
        for s in sections.iter().filter(|s| s.kind.is_column()) {
            columns.insert(s.kind, parse_column_section(&file, s.offset, s.len)?);
        }
        Ok(SegmentReader {
            file: Arc::new(file),
            sections,
            columns,
        })
    }

    /// One sequential pass over `[HEADER_LEN, toc_offset)`: checksums every
    /// section and confirms every inter-section padding byte is zero, so a
    /// flip *anywhere* in the file fails the open.
    fn verify_body(
        file: &File,
        sections: &[TocEntry],
        toc_offset: u64,
    ) -> Result<(), SegmentError> {
        fn consume(
            reader: &mut BufReader<&File>,
            buf: &mut [u8],
            mut remaining: u64,
            inspect: &mut dyn FnMut(&[u8]),
        ) -> Result<(), SegmentError> {
            while remaining > 0 {
                let take = (buf.len() as u64).min(remaining) as usize;
                reader.read_exact(&mut buf[..take])?;
                inspect(&buf[..take]);
                remaining -= take as u64;
            }
            Ok(())
        }
        let mut reader = BufReader::with_capacity(1 << 20, file);
        reader.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut cursor = HEADER_LEN;
        let mut buf = vec![0u8; 1 << 20];
        for s in sections {
            let mut gap_clean = true;
            consume(&mut reader, &mut buf, s.offset - cursor, &mut |bytes| {
                gap_clean &= bytes.iter().all(|&b| b == 0)
            })?;
            if !gap_clean {
                return Err(SegmentError::Corrupt("nonzero padding between sections"));
            }
            let mut sum = Fnv1a::new();
            consume(&mut reader, &mut buf, s.len, &mut |bytes| sum.update(bytes))?;
            if sum.finish() != s.checksum {
                return Err(SegmentError::Corrupt("section checksum mismatch"));
            }
            cursor = s.offset + s.len;
        }
        let mut tail_clean = true;
        consume(&mut reader, &mut buf, toc_offset - cursor, &mut |bytes| {
            tail_clean &= bytes.iter().all(|&b| b == 0)
        })?;
        if !tail_clean {
            return Err(SegmentError::Corrupt("nonzero padding between sections"));
        }
        Ok(())
    }

    fn find(&self, kind: SectionKind) -> Option<&TocEntry> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// Whether the segment contains a section of this kind.
    pub fn has_section(&self, kind: SectionKind) -> bool {
        self.find(kind).is_some()
    }

    /// Reads a non-column section fully into memory. The allocation is
    /// bounded by the section length validated against the real file length
    /// at open time.
    pub fn read_section(&self, kind: SectionKind) -> Result<Vec<u8>, SegmentError> {
        let s = self
            .find(kind)
            .ok_or(SegmentError::Corrupt("missing required section"))?;
        let mut bytes = vec![0u8; s.len as usize];
        self.file.read_exact_at(&mut bytes, s.offset)?;
        Ok(bytes)
    }

    /// Opens a column section as a disk-backed [`Column`]: blocks are read
    /// (`pread`) and decoded on first access, cached until the buffer pool
    /// evicts them, then re-read on the next touch.
    pub fn open_column(&self, kind: SectionKind, name: &str) -> Result<Column, SegmentError> {
        let desc = self
            .columns
            .get(&kind)
            .ok_or(SegmentError::Corrupt("missing required column section"))?;
        Ok(Column::from_disk_blocks(
            name,
            desc.codec,
            desc.block_size,
            desc.len,
            Arc::clone(&self.file),
            desc.entries.clone(),
        ))
    }

    /// The codec a column section was written with.
    pub fn column_codec(&self, kind: SectionKind) -> Result<Codec, SegmentError> {
        self.columns
            .get(&kind)
            .map(|d| d.codec)
            .ok_or(SegmentError::Corrupt("missing required column section"))
    }
}

/// Validates a column section's header and prefix-sum directory. All sizes
/// are checked against the (already file-length-bounded) section extent
/// before any allocation or use.
fn parse_column_section(file: &File, offset: u64, len: u64) -> Result<ColumnDesc, SegmentError> {
    if len < 32 {
        return Err(SegmentError::Corrupt("column section too short"));
    }
    let mut header = [0u8; 32];
    file.read_exact_at(&mut header, offset)?;
    let tag = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let width = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let block_size = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let values = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let block_count = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let codec = codec_from_parts(tag, width)?;
    let block_size = usize::try_from(block_size)
        .ok()
        .filter(|&b| b > 0 && b.is_multiple_of(ENTRY_POINT_STRIDE))
        .ok_or(SegmentError::Corrupt("bad column block size"))?;
    let values = usize::try_from(values)
        .map_err(|_| SegmentError::Corrupt("column length exceeds address space"))?;
    if block_count != values.div_ceil(block_size) as u64 {
        return Err(SegmentError::Corrupt(
            "block count disagrees with column length",
        ));
    }
    // Directory size, checked against the section extent *before* reading:
    // a corrupt block count cannot size an allocation past the real file.
    let dir_len = block_count
        .checked_add(1)
        .and_then(|n| n.checked_mul(8))
        .ok_or(SegmentError::Corrupt("block count overflows"))?;
    let payload_len = len
        .checked_sub(32)
        .and_then(|n| n.checked_sub(dir_len))
        .ok_or(SegmentError::Corrupt("directory exceeds column section"))?;
    let mut dir = vec![0u8; dir_len as usize];
    file.read_exact_at(&mut dir, offset + 32)?;
    let payload_start = offset + 32 + dir_len;
    let mut entries = Vec::with_capacity(block_count as usize);
    let mut prev = 0u64;
    for (i, raw) in dir.chunks_exact(8).enumerate() {
        let v = u64::from_le_bytes(raw.try_into().unwrap());
        if i == 0 {
            if v != 0 {
                return Err(SegmentError::Corrupt("directory must start at zero"));
            }
            prev = v;
            continue;
        }
        let extent = v
            .checked_sub(prev)
            .ok_or(SegmentError::Corrupt("directory not monotone"))?;
        if extent == 0 {
            return Err(SegmentError::Corrupt("empty block extent"));
        }
        let extent =
            u32::try_from(extent).map_err(|_| SegmentError::Corrupt("block extent too large"))?;
        entries.push((payload_start + prev, extent));
        prev = v;
    }
    if prev != payload_len {
        return Err(SegmentError::Corrupt(
            "directory does not cover section payload",
        ));
    }
    Ok(ColumnDesc {
        codec,
        block_size,
        len: values,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferManager, BufferMode};
    use crate::column::ColumnBuilder;
    use crate::disk::DiskModel;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("x100-segment-{name}-{}", std::process::id()));
        p
    }

    fn sample_column(n: usize, block: usize, codec: Codec) -> Column {
        let values: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(13) % 9999).collect();
        let mut b = ColumnBuilder::with_block_size("c", codec, block);
        b.extend(&values);
        b.finish()
    }

    fn write_sample(path: &Path) -> Column {
        let col = sample_column(2000, 256, Codec::PforDelta { width: 8 });
        let mut w = SegmentWriter::create(path).unwrap();
        w.write_section(SectionKind::Meta, b"meta-bytes").unwrap();
        w.write_column_section(SectionKind::ColDocid, &col).unwrap();
        w.finish().unwrap();
        col
    }

    #[test]
    fn roundtrip_column_through_segment() {
        let path = temp_path("roundtrip");
        let col = write_sample(&path);
        let r = SegmentReader::open(&path).unwrap();
        assert_eq!(r.read_section(SectionKind::Meta).unwrap(), b"meta-bytes");
        let back = r.open_column(SectionKind::ColDocid, "docid").unwrap();
        assert!(back.is_disk_backed());
        assert_eq!(back.codec(), col.codec());
        assert_eq!(back.block_size(), col.block_size());
        assert_eq!(back.block_count(), col.block_count());
        assert_eq!(back.read_all(), col.read_all());
        // Random range access through the directory.
        let mut a = Vec::new();
        let mut b = Vec::new();
        back.read_range(512, 700, &mut a).unwrap();
        col.read_range(512, 700, &mut b).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn eviction_drops_block_and_rereads_it() {
        let path = temp_path("evict");
        let col = write_sample(&path);
        let r = SegmentReader::open(&path).unwrap();
        let back = r.open_column(SectionKind::ColDocid, "docid").unwrap();
        // Budget for roughly one block: touching the others evicts.
        let bm = BufferManager::new(DiskModel::instant(), back.block_bytes(0) + 8);
        for i in 0..back.block_count() {
            bm.touch(&back, i);
        }
        assert!(bm.resident_blocks() <= 2);
        // Every value still reads correctly after evictions (re-preads).
        assert_eq!(back.read_all(), col.read_all());
        // Cold restart: evict_all drops cached bytes, reads still work.
        bm.evict_all();
        assert_eq!(back.read_all(), col.read_all());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_through_buffer_pool_matches_memory_column() {
        let path = temp_path("scan");
        let col = write_sample(&path);
        let r = SegmentReader::open(&path).unwrap();
        let back = r.open_column(SectionKind::ColDocid, "docid").unwrap();
        let bm = BufferManager::with_mode(DiskModel::instant(), BufferMode::Cold, 1 << 16);
        let mut scan = crate::scan::ColumnScan::new(&back, &bm, 128);
        let mut got = Vec::new();
        let mut v = Vec::new();
        while scan.next_into(&mut v).unwrap() > 0 {
            got.extend_from_slice(&v);
        }
        assert_eq!(got, col.read_all());
        assert_eq!(bm.stats().reads as usize, back.block_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_wrong_magic_and_version() {
        let path = temp_path("magic");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        let good = bytes.clone();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(SegmentError::BadMagic(_))
        ));
        bytes = good;
        bytes[4] = 99;
        // Re-seal the header checksum so the version check is what fires.
        let mut sum = Fnv1a::new();
        sum.update(&bytes[0..32]);
        bytes[32..40].copy_from_slice(&sum.finish().to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(SegmentError::BadVersion(99))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_column_roundtrips() {
        let path = temp_path("empty");
        let col = sample_column(0, 128, Codec::Raw);
        let mut w = SegmentWriter::create(&path).unwrap();
        w.write_column_section(SectionKind::ColTf, &col).unwrap();
        w.finish().unwrap();
        let r = SegmentReader::open(&path).unwrap();
        let back = r.open_column(SectionKind::ColTf, "tf").unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.block_count(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn duplicate_section_kind_is_a_writer_bug() {
        let path = temp_path("dup");
        let mut w = SegmentWriter::create(&path).unwrap();
        w.write_section(SectionKind::Meta, b"a").unwrap();
        let _ = w.write_section(SectionKind::Meta, b"b");
    }

    #[test]
    #[should_panic(expected = "another section is open")]
    fn nested_sections_are_a_writer_bug() {
        let path = temp_path("nested");
        let mut w = SegmentWriter::create(&path).unwrap();
        w.begin_section(SectionKind::Meta).unwrap();
        let _ = w.begin_section(SectionKind::Terms);
    }

    #[test]
    fn streamed_section_matches_whole_buffer_write() {
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let whole = temp_path("stream-whole");
        let mut w = SegmentWriter::create(&whole).unwrap();
        w.write_section(SectionKind::Meta, &payload).unwrap();
        w.finish().unwrap();
        let streamed = temp_path("stream-chunks");
        let mut w = SegmentWriter::create(&streamed).unwrap();
        w.begin_section(SectionKind::Meta).unwrap();
        for chunk in payload.chunks(777) {
            w.append(chunk).unwrap();
        }
        w.end_section().unwrap();
        w.finish().unwrap();
        // Byte-identical files: same offsets, checksums, TOC, header.
        assert_eq!(
            std::fs::read(&whole).unwrap(),
            std::fs::read(&streamed).unwrap()
        );
        let r = SegmentReader::open(&streamed).unwrap();
        assert_eq!(r.read_section(SectionKind::Meta).unwrap(), payload);
        std::fs::remove_file(&whole).unwrap();
        std::fs::remove_file(&streamed).unwrap();
    }

    #[test]
    fn open_rejects_version_one_files() {
        let path = temp_path("v1");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        // Rewind the version field to 1 and re-seal the header checksum, so
        // the typed version rejection (not a checksum error) is what fires.
        bytes[4..6].copy_from_slice(&1u16.to_le_bytes());
        let mut sum = Fnv1a::new();
        sum.update(&bytes[0..32]);
        bytes[32..40].copy_from_slice(&sum.finish().to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(SegmentError::BadVersion(1))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
