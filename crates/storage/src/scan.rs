//! Seekable column scans at vector granularity.
//!
//! A [`ColumnScan`] is the storage half of the X100 pipeline: each
//! `next_into()` decompresses *one vector's worth* of values — not a whole
//! block — directly into the caller's buffer, mirroring how the paper's
//! engine feeds decompressed vectors "directly into the operator pipeline,
//! without writing the uncompressed data back to main memory".
//!
//! `seek()` jumps to an arbitrary position using the entry points of the
//! underlying compressed blocks; inverted-list merge-joins use this to skip
//! over non-matching docid ranges.

use x100_compress::ENTRY_POINT_STRIDE;

use crate::buffer::BufferManager;
use crate::column::Column;
use crate::StorageError;

/// A cursor over one column, producing up to `vector_size` values per call.
#[derive(Debug)]
pub struct ColumnScan<'a> {
    column: &'a Column,
    buffers: &'a BufferManager,
    vector_size: usize,
    /// Logical read position in the column.
    pos: usize,
    /// Staging area: decompressed values covering
    /// `[stage_start, stage_start + staging.len())`. Entry-point alignment
    /// means we may decode slightly more than one vector; the surplus is
    /// served on the next call rather than re-decoded.
    staging: Vec<u32>,
    stage_start: usize,
    /// The block the scan currently holds (pins): charged to the buffer
    /// manager when first entered, not on every refill within it. A scan
    /// that has a block's data staged does not re-read it from disk even
    /// if concurrent queries evict it from the pool in the meantime.
    pinned_block: Option<usize>,
}

impl<'a> ColumnScan<'a> {
    /// Opens a scan at position 0.
    pub fn new(column: &'a Column, buffers: &'a BufferManager, vector_size: usize) -> Self {
        assert!(vector_size > 0, "vector size must be positive");
        ColumnScan {
            column,
            buffers,
            vector_size,
            pos: 0,
            staging: Vec::new(),
            stage_start: 0,
            pinned_block: None,
        }
    }

    /// Current read position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Values remaining.
    pub fn remaining(&self) -> usize {
        self.column.len() - self.pos
    }

    /// Whether the scan is exhausted.
    pub fn is_done(&self) -> bool {
        self.pos >= self.column.len()
    }

    /// Moves the cursor to `pos` (for merge-join skipping). Cheap when `pos`
    /// is already inside the staged range; otherwise the next read decodes
    /// from the nearest entry point.
    pub fn seek(&mut self, pos: usize) -> Result<(), StorageError> {
        if pos > self.column.len() {
            return Err(StorageError::OutOfBounds {
                position: pos,
                len: self.column.len(),
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Reads the next vector into `out` (cleared first), returning how many
    /// values were produced (0 at end of column).
    pub fn next_into(&mut self, out: &mut Vec<u32>) -> Result<usize, StorageError> {
        out.clear();
        let want = self.vector_size.min(self.remaining());
        if want == 0 {
            return Ok(0);
        }
        let mut produced = 0;
        while produced < want {
            // Serve from staging if the current position is staged.
            let stage_end = self.stage_start + self.staging.len();
            if self.pos >= self.stage_start && self.pos < stage_end {
                let off = self.pos - self.stage_start;
                let take = (want - produced).min(stage_end - self.pos);
                out.extend_from_slice(&self.staging[off..off + take]);
                self.pos += take;
                produced += take;
                continue;
            }
            self.refill()?;
        }
        Ok(produced)
    }

    /// Decodes a fresh staging range covering the current position: starts
    /// at the entry point at or below `pos` and spans enough strides to
    /// cover one vector.
    fn refill(&mut self) -> Result<(), StorageError> {
        let aligned = self.pos - self.pos % ENTRY_POINT_STRIDE;
        // Decode enough to cover pos + vector_size, rounded up to strides,
        // clamped to the block end (Column::read_range handles block
        // crossings, but staying within one block keeps buffer-manager
        // accounting per block honest).
        let block_size = self.column.block_size();
        let block_idx = aligned / block_size;
        let block_end = ((block_idx + 1) * block_size).min(self.column.len());
        let want_end = (self.pos + self.vector_size)
            .next_multiple_of(ENTRY_POINT_STRIDE)
            .min(block_end);
        let len = want_end - aligned;
        // Charge the buffer manager once per block *entry*, not per refill:
        // while the scan stays inside one block it is reading data it
        // already fetched (a real scan pins its block), so only crossing
        // into a different block is a fresh read.
        if self.pinned_block != Some(block_idx) {
            self.buffers.touch(self.column, block_idx);
            self.pinned_block = Some(block_idx);
        }
        self.column.read_range(aligned, len, &mut self.staging)?;
        self.stage_start = aligned;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferMode;
    use crate::disk::DiskModel;
    use x100_compress::Codec;

    fn setup(n: usize, block: usize) -> (Column, BufferManager) {
        let values: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(7) % 100_000).collect();
        let mut b =
            crate::column::ColumnBuilder::with_block_size("c", Codec::Pfor { width: 8 }, block);
        b.extend(&values);
        (
            b.finish(),
            BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0),
        )
    }

    #[test]
    fn full_scan_reproduces_column() {
        let (col, bm) = setup(5000, 1024);
        let expect = col.read_all();
        let mut scan = ColumnScan::new(&col, &bm, 600); // deliberately unaligned size
        let mut got = Vec::new();
        let mut v = Vec::new();
        loop {
            let n = scan.next_into(&mut v).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&v);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn vector_size_one_works() {
        let (col, bm) = setup(300, 128);
        let expect = col.read_all();
        let mut scan = ColumnScan::new(&col, &bm, 1);
        let mut v = Vec::new();
        for &e in &expect {
            assert_eq!(scan.next_into(&mut v).unwrap(), 1);
            assert_eq!(v[0], e);
        }
        assert_eq!(scan.next_into(&mut v).unwrap(), 0);
    }

    #[test]
    fn seek_skips_forward() {
        let (col, bm) = setup(5000, 1024);
        let expect = col.read_all();
        let mut scan = ColumnScan::new(&col, &bm, 128);
        let mut v = Vec::new();
        scan.seek(3000).unwrap();
        scan.next_into(&mut v).unwrap();
        assert_eq!(v, &expect[3000..3128]);
    }

    #[test]
    fn seek_backwards_also_works() {
        let (col, bm) = setup(1000, 256);
        let expect = col.read_all();
        let mut scan = ColumnScan::new(&col, &bm, 64);
        let mut v = Vec::new();
        scan.seek(900).unwrap();
        scan.next_into(&mut v).unwrap();
        scan.seek(10).unwrap();
        scan.next_into(&mut v).unwrap();
        assert_eq!(v, &expect[10..74]);
    }

    #[test]
    fn seek_past_end_rejected() {
        let (col, bm) = setup(100, 128);
        let mut scan = ColumnScan::new(&col, &bm, 10);
        assert!(scan.seek(101).is_err());
        assert!(scan.seek(100).is_ok()); // end position itself is fine
        let mut v = Vec::new();
        assert_eq!(scan.next_into(&mut v).unwrap(), 0);
    }

    #[test]
    fn scan_touches_buffer_manager_per_block() {
        let (col, bm) = setup(4096, 512); // 8 blocks
        let mut scan = ColumnScan::new(&col, &bm, 512);
        let mut v = Vec::new();
        while scan.next_into(&mut v).unwrap() > 0 {}
        assert_eq!(bm.stats().reads as usize, col.block_count());
    }

    #[test]
    fn skipping_scan_reads_fewer_blocks_than_full_scan() {
        let (col, bm) = setup(1 << 14, 1024); // 16 blocks
        let mut scan = ColumnScan::new(&col, &bm, 128);
        let mut v = Vec::new();
        // Touch only two far-apart regions.
        scan.seek(0).unwrap();
        scan.next_into(&mut v).unwrap();
        scan.seek(15 * 1024).unwrap();
        scan.next_into(&mut v).unwrap();
        assert!(bm.stats().reads < col.block_count() as u64);
    }

    #[test]
    fn empty_column_scan() {
        let col = Column::from_values("c", Codec::Raw, &[]);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        let mut scan = ColumnScan::new(&col, &bm, 16);
        let mut v = Vec::new();
        assert_eq!(scan.next_into(&mut v).unwrap(), 0);
        assert!(scan.is_done());
    }
}
