//! The simulated-disk I/O cost model.
//!
//! The paper ran on "a software RAID system consisting of 12 disks"
//! delivering "several hundreds of megabytes per second" of sequential
//! bandwidth. We substitute a deterministic cost model: every block read
//! costs one seek plus `bytes / bandwidth` of transfer time. Because the
//! paper's cold-run results are bandwidth-bound, preserving the *ratio*
//! between compressed and raw transfer volumes preserves the experiment's
//! shape (Table 2: the +Compression step improves cold time, and the
//! +Materialization step *worsens* it by reading 32-bit floats instead of
//! 8.13-bit compressed `tf` values).

use std::time::Duration;

/// Deterministic disk cost model: `cost(bytes) = seek + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Fixed per-read positioning cost.
    pub seek: Duration,
    /// Sequential transfer bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl DiskModel {
    /// The paper's testbed: a 12-disk software RAID. We model it at
    /// 600 MB/s sequential with a 4 ms average positioning cost — the
    /// multi-megabyte block granularity makes results insensitive to the
    /// exact seek figure.
    pub fn raid12() -> Self {
        DiskModel {
            seek: Duration::from_micros(4_000),
            bandwidth_bytes_per_sec: 600.0 * 1024.0 * 1024.0,
        }
    }

    /// A single commodity disk (the distributed experiment's per-node
    /// storage): ~70 MB/s, 8 ms seek.
    pub fn single_disk() -> Self {
        DiskModel {
            seek: Duration::from_micros(8_000),
            bandwidth_bytes_per_sec: 70.0 * 1024.0 * 1024.0,
        }
    }

    /// An infinitely fast disk — used to isolate CPU cost in ablations.
    pub fn instant() -> Self {
        DiskModel {
            seek: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
        }
    }

    /// Simulated wall-clock cost of reading `bytes` in one sequential
    /// request.
    ///
    /// Saturates at [`Duration::MAX`] instead of panicking: a corrupt
    /// on-disk length that slips past validation must at worst produce an
    /// absurd simulated cost, never turn the cost model into a panic
    /// (`Duration::from_secs_f64` aborts on overflow, NaN and negatives).
    pub fn read_cost(&self, bytes: usize) -> Duration {
        if self.bandwidth_bytes_per_sec.is_infinite() {
            return self.seek;
        }
        let transfer_secs = bytes as f64 / self.bandwidth_bytes_per_sec;
        let transfer = Duration::try_from_secs_f64(transfer_secs).unwrap_or(Duration::MAX);
        self.seek.saturating_add(transfer)
    }

    /// Simulated wall-clock cost of writing `bytes` in one sequential
    /// request. The model is symmetric — positioning plus transfer at the
    /// same sequential bandwidth — which matches the spill path's
    /// write-once streaming pattern (no read-modify-write amplification).
    pub fn write_cost(&self, bytes: usize) -> Duration {
        self.read_cost(bytes)
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::raid12()
    }
}

/// Accumulated I/O accounting: how many requests were simulated, how many
/// bytes moved, and how much simulated disk time they cost. One `IoStats`
/// tracks one direction — the buffer manager keeps a read stream, the
/// spill path keeps separate write-side and read-side records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of simulated sequential requests (reads, or writes when the
    /// record tracks a write stream).
    pub reads: u64,
    /// Total bytes transferred from the simulated disk.
    pub bytes: u64,
    /// Accumulated simulated disk time.
    pub sim_time: Duration,
}

impl IoStats {
    /// Adds one read of `bytes` costing `cost`.
    pub fn record(&mut self, bytes: usize, cost: Duration) {
        self.reads += 1;
        self.bytes += bytes as u64;
        self.sim_time += cost;
    }

    /// Merges another stats record into this one (used when aggregating
    /// per-query stats into a run total).
    pub fn merge(&mut self, other: &IoStats) {
        self.reads += other.reads;
        self.bytes += other.bytes;
        self.sim_time += other.sim_time;
    }

    /// The change from a `before` snapshot to this one, saturating at zero
    /// per field. Saturation matters under concurrency: if the shared
    /// counters were reset between the two snapshots (`reset_stats` racing
    /// an in-flight query), a plain subtraction would underflow; the delta
    /// is then meaningless but must stay a harmless zero, never a panic or
    /// a wrapped-around huge value.
    pub fn delta_since(&self, before: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(before.reads),
            bytes: self.bytes.saturating_sub(before.bytes),
            sim_time: self.sim_time.saturating_sub(before.sim_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_cost_is_seek_plus_transfer() {
        let disk = DiskModel {
            seek: Duration::from_millis(10),
            bandwidth_bytes_per_sec: 1000.0,
        };
        let cost = disk.read_cost(2000);
        assert_eq!(cost, Duration::from_millis(10) + Duration::from_secs(2));
    }

    #[test]
    fn write_cost_is_symmetric_with_read_cost() {
        let disk = DiskModel::raid12();
        assert_eq!(disk.write_cost(1 << 22), disk.read_cost(1 << 22));
    }

    #[test]
    fn instant_disk_costs_nothing() {
        assert_eq!(DiskModel::instant().read_cost(1 << 30), Duration::ZERO);
    }

    #[test]
    fn read_cost_saturates_instead_of_panicking() {
        // A pathological declared size over a trickling bandwidth would
        // overflow `Duration`; the model must clamp, not panic.
        let slow = DiskModel {
            seek: Duration::from_millis(1),
            bandwidth_bytes_per_sec: f64::MIN_POSITIVE,
        };
        assert_eq!(slow.read_cost(usize::MAX), Duration::MAX);
        assert_eq!(slow.write_cost(usize::MAX), Duration::MAX);
        // Zero bandwidth yields a NaN transfer time — also clamped.
        let stuck = DiskModel {
            seek: Duration::ZERO,
            bandwidth_bytes_per_sec: 0.0,
        };
        assert_eq!(stuck.read_cost(0), Duration::MAX);
    }

    #[test]
    fn bigger_reads_cost_more() {
        let disk = DiskModel::raid12();
        assert!(disk.read_cost(1 << 24) > disk.read_cost(1 << 20));
    }

    #[test]
    fn compression_ratio_preserved_in_cost() {
        // 4x smaller transfer => transfer component 4x cheaper.
        let disk = DiskModel {
            seek: Duration::ZERO,
            bandwidth_bytes_per_sec: 1_000_000.0,
        };
        let raw = disk.read_cost(4_000_000);
        let compressed = disk.read_cost(1_000_000);
        assert_eq!(raw, compressed * 4);
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let mut before = IoStats::default();
        before.record(100, Duration::from_millis(1));
        let mut after = before;
        after.record(50, Duration::from_millis(2));
        let delta = after.delta_since(&before);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.bytes, 50);
        assert_eq!(delta.sim_time, Duration::from_millis(2));
        // A reset between snapshots leaves `after` below `before`: the
        // delta saturates to zero instead of underflowing.
        let reset_delta = IoStats::default().delta_since(&before);
        assert_eq!(reset_delta, IoStats::default());
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = IoStats::default();
        a.record(100, Duration::from_millis(1));
        a.record(200, Duration::from_millis(2));
        assert_eq!(a.reads, 2);
        assert_eq!(a.bytes, 300);
        assert_eq!(a.sim_time, Duration::from_millis(3));
        let mut b = IoStats::default();
        b.record(1, Duration::from_millis(5));
        b.merge(&a);
        assert_eq!(b.reads, 3);
        assert_eq!(b.bytes, 301);
        assert_eq!(b.sim_time, Duration::from_millis(8));
    }
}
