//! Tables: named sets of equal-length columns.
//!
//! The IR layer of the paper represents its index as plain relational
//! tables — `TD[term, docid, tf]`, `D[docid, name, length]`, `T[term, ftd]`
//! (§3.1) — so the storage layer needs only the thinnest relational veneer:
//! a table is a name plus equal-length columns, some compressed numeric
//! ([`Column`]), some string-typed ([`StringColumn`]).

use std::collections::HashMap;

use crate::column::{Column, StringColumn};
use crate::StorageError;

/// A named collection of equal-length columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    row_count: usize,
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
    string_columns: Vec<StringColumn>,
    string_by_name: HashMap<String, usize>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows (0 until the first column is added).
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Adds a numeric column.
    ///
    /// # Panics
    /// Panics if the column's length differs from existing columns.
    pub fn add_column(&mut self, column: Column) -> &mut Self {
        self.check_len(column.len());
        self.by_name
            .insert(column.name().to_owned(), self.columns.len());
        self.columns.push(column);
        self
    }

    /// Adds a string column.
    ///
    /// # Panics
    /// Panics if the column's length differs from existing columns.
    pub fn add_string_column(&mut self, column: StringColumn) -> &mut Self {
        self.check_len(column.len());
        self.string_by_name
            .insert(column.name().to_owned(), self.string_columns.len());
        self.string_columns.push(column);
        self
    }

    fn check_len(&mut self, len: usize) {
        if self.columns.is_empty() && self.string_columns.is_empty() {
            self.row_count = len;
        } else {
            assert_eq!(
                len, self.row_count,
                "column length must match table row count"
            );
        }
    }

    /// Looks up a numeric column by name.
    pub fn column(&self, name: &str) -> Result<&Column, StorageError> {
        self.by_name
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))
    }

    /// Looks up a string column by name.
    pub fn string_column(&self, name: &str) -> Result<&StringColumn, StorageError> {
        self.string_by_name
            .get(name)
            .map(|&i| &self.string_columns[i])
            .ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))
    }

    /// All numeric columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// All string columns.
    pub fn string_columns(&self) -> &[StringColumn] {
        &self.string_columns
    }

    /// Total compressed bytes across numeric columns.
    pub fn compressed_bytes(&self) -> usize {
        self.columns.iter().map(Column::compressed_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_compress::Codec;

    #[test]
    fn add_and_lookup_columns() {
        let mut t = Table::new("TD");
        t.add_column(Column::from_values("docid", Codec::Raw, &[1, 2, 3]));
        t.add_column(Column::from_values("tf", Codec::Raw, &[5, 1, 2]));
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column("tf").unwrap().read_all(), vec![5, 1, 2]);
        assert!(matches!(
            t.column("nope"),
            Err(StorageError::UnknownColumn(_))
        ));
    }

    #[test]
    fn string_columns_share_row_count() {
        let mut t = Table::new("D");
        t.add_column(Column::from_values("docid", Codec::Raw, &[0, 1]));
        t.add_string_column(StringColumn::new(
            "name",
            vec!["doc-a".into(), "doc-b".into()],
        ));
        assert_eq!(t.string_column("name").unwrap().get(0), Some("doc-a"));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_rejected() {
        let mut t = Table::new("T");
        t.add_column(Column::from_values("a", Codec::Raw, &[1, 2]));
        t.add_column(Column::from_values("b", Codec::Raw, &[1]));
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty");
        assert_eq!(t.row_count(), 0);
        assert!(t.columns().is_empty());
    }
}
