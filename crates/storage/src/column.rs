//! Compressed columns: sequences of multi-megabyte compressed blocks.
//!
//! A [`Column`] is the on-"disk" representation of one attribute. Values are
//! `u32` (docids, term frequencies, quantized scores — every hot IR column
//! is a small integer); variable-length attributes (terms, document names)
//! live in [`StringColumn`]s, which stay off the hot path.
//!
//! Each column is chopped into blocks of the builder's block size
//! values. With the default 1 Mi values per block, an uncompressed block is
//! 4 MB — the paper's "granularity of disk accesses is in blocks of several
//! megabytes".

use std::collections::HashMap;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use x100_compress::{Codec, CompressedBlock, ENTRY_POINT_STRIDE};

use crate::StorageError;

/// Globally unique column identity, used as the buffer-manager cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(u64);

static NEXT_COLUMN_ID: AtomicU64 = AtomicU64::new(0);

impl ColumnId {
    fn next() -> Self {
        ColumnId(NEXT_COLUMN_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Default block size in values: 1 Mi values = 4 MB uncompressed.
pub const DEFAULT_BLOCK_SIZE: usize = 1 << 20;

/// Builder for [`Column`]s: choose codec and block size, append values.
#[derive(Debug)]
pub struct ColumnBuilder {
    name: String,
    codec: Codec,
    block_size: usize,
    pending: Vec<u32>,
    blocks: Vec<CompressedBlock>,
    len: usize,
}

impl ColumnBuilder {
    /// Starts a column with the given codec and the default multi-megabyte
    /// block size.
    pub fn new(name: impl Into<String>, codec: Codec) -> Self {
        Self::with_block_size(name, codec, DEFAULT_BLOCK_SIZE)
    }

    /// Starts a column with an explicit block size in values.
    ///
    /// # Panics
    /// Panics if `block_size` is zero or not a multiple of the entry-point
    /// stride (128), which range decoding requires.
    pub fn with_block_size(name: impl Into<String>, codec: Codec, block_size: usize) -> Self {
        assert!(
            block_size > 0 && block_size.is_multiple_of(ENTRY_POINT_STRIDE),
            "block size must be a positive multiple of {ENTRY_POINT_STRIDE}"
        );
        ColumnBuilder {
            name: name.into(),
            codec,
            block_size,
            pending: Vec::new(),
            blocks: Vec::new(),
            len: 0,
        }
    }

    /// Appends one value.
    pub fn push(&mut self, value: u32) {
        self.pending.push(value);
        self.len += 1;
        if self.pending.len() == self.block_size {
            self.flush();
        }
    }

    /// Appends many values.
    pub fn extend(&mut self, values: &[u32]) {
        for &v in values {
            self.push(v);
        }
    }

    /// Values appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Values buffered uncompressed, awaiting the next block flush. This is
    /// the builder's entire uncompressed footprint — everything before it
    /// already lives in compressed blocks — so streaming writers use
    /// `pending_len() * 4` for peak-memory accounting.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn flush(&mut self) {
        if !self.pending.is_empty() {
            self.blocks
                .push(CompressedBlock::encode(&self.pending, self.codec));
            self.pending.clear();
        }
    }

    /// Finishes the column.
    pub fn finish(mut self) -> Column {
        self.flush();
        Column {
            id: ColumnId::next(),
            name: self.name,
            codec: self.codec,
            block_size: self.block_size,
            store: BlockStore::Mem(self.blocks),
            len: self.len,
        }
    }
}

/// The physical backing of a column's compressed blocks.
#[derive(Debug, Clone)]
enum BlockStore {
    /// Every block lives in RAM (a column built in this process).
    Mem(Vec<CompressedBlock>),
    /// Blocks live in a segment file; each is pread and decoded on first
    /// access, cached until the buffer manager evicts it, then re-read.
    Disk(Arc<DiskBlocks>),
}

/// Disk-backed block storage for one column of an open segment.
///
/// Each block occupies a known `(offset, byte length)` extent of the segment
/// file — both validated against the file's real length at open time — and
/// is loaded with a positional read (`pread`) on first access. Loaded blocks
/// are cached in per-block slots; when the [`crate::BufferManager`] evicts a
/// block it drops the slot (via the process-wide registry below), and the
/// next access simply reads it again.
#[derive(Debug)]
struct DiskBlocks {
    column: ColumnId,
    file: Arc<File>,
    /// Per-block (absolute file offset, serialized byte length).
    entries: Vec<(u64, u32)>,
    /// Lazily loaded blocks, one slot per entry.
    slots: Vec<Mutex<Option<Arc<CompressedBlock>>>>,
}

impl DiskBlocks {
    fn new(column: ColumnId, file: Arc<File>, entries: Vec<(u64, u32)>) -> Arc<Self> {
        let slots = entries.iter().map(|_| Mutex::new(None)).collect();
        let blocks = Arc::new(DiskBlocks {
            column,
            file,
            entries,
            slots,
        });
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(column, Arc::downgrade(&blocks));
        blocks
    }

    /// Returns block `idx`, reading and decoding it if its slot is empty.
    ///
    /// # Panics
    /// Panics if the read or decode fails: every segment is fully
    /// checksum-verified at open time, so a failure here means the file
    /// changed (or the device failed) underneath a running process —
    /// an environment fault, not a recoverable input error.
    fn load(&self, idx: usize) -> Arc<CompressedBlock> {
        let mut slot = self.slots[idx].lock().unwrap_or_else(|e| e.into_inner());
        if let Some(block) = slot.as_ref() {
            return Arc::clone(block);
        }
        let (offset, len) = self.entries[idx];
        let mut buf = vec![0u8; len as usize];
        self.file
            .read_exact_at(&mut buf, offset)
            .unwrap_or_else(|e| panic!("segment pread failed after verified open: {e}"));
        let block = CompressedBlock::from_bytes(&buf)
            .unwrap_or_else(|e| panic!("segment block corrupt after verified open: {e:?}"));
        let block = Arc::new(block);
        *slot = Some(Arc::clone(&block));
        block
    }

    fn drop_slot(&self, idx: usize) {
        if let Some(slot) = self.slots.get(idx) {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
}

impl Drop for DiskBlocks {
    fn drop(&mut self) {
        if let Ok(mut reg) = registry().lock() {
            reg.remove(&self.column);
        }
    }
}

/// Process-wide map from column id to its disk-backed block store, so the
/// buffer manager (which only knows `(ColumnId, block index)` keys) can drop
/// the cached bytes of blocks it evicts. Entries are weak: dropping the last
/// `Column` clone frees the store regardless of the registry.
fn registry() -> &'static Mutex<HashMap<ColumnId, Weak<DiskBlocks>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<ColumnId, Weak<DiskBlocks>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Called by the buffer manager after evicting `(column, block_idx)` (with
/// no stripe locks held): for a disk-backed column this frees the cached
/// block bytes, so the next access becomes a real file read again. In-memory
/// columns have no registry entry and are unaffected.
pub(crate) fn release_evicted_block(column: ColumnId, block_idx: u32) {
    let blocks = {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.get(&column).and_then(Weak::upgrade)
    };
    // The upgraded `Arc` is dropped outside the registry lock: if it is the
    // last reference, `DiskBlocks::drop` re-takes that lock.
    if let Some(blocks) = blocks {
        blocks.drop_slot(block_idx as usize);
    }
}

/// A reference to one compressed block: borrowed for in-memory columns,
/// a cached (possibly just-loaded) `Arc` for disk-backed ones. Derefs to
/// [`CompressedBlock`], so call sites read through it transparently.
#[derive(Debug)]
pub enum BlockRef<'a> {
    /// Borrowed from an in-memory block store.
    Mem(&'a CompressedBlock),
    /// Loaded from a segment file (held alive independently of eviction).
    Disk(Arc<CompressedBlock>),
}

impl std::ops::Deref for BlockRef<'_> {
    type Target = CompressedBlock;

    fn deref(&self) -> &CompressedBlock {
        match self {
            BlockRef::Mem(b) => b,
            BlockRef::Disk(b) => b,
        }
    }
}

impl PartialEq for BlockRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

/// A compressed, immutable column of `u32` values.
#[derive(Debug, Clone)]
pub struct Column {
    id: ColumnId,
    name: String,
    codec: Codec,
    block_size: usize,
    store: BlockStore,
    len: usize,
}

impl Column {
    /// Builds a column from a slice in one call.
    pub fn from_values(name: impl Into<String>, codec: Codec, values: &[u32]) -> Self {
        let mut b = ColumnBuilder::new(name, codec);
        b.extend(values);
        b.finish()
    }

    /// Builds a disk-backed column over blocks stored in `file`, each at a
    /// pre-validated `(absolute offset, serialized byte length)` extent.
    /// Used by [`crate::SegmentReader`]; blocks load lazily via `pread`.
    pub(crate) fn from_disk_blocks(
        name: impl Into<String>,
        codec: Codec,
        block_size: usize,
        len: usize,
        file: Arc<File>,
        entries: Vec<(u64, u32)>,
    ) -> Self {
        let id = ColumnId::next();
        Column {
            id,
            name: name.into(),
            codec,
            block_size,
            store: BlockStore::Disk(DiskBlocks::new(id, file, entries)),
            len,
        }
    }

    /// The column's unique identity.
    pub fn id(&self) -> ColumnId {
        self.id
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The codec the column was built with.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block size in values.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        match &self.store {
            BlockStore::Mem(blocks) => blocks.len(),
            BlockStore::Disk(blocks) => blocks.entries.len(),
        }
    }

    /// The compressed block at `idx`. For a disk-backed column this loads
    /// the block from the segment file if it is not currently cached.
    pub fn block(&self, idx: usize) -> BlockRef<'_> {
        match &self.store {
            BlockStore::Mem(blocks) => BlockRef::Mem(&blocks[idx]),
            BlockStore::Disk(blocks) => BlockRef::Disk(blocks.load(idx)),
        }
    }

    /// Size in bytes of block `idx` as the I/O layer sees it — without
    /// loading the block. For in-memory columns this is the compressed
    /// payload size; for disk-backed columns the serialized extent read
    /// from the file (payload plus a small per-block framing header).
    pub fn block_bytes(&self, idx: usize) -> usize {
        match &self.store {
            BlockStore::Mem(blocks) => blocks[idx].compressed_bytes(),
            BlockStore::Disk(blocks) => blocks.entries[idx].1 as usize,
        }
    }

    /// Whether the column's blocks live in a segment file rather than RAM.
    pub fn is_disk_backed(&self) -> bool {
        matches!(self.store, BlockStore::Disk(_))
    }

    /// Ensures block `idx` of a disk-backed column is loaded (the *real*
    /// read behind a buffer-manager miss). No-op for in-memory columns.
    pub(crate) fn ensure_loaded(&self, idx: usize) {
        if let BlockStore::Disk(blocks) = &self.store {
            let _ = blocks.load(idx);
        }
    }

    /// Total compressed size in bytes (without loading any disk-backed
    /// blocks).
    pub fn compressed_bytes(&self) -> usize {
        (0..self.block_count()).map(|i| self.block_bytes(i)).sum()
    }

    /// Uncompressed size in bytes (4 bytes per value).
    pub fn uncompressed_bytes(&self) -> usize {
        self.len * 4
    }

    /// Effective bits per value across the whole column — the figure the
    /// paper quotes ("from 32 to 11.98 and 8.13 bits per tuple").
    pub fn bits_per_value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.compressed_bytes() as f64 * 8.0 / self.len as f64
        }
    }

    /// Decodes values `[start, start + len)` into `out` (cleared first).
    /// The range may span blocks.
    ///
    /// # Alignment contract
    /// `start` must be a multiple of the entry-point stride (128): compressed
    /// blocks can only begin decoding at an entry point, and **this is where
    /// the contract is enforced** — a misaligned `start` returns
    /// [`StorageError::Misaligned`] for every codec, including `Raw`, so
    /// callers cannot come to depend on alignment-forgiving behavior that
    /// would only hold for uncompressed columns. (Block sizes are themselves
    /// multiples of the stride, so an aligned `start` is aligned within its
    /// block too.)
    pub fn read_range(
        &self,
        start: usize,
        len: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), StorageError> {
        if !start.is_multiple_of(ENTRY_POINT_STRIDE) {
            return Err(StorageError::Misaligned {
                position: start,
                stride: ENTRY_POINT_STRIDE,
            });
        }
        let end = start.saturating_add(len);
        if end > self.len {
            return Err(StorageError::OutOfBounds {
                position: end,
                len: self.len,
            });
        }
        out.clear();
        if len == 0 {
            return Ok(());
        }
        // First block decodes straight into `out`: the posting-scan hot path
        // reads one entry-point window inside one block per call and must
        // not allocate. Only multi-block spans pay for a scratch buffer.
        let mut pos = start;
        let first = self.block(pos / self.block_size);
        let in_block = pos % self.block_size;
        let take = (end - pos).min(first.len() - in_block);
        first.decode_range_into(in_block, take, out)?;
        pos += take;
        if pos < end {
            let mut scratch = Vec::new();
            while pos < end {
                // Subsequent reads start at a block boundary (aligned).
                let block = self.block(pos / self.block_size);
                let take = (end - pos).min(block.len());
                block.decode_range_into(0, take, &mut scratch)?;
                out.extend_from_slice(&scratch);
                pos += take;
            }
        }
        Ok(())
    }

    /// Decodes the entire column (test/debug convenience — production reads
    /// go through [`crate::scan::ColumnScan`] at vector granularity).
    pub fn read_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        let mut scratch = Vec::new();
        for idx in 0..self.block_count() {
            let block = self.block(idx);
            if idx == 0 {
                // `decode_into` clears its target, keeping the capacity.
                block.decode_into(&mut out);
            } else {
                block.decode_into(&mut scratch);
                out.extend_from_slice(&scratch);
            }
        }
        out
    }
}

/// Strings per [`StringColumn`] page before the builder seals it.
pub const STRING_PAGE_VALUES: usize = 4096;

/// Byte budget per [`StringColumn`] page: a page is sealed early when its
/// data area reaches this size, keeping pages bounded even for long strings.
pub const STRING_PAGE_BYTES: usize = 1 << 20;

/// One sealed page of a [`StringColumn`]: a contiguous UTF-8 arena plus
/// byte offsets, instead of one heap allocation per string.
#[derive(Debug, Clone, Default)]
struct StringPage {
    /// Concatenated string data.
    data: String,
    /// `offsets[i]..offsets[i + 1]` is the byte range of string `i`;
    /// always one longer than the number of strings in the page.
    offsets: Vec<u32>,
}

impl StringPage {
    fn new() -> Self {
        StringPage {
            data: String::new(),
            offsets: vec![0],
        }
    }

    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, value: &str) {
        self.data.push_str(value);
        // The builder seals a page before it can grow anywhere near this
        // limit, so only a single value of ≥ 4 GiB can trip it — fail loud
        // rather than silently wrapping every later offset in the page.
        let end = u32::try_from(self.data.len())
            .expect("string page offset exceeds u32 range (single value ≥ 4 GiB)");
        self.offsets.push(end);
    }

    fn get(&self, slot: usize) -> &str {
        &self.data[self.offsets[slot] as usize..self.offsets[slot + 1] as usize]
    }
}

/// An uncompressed variable-length string column (document names, terms),
/// stored in **pages**: contiguous string arenas of at most
/// [`STRING_PAGE_VALUES`] values / [`STRING_PAGE_BYTES`] bytes each.
///
/// Strings never appear on the scoring hot path — the paper fetches document
/// names only for the final top-N — but at millions of documents one heap
/// allocation per name dominates the D table's footprint, so the column is
/// paged the same way the numeric columns are blocked:
/// [`StringColumnBuilder`] seals a page at a time, and streaming index
/// builders feed it one name at a time without ever materializing a
/// `Vec<String>`.
#[derive(Debug, Clone, Default)]
pub struct StringColumn {
    name: String,
    len: usize,
    pages: Vec<StringPage>,
    /// First global index of each page (parallel to `pages`).
    page_starts: Vec<usize>,
}

impl StringColumn {
    /// Creates a string column from materialized values (test/convenience
    /// path; streaming construction goes through [`StringColumnBuilder`]).
    pub fn new(name: impl Into<String>, values: Vec<String>) -> Self {
        let mut b = StringColumnBuilder::new(name);
        for v in &values {
            b.push(v);
        }
        b.finish()
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of sealed pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The string at `idx`, or `None` past the end.
    pub fn get(&self, idx: usize) -> Option<&str> {
        if idx >= self.len {
            return None;
        }
        // Pages are usually uniformly sized, but long strings can seal a
        // page early, so locate by binary search over the start indexes.
        let page = self.page_starts.partition_point(|&s| s <= idx) - 1;
        Some(self.pages[page].get(idx - self.page_starts[page]))
    }

    /// Iterates all values in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.pages
            .iter()
            .flat_map(|p| (0..p.len()).map(move |i| p.get(i)))
    }
}

/// Incremental builder for [`StringColumn`]s: push strings one at a time,
/// pages seal themselves as they fill.
#[derive(Debug, Default)]
pub struct StringColumnBuilder {
    name: String,
    len: usize,
    pages: Vec<StringPage>,
    page_starts: Vec<usize>,
    current: StringPage,
}

impl StringColumnBuilder {
    /// Starts an empty column.
    pub fn new(name: impl Into<String>) -> Self {
        StringColumnBuilder {
            name: name.into(),
            len: 0,
            pages: Vec::new(),
            page_starts: Vec::new(),
            current: StringPage::new(),
        }
    }

    /// Values appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one string.
    ///
    /// # Panics
    /// Panics if a *single* value is 4 GiB or larger (a page's byte offsets
    /// are `u32`; pages seal long before that otherwise).
    pub fn push(&mut self, value: &str) {
        // Seal early if this value would carry the current page's data area
        // past the u32 offset range — then only a lone ≥ 4 GiB value can
        // overflow a (fresh) page, and that panics loudly in `StringPage::
        // push` instead of silently wrapping offsets.
        if !self.current.is_empty()
            && self.current.data.len().saturating_add(value.len()) > u32::MAX as usize
        {
            self.seal();
        }
        self.current.push(value);
        self.len += 1;
        if self.current.len() >= STRING_PAGE_VALUES || self.current.data.len() >= STRING_PAGE_BYTES
        {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let page = std::mem::replace(&mut self.current, StringPage::new());
        self.page_starts.push(self.len - page.len());
        self.pages.push(page);
    }

    /// Finishes the column, sealing any partial page.
    pub fn finish(mut self) -> StringColumn {
        if !self.current.is_empty() {
            self.seal();
        }
        StringColumn {
            name: self.name,
            len: self.len,
            pages: self.pages,
            page_starts: self.page_starts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i % 777).collect()
    }

    #[test]
    fn builder_splits_into_blocks() {
        let col = {
            let mut b = ColumnBuilder::with_block_size("c", Codec::Pfor { width: 8 }, 256);
            b.extend(&values(1000));
            b.finish()
        };
        assert_eq!(col.len(), 1000);
        assert_eq!(col.block_count(), 4); // 256*3 + 232
        assert_eq!(col.read_all(), values(1000));
    }

    #[test]
    fn column_ids_are_unique() {
        let a = Column::from_values("a", Codec::Raw, &[1]);
        let b = Column::from_values("b", Codec::Raw, &[1]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn read_range_spans_blocks() {
        let data = values(1000);
        let col = {
            let mut b = ColumnBuilder::with_block_size("c", Codec::PforDelta { width: 8 }, 256);
            b.extend(&data);
            b.finish()
        };
        let mut out = Vec::new();
        col.read_range(128, 500, &mut out).unwrap();
        assert_eq!(out, &data[128..628]);
        // From block boundary.
        col.read_range(256, 256, &mut out).unwrap();
        assert_eq!(out, &data[256..512]);
    }

    #[test]
    fn read_range_out_of_bounds() {
        let col = Column::from_values("c", Codec::Raw, &values(10));
        let mut out = Vec::new();
        assert!(matches!(
            col.read_range(0, 11, &mut out),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn read_range_rejects_misaligned_start_for_every_codec() {
        // The alignment contract is enforced at the column level, uniformly:
        // Raw columns *could* serve misaligned reads, but letting them would
        // hide latent bugs that only fire once a column is compressed.
        let data = values(600);
        for codec in [
            Codec::Raw,
            Codec::Pfor { width: 8 },
            Codec::PforDelta { width: 8 },
            Codec::Pdict { width: 8 },
        ] {
            let col = Column::from_values("c", codec, &data);
            let mut out = Vec::new();
            for start in [1, 64, 127, 129, 300] {
                let err = col.read_range(start, 1, &mut out).unwrap_err();
                assert_eq!(
                    err,
                    StorageError::Misaligned {
                        position: start,
                        stride: 128
                    },
                    "{codec:?} start={start}"
                );
            }
            // Aligned starts keep working, including the last partial stride.
            col.read_range(512, 88, &mut out).unwrap();
            assert_eq!(out, &data[512..600], "{codec:?}");
        }
    }

    #[test]
    fn read_range_spans_block_boundaries_for_every_codec() {
        let data = values(1000);
        for codec in [
            Codec::Raw,
            Codec::Pfor { width: 8 },
            Codec::PforDelta { width: 8 },
            Codec::Pdict { width: 8 },
        ] {
            let col = {
                let mut b = ColumnBuilder::with_block_size("c", codec, 256);
                b.extend(&data);
                b.finish()
            };
            assert_eq!(col.block_count(), 4);
            let mut out = Vec::new();
            for (start, len) in [
                (0, 1000),  // all four blocks
                (128, 500), // mid-block start, two boundary crossings
                (256, 256), // exactly one whole block
                (768, 232), // into the short tail block
                (896, 0),   // empty range at an aligned start
            ] {
                col.read_range(start, len, &mut out).unwrap();
                assert_eq!(out, &data[start..start + len], "{codec:?} {start}+{len}");
            }
        }
    }

    #[test]
    fn builder_finish_empty_produces_zero_blocks() {
        for codec in [Codec::Raw, Codec::Pfor { width: 8 }] {
            let b = ColumnBuilder::with_block_size("c", codec, 256);
            assert!(b.is_empty());
            let col = b.finish();
            assert_eq!(col.len(), 0);
            assert_eq!(col.block_count(), 0);
            assert!(col.read_all().is_empty());
        }
    }

    #[test]
    fn builder_finish_flushes_pending_only_tail() {
        // Fewer values than one block: everything lives in `pending` until
        // finish, which must flush exactly one block.
        let mut b = ColumnBuilder::with_block_size("c", Codec::PforDelta { width: 8 }, 256);
        b.push(42);
        assert_eq!(b.len(), 1);
        assert_eq!(b.pending_len(), 1);
        let col = b.finish();
        assert_eq!(col.block_count(), 1);
        assert_eq!(col.read_all(), vec![42]);
    }

    #[test]
    fn builder_finish_exact_multiple_adds_no_empty_block() {
        let data = values(512);
        let mut b = ColumnBuilder::with_block_size("c", Codec::Pfor { width: 8 }, 256);
        b.extend(&data);
        assert_eq!(b.pending_len(), 0); // both blocks already flushed
        let col = b.finish();
        assert_eq!(col.block_count(), 2);
        assert_eq!(col.read_all(), data);
    }

    #[test]
    fn empty_column() {
        let col = Column::from_values("c", Codec::Pfor { width: 8 }, &[]);
        assert!(col.is_empty());
        assert_eq!(col.block_count(), 0);
        assert!(col.read_all().is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of 128")]
    fn misaligned_block_size_rejected() {
        ColumnBuilder::with_block_size("c", Codec::Raw, 100);
    }

    #[test]
    fn compression_accounting() {
        let data: Vec<u32> = (0..100_000u32).collect(); // sorted: delta-compresses well
        let raw = Column::from_values("raw", Codec::Raw, &data);
        let pfd = Column::from_values("pfd", Codec::PforDelta { width: 8 }, &data);
        assert_eq!(raw.bits_per_value(), 32.0);
        assert!(pfd.bits_per_value() < 10.0, "{}", pfd.bits_per_value());
        assert!(pfd.compressed_bytes() < raw.compressed_bytes() / 3);
    }

    #[test]
    fn string_column_basics() {
        let sc = StringColumn::new("names", vec!["a".into(), "b".into()]);
        assert_eq!(sc.len(), 2);
        assert_eq!(sc.get(1), Some("b"));
        assert_eq!(sc.get(2), None);
        assert_eq!(sc.name(), "names");
        assert_eq!(sc.iter().collect::<Vec<_>>(), vec!["a", "b"]);
        let empty = StringColumn::new("e", Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.get(0), None);
        assert_eq!(empty.page_count(), 0);
    }

    #[test]
    fn string_column_pages_by_value_count() {
        let n = STRING_PAGE_VALUES * 2 + 7; // two full pages + a partial
        let values: Vec<String> = (0..n).map(|i| format!("doc-{i:08}")).collect();
        let mut b = StringColumnBuilder::new("names");
        for v in &values {
            b.push(v);
        }
        assert_eq!(b.len(), n);
        let sc = b.finish();
        assert_eq!(sc.len(), n);
        assert_eq!(sc.page_count(), 3);
        // Every value, including the ones straddling page boundaries.
        for i in [
            0,
            STRING_PAGE_VALUES - 1,
            STRING_PAGE_VALUES,
            2 * STRING_PAGE_VALUES,
            n - 1,
        ] {
            assert_eq!(sc.get(i), Some(values[i].as_str()), "index {i}");
        }
        assert_eq!(sc.get(n), None);
        assert!(sc.iter().eq(values.iter().map(String::as_str)));
    }

    #[test]
    fn string_column_seals_oversized_pages_early() {
        // A handful of megabyte-scale strings must not pile into one page.
        let big = "x".repeat(STRING_PAGE_BYTES / 2 + 1);
        let mut b = StringColumnBuilder::new("blobs");
        for _ in 0..4 {
            b.push(&big);
        }
        let sc = b.finish();
        assert_eq!(sc.len(), 4);
        assert!(sc.page_count() >= 2, "{} pages", sc.page_count());
        for i in 0..4 {
            assert_eq!(sc.get(i).map(str::len), Some(big.len()));
        }
    }
}
