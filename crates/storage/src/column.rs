//! Compressed columns: sequences of multi-megabyte compressed blocks.
//!
//! A [`Column`] is the on-"disk" representation of one attribute. Values are
//! `u32` (docids, term frequencies, quantized scores — every hot IR column
//! is a small integer); variable-length attributes (terms, document names)
//! live in [`StringColumn`]s, which stay off the hot path.
//!
//! Each column is chopped into blocks of the builder's block size
//! values. With the default 1 Mi values per block, an uncompressed block is
//! 4 MB — the paper's "granularity of disk accesses is in blocks of several
//! megabytes".

use std::sync::atomic::{AtomicU64, Ordering};

use x100_compress::{Codec, CompressedBlock, ENTRY_POINT_STRIDE};

use crate::StorageError;

/// Globally unique column identity, used as the buffer-manager cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(u64);

static NEXT_COLUMN_ID: AtomicU64 = AtomicU64::new(0);

impl ColumnId {
    fn next() -> Self {
        ColumnId(NEXT_COLUMN_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Default block size in values: 1 Mi values = 4 MB uncompressed.
pub const DEFAULT_BLOCK_SIZE: usize = 1 << 20;

/// Builder for [`Column`]s: choose codec and block size, append values.
#[derive(Debug)]
pub struct ColumnBuilder {
    name: String,
    codec: Codec,
    block_size: usize,
    pending: Vec<u32>,
    blocks: Vec<CompressedBlock>,
    len: usize,
}

impl ColumnBuilder {
    /// Starts a column with the given codec and the default multi-megabyte
    /// block size.
    pub fn new(name: impl Into<String>, codec: Codec) -> Self {
        Self::with_block_size(name, codec, DEFAULT_BLOCK_SIZE)
    }

    /// Starts a column with an explicit block size in values.
    ///
    /// # Panics
    /// Panics if `block_size` is zero or not a multiple of the entry-point
    /// stride (128), which range decoding requires.
    pub fn with_block_size(name: impl Into<String>, codec: Codec, block_size: usize) -> Self {
        assert!(
            block_size > 0 && block_size.is_multiple_of(ENTRY_POINT_STRIDE),
            "block size must be a positive multiple of {ENTRY_POINT_STRIDE}"
        );
        ColumnBuilder {
            name: name.into(),
            codec,
            block_size,
            pending: Vec::new(),
            blocks: Vec::new(),
            len: 0,
        }
    }

    /// Appends one value.
    pub fn push(&mut self, value: u32) {
        self.pending.push(value);
        self.len += 1;
        if self.pending.len() == self.block_size {
            self.flush();
        }
    }

    /// Appends many values.
    pub fn extend(&mut self, values: &[u32]) {
        for &v in values {
            self.push(v);
        }
    }

    fn flush(&mut self) {
        if !self.pending.is_empty() {
            self.blocks
                .push(CompressedBlock::encode(&self.pending, self.codec));
            self.pending.clear();
        }
    }

    /// Finishes the column.
    pub fn finish(mut self) -> Column {
        self.flush();
        Column {
            id: ColumnId::next(),
            name: self.name,
            codec: self.codec,
            block_size: self.block_size,
            blocks: self.blocks,
            len: self.len,
        }
    }
}

/// A compressed, immutable column of `u32` values.
#[derive(Debug, Clone)]
pub struct Column {
    id: ColumnId,
    name: String,
    codec: Codec,
    block_size: usize,
    blocks: Vec<CompressedBlock>,
    len: usize,
}

impl Column {
    /// Builds a column from a slice in one call.
    pub fn from_values(name: impl Into<String>, codec: Codec, values: &[u32]) -> Self {
        let mut b = ColumnBuilder::new(name, codec);
        b.extend(values);
        b.finish()
    }

    /// The column's unique identity.
    pub fn id(&self) -> ColumnId {
        self.id
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The codec the column was built with.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Block size in values.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The compressed block at `idx`.
    pub fn block(&self, idx: usize) -> &CompressedBlock {
        &self.blocks[idx]
    }

    /// Total compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(CompressedBlock::compressed_bytes)
            .sum()
    }

    /// Uncompressed size in bytes (4 bytes per value).
    pub fn uncompressed_bytes(&self) -> usize {
        self.len * 4
    }

    /// Effective bits per value across the whole column — the figure the
    /// paper quotes ("from 32 to 11.98 and 8.13 bits per tuple").
    pub fn bits_per_value(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.compressed_bytes() as f64 * 8.0 / self.len as f64
        }
    }

    /// Decodes values `[start, start + out_len)` into `out`. `start` must be
    /// aligned to the entry-point stride (128). The range may span blocks.
    pub fn read_range(
        &self,
        start: usize,
        len: usize,
        out: &mut Vec<u32>,
    ) -> Result<(), StorageError> {
        let end = start.saturating_add(len);
        if end > self.len {
            return Err(StorageError::OutOfBounds {
                position: end,
                len: self.len,
            });
        }
        out.clear();
        let mut pos = start;
        let mut scratch = Vec::new();
        while pos < end {
            let block_idx = pos / self.block_size;
            let in_block = pos % self.block_size;
            let block = &self.blocks[block_idx];
            let take = (end - pos).min(block.len() - in_block);
            block.decode_range_into(in_block, take, &mut scratch)?;
            out.extend_from_slice(&scratch);
            pos += take;
        }
        Ok(())
    }

    /// Decodes the entire column (test/debug convenience — production reads
    /// go through [`crate::scan::ColumnScan`] at vector granularity).
    pub fn read_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        let mut scratch = Vec::new();
        for block in &self.blocks {
            block.decode_into(&mut scratch);
            out.extend_from_slice(&scratch);
        }
        out
    }
}

/// An uncompressed variable-length string column (document names, terms).
///
/// Strings never appear on the scoring hot path — the paper fetches document
/// names only for the final top-N — so a plain vector suffices.
#[derive(Debug, Clone, Default)]
pub struct StringColumn {
    name: String,
    values: Vec<String>,
}

impl StringColumn {
    /// Creates a string column from values.
    pub fn new(name: impl Into<String>, values: Vec<String>) -> Self {
        StringColumn {
            name: name.into(),
            values,
        }
    }

    /// The column's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The string at `idx`, or `None` past the end.
    pub fn get(&self, idx: usize) -> Option<&str> {
        self.values.get(idx).map(String::as_str)
    }

    /// All values.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i % 777).collect()
    }

    #[test]
    fn builder_splits_into_blocks() {
        let col = {
            let mut b = ColumnBuilder::with_block_size("c", Codec::Pfor { width: 8 }, 256);
            b.extend(&values(1000));
            b.finish()
        };
        assert_eq!(col.len(), 1000);
        assert_eq!(col.block_count(), 4); // 256*3 + 232
        assert_eq!(col.read_all(), values(1000));
    }

    #[test]
    fn column_ids_are_unique() {
        let a = Column::from_values("a", Codec::Raw, &[1]);
        let b = Column::from_values("b", Codec::Raw, &[1]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn read_range_spans_blocks() {
        let data = values(1000);
        let col = {
            let mut b = ColumnBuilder::with_block_size("c", Codec::PforDelta { width: 8 }, 256);
            b.extend(&data);
            b.finish()
        };
        let mut out = Vec::new();
        col.read_range(128, 500, &mut out).unwrap();
        assert_eq!(out, &data[128..628]);
        // From block boundary.
        col.read_range(256, 256, &mut out).unwrap();
        assert_eq!(out, &data[256..512]);
    }

    #[test]
    fn read_range_out_of_bounds() {
        let col = Column::from_values("c", Codec::Raw, &values(10));
        let mut out = Vec::new();
        assert!(matches!(
            col.read_range(0, 11, &mut out),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn empty_column() {
        let col = Column::from_values("c", Codec::Pfor { width: 8 }, &[]);
        assert!(col.is_empty());
        assert_eq!(col.block_count(), 0);
        assert!(col.read_all().is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of 128")]
    fn misaligned_block_size_rejected() {
        ColumnBuilder::with_block_size("c", Codec::Raw, 100);
    }

    #[test]
    fn compression_accounting() {
        let data: Vec<u32> = (0..100_000u32).collect(); // sorted: delta-compresses well
        let raw = Column::from_values("raw", Codec::Raw, &data);
        let pfd = Column::from_values("pfd", Codec::PforDelta { width: 8 }, &data);
        assert_eq!(raw.bits_per_value(), 32.0);
        assert!(pfd.bits_per_value() < 10.0, "{}", pfd.bits_per_value());
        assert!(pfd.compressed_bytes() < raw.compressed_bytes() / 3);
    }

    #[test]
    fn string_column_basics() {
        let sc = StringColumn::new("names", vec!["a".into(), "b".into()]);
        assert_eq!(sc.len(), 2);
        assert_eq!(sc.get(1), Some("b"));
        assert_eq!(sc.get(2), None);
        assert_eq!(sc.name(), "names");
    }
}
