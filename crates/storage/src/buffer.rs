//! ColumnBM's buffer manager: compressed blocks cached in RAM.
//!
//! The buffer manager tracks which compressed blocks are RAM-resident.
//! Accessing a non-resident block charges the simulated disk cost for its
//! *compressed* size — this is precisely where compression "increases the
//! perceived I/O bandwidth" (§2.1): a block that holds 4 MB of logical data
//! but compresses to 1 MB costs a quarter of the transfer time.
//!
//! Residency is managed LRU under a configurable RAM budget. Two convenience
//! modes mirror the paper's experimental conditions: [`BufferMode::Cold`]
//! (nothing resident; every first touch pays I/O — Table 2's "cold data"
//! column) and [`BufferMode::Hot`] (blocks stay resident once touched and
//! the budget is unbounded — "hot data").

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::column::{Column, ColumnId};
use crate::disk::{DiskModel, IoStats};

/// Experimental buffer conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferMode {
    /// Start with an empty pool; blocks become resident as they are read
    /// (subject to the RAM budget). A fresh `Cold` run charges I/O for every
    /// distinct block.
    Cold,
    /// Everything fits and stays in RAM; only the first touch of each block
    /// ever costs I/O, and re-runs are free. The distributed experiment
    /// (§3.4) keeps "the whole index (10GB) in RAM" this way.
    Hot,
}

#[derive(Debug)]
struct PoolState {
    /// Resident blocks: (column, block index) -> (bytes, last-use tick).
    resident: HashMap<(ColumnId, u32), (usize, u64)>,
    resident_bytes: usize,
    tick: u64,
    stats: IoStats,
}

/// ColumnBM: decides residency, charges simulated I/O, accumulates stats.
///
/// Thread-safe: the distributed simulator shares one buffer manager per node
/// across query streams.
#[derive(Debug)]
pub struct BufferManager {
    disk: DiskModel,
    capacity_bytes: usize,
    state: Mutex<PoolState>,
}

impl BufferManager {
    /// Creates a buffer manager with a RAM budget in bytes.
    pub fn new(disk: DiskModel, capacity_bytes: usize) -> Self {
        BufferManager {
            disk,
            capacity_bytes,
            state: Mutex::new(PoolState {
                resident: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
                stats: IoStats::default(),
            }),
        }
    }

    /// Creates a buffer manager in the given experimental mode. `Hot` gets
    /// an unbounded budget; `Cold` gets the budget provided.
    pub fn with_mode(disk: DiskModel, mode: BufferMode, capacity_bytes: usize) -> Self {
        match mode {
            BufferMode::Cold => Self::new(disk, capacity_bytes),
            BufferMode::Hot => Self::new(disk, usize::MAX),
        }
    }

    /// The disk model in use.
    pub fn disk(&self) -> DiskModel {
        self.disk
    }

    /// Declares that block `block_idx` of `column` is about to be read.
    /// Charges simulated disk time if the block is not resident, then marks
    /// it resident (possibly evicting LRU blocks).
    pub fn touch(&self, column: &Column, block_idx: usize) {
        let key = (column.id(), block_idx as u32);
        let bytes = column.block(block_idx).compressed_bytes();
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        if let Some(entry) = st.resident.get_mut(&key) {
            entry.1 = tick;
            return;
        }
        // Miss: pay the disk.
        let cost = self.disk.read_cost(bytes);
        st.stats.record(bytes, cost);
        // Admit, evicting least-recently-used blocks if over budget.
        st.resident.insert(key, (bytes, tick));
        st.resident_bytes += bytes;
        while st.resident_bytes > self.capacity_bytes && st.resident.len() > 1 {
            let (&victim, &(vbytes, _)) = st
                .resident
                .iter()
                .min_by_key(|(_, &(_, t))| t)
                .expect("non-empty pool");
            // Never evict the block we just admitted.
            if victim == key {
                break;
            }
            st.resident.remove(&victim);
            st.resident_bytes -= vbytes;
        }
    }

    /// Pre-loads every block of `column`, charging I/O once per block.
    /// Used to warm the pool for hot-data experiments.
    pub fn warm(&self, column: &Column) {
        for i in 0..column.block_count() {
            self.touch(column, i);
        }
    }

    /// Drops all residency (the start of a cold run) without resetting
    /// accumulated statistics.
    pub fn evict_all(&self) {
        let mut st = self.state.lock();
        st.resident.clear();
        st.resident_bytes = 0;
    }

    /// Accumulated I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Resets accumulated statistics (between experimental runs).
    pub fn reset_stats(&self) {
        self.state.lock().stats = IoStats::default();
    }

    /// Number of currently resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.state.lock().resident.len()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().resident_bytes
    }

    /// Whether a specific block is resident (test hook).
    pub fn is_resident(&self, column: &Column, block_idx: usize) -> bool {
        self.state
            .lock()
            .resident
            .contains_key(&(column.id(), block_idx as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_compress::Codec;

    fn column(n: usize, block: usize) -> Column {
        let values: Vec<u32> = (0..n as u32).collect();
        let mut b = crate::column::ColumnBuilder::with_block_size(
            "c",
            Codec::PforDelta { width: 8 },
            block,
        );
        b.extend(&values);
        b.finish()
    }

    #[test]
    fn first_touch_charges_io_second_does_not() {
        let col = column(1024, 256);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm.touch(&col, 0);
        let after_first = bm.stats();
        assert_eq!(after_first.reads, 1);
        bm.touch(&col, 0);
        assert_eq!(bm.stats(), after_first, "hit must be free");
    }

    #[test]
    fn evict_all_makes_next_touch_cold() {
        let col = column(1024, 256);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm.touch(&col, 1);
        bm.evict_all();
        bm.touch(&col, 1);
        assert_eq!(bm.stats().reads, 2);
    }

    #[test]
    fn lru_evicts_oldest_under_pressure() {
        let col = column(4096, 256); // 16 blocks
        let one_block = col.block(0).compressed_bytes();
        // Budget for ~2 blocks.
        let bm = BufferManager::new(DiskModel::raid12(), one_block * 2 + 8);
        bm.touch(&col, 0);
        bm.touch(&col, 1);
        bm.touch(&col, 2); // evicts block 0
        assert!(!bm.is_resident(&col, 0));
        assert!(bm.is_resident(&col, 2));
        // Re-touching block 0 is a miss again.
        let reads_before = bm.stats().reads;
        bm.touch(&col, 0);
        assert_eq!(bm.stats().reads, reads_before + 1);
    }

    #[test]
    fn lru_respects_recency() {
        let col = column(4096, 256);
        let one_block = col.block(0).compressed_bytes();
        let bm = BufferManager::new(DiskModel::raid12(), one_block * 2 + 8);
        bm.touch(&col, 0);
        bm.touch(&col, 1);
        bm.touch(&col, 0); // refresh 0; now 1 is LRU
        bm.touch(&col, 2); // should evict 1, not 0
        assert!(bm.is_resident(&col, 0));
        assert!(!bm.is_resident(&col, 1));
    }

    #[test]
    fn warm_loads_every_block() {
        let col = column(1024, 128);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm.warm(&col);
        assert_eq!(bm.resident_blocks(), col.block_count());
        assert_eq!(bm.stats().reads as usize, col.block_count());
    }

    #[test]
    fn compressed_blocks_cost_less_io_time() {
        let values: Vec<u32> = (0..100_000u32).collect();
        let raw = Column::from_values("raw", Codec::Raw, &values);
        let pfd = Column::from_values("pfd", Codec::PforDelta { width: 8 }, &values);
        let bm_raw = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        let bm_pfd = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm_raw.warm(&raw);
        bm_pfd.warm(&pfd);
        assert!(
            bm_pfd.stats().sim_time < bm_raw.stats().sim_time,
            "compression must reduce simulated I/O time"
        );
    }

    #[test]
    fn reset_stats_clears_counters() {
        let col = column(256, 128);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm.touch(&col, 0);
        bm.reset_stats();
        assert_eq!(bm.stats(), IoStats::default());
        // Residency survives a stats reset.
        assert!(bm.is_resident(&col, 0));
    }
}
