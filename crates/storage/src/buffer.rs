//! ColumnBM's buffer manager: compressed blocks cached in RAM.
//!
//! The buffer manager tracks which compressed blocks are RAM-resident.
//! Accessing a non-resident block charges the simulated disk cost for its
//! *compressed* size — this is precisely where compression "increases the
//! perceived I/O bandwidth" (§2.1): a block that holds 4 MB of logical data
//! but compresses to 1 MB costs a quarter of the transfer time.
//!
//! Residency is managed LRU under a configurable RAM budget. Two convenience
//! modes mirror the paper's experimental conditions: [`BufferMode::Cold`]
//! (nothing resident; every first touch pays I/O — Table 2's "cold data"
//! column) and [`BufferMode::Hot`] (blocks stay resident once touched and
//! the budget is unbounded — "hot data").
//!
//! # Concurrency
//!
//! One buffer manager is shared by every concurrent query on a node, so the
//! residency map is **lock-striped**: a block's `(column id, block index)`
//! key hashes to one of [`NUM_STRIPES`] independently locked shards, and the
//! hot path (a residency hit, or a miss admitted under budget) takes exactly
//! one stripe lock. I/O statistics are plain atomic counters, never behind a
//! lock.
//!
//! Each stripe keeps its resident blocks on an intrusive, slab-backed LRU
//! list (hits relink in O(1) with no allocation) and mirrors its oldest
//! tick into a lock-free atomic. Eviction — entered when an admission
//! pushes the pool over budget, i.e. never in `Hot` mode — reads the
//! [`NUM_STRIPES`] mirrors, picks the stripe holding the globally oldest
//! block, and locks **only that stripe** to pop its list head; it never
//! scans the pool and never holds two stripe locks at once (observable via
//! [`BufferManager::eviction_lock_acquisitions`]). Single-threaded
//! behaviour is bit-identical to the historical single-`Mutex` pool: same
//! LRU victim order, same admission accounting, same `warm`/`evict_all`
//! semantics. (Under concurrency, when the just-admitted block is itself
//! the globally oldest, the sweep may evict its stripe's second-oldest
//! instead of hopping stripes — residency under racing queries is
//! schedule-dependent anyway.)

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};

use crate::column::{Column, ColumnId};
use crate::disk::{DiskModel, IoStats};

/// Number of lock stripes in the residency map. A small power of two:
/// enough that concurrent queries touching different blocks almost never
/// contend, few enough that the (rare, over-budget-only) full-pool eviction
/// sweep stays cheap.
pub const NUM_STRIPES: usize = 16;

/// Experimental buffer conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferMode {
    /// Start with an empty pool; blocks become resident as they are read
    /// (subject to the RAM budget). A fresh `Cold` run charges I/O for every
    /// distinct block.
    Cold,
    /// Everything fits and stays in RAM; only the first touch of each block
    /// ever costs I/O, and re-runs are free. The distributed experiment
    /// (§3.4) keeps "the whole index (10GB) in RAM" this way.
    Hot,
}

/// Slab-slot sentinel: "no neighbour" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One resident block in a stripe's slab: its identity and accounting plus
/// the intrusive links of the stripe's recency list.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: (ColumnId, u32),
    bytes: usize,
    tick: u64,
    prev: u32,
    next: u32,
}

/// One shard of the residency map. A block lives in exactly one stripe,
/// chosen by hashing its key, so per-stripe byte counts partition the pool
/// total.
///
/// Residency is a `HashMap` into a slab of [`Slot`]s threaded onto a
/// doubly-linked recency list (`head` = oldest, `tail` = newest). A hit
/// relinks its slot at the tail without allocating; eviction pops the head.
/// Freed slots go on a free list, so steady-state churn reuses capacity.
#[derive(Debug)]
struct Stripe {
    /// Resident blocks: (column, block index) -> slab slot.
    resident: HashMap<(ColumnId, u32), u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    bytes: usize,
}

impl Default for Stripe {
    fn default() -> Self {
        Stripe {
            resident: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }
}

impl Stripe {
    /// Detaches slot `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let Slot { prev, next, .. } = self.slots[i as usize];
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    /// Appends slot `i` at the tail (newest) end.
    fn push_tail(&mut self, i: u32) {
        self.slots[i as usize].prev = self.tail;
        self.slots[i as usize].next = NIL;
        match self.tail {
            NIL => self.head = i,
            t => self.slots[t as usize].next = i,
        }
        self.tail = i;
    }

    /// Refreshes a resident slot to `tick` (a hit): O(1) relink, no
    /// allocation.
    fn refresh(&mut self, i: u32, tick: u64) {
        self.unlink(i);
        self.slots[i as usize].tick = tick;
        self.push_tail(i);
    }

    /// Admits a new block at the newest end.
    fn insert(&mut self, key: (ColumnId, u32), bytes: usize, tick: u64) {
        let slot = Slot {
            key,
            bytes,
            tick,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("stripe slab fits u32");
                self.slots.push(slot);
                i
            }
        };
        self.resident.insert(key, i);
        self.push_tail(i);
        self.bytes += bytes;
    }

    /// Removes the resident block at slot `i`, returning its key and size.
    fn remove_slot(&mut self, i: u32) -> ((ColumnId, u32), usize) {
        self.unlink(i);
        let Slot { key, bytes, .. } = self.slots[i as usize];
        self.resident.remove(&key);
        self.free.push(i);
        self.bytes -= bytes;
        (key, bytes)
    }

    /// The oldest resident slot that is not `protect`: the list head, or
    /// its successor when the head is the protected block.
    fn oldest_excluding(&self, protect: (ColumnId, u32)) -> Option<u32> {
        let mut i = self.head;
        while i != NIL {
            if self.slots[i as usize].key != protect {
                return Some(i);
            }
            i = self.slots[i as usize].next;
        }
        None
    }

    /// The tick of the oldest resident block (`u64::MAX` when empty) — the
    /// value mirrored into the stripe's lock-free atomic.
    fn oldest_tick(&self) -> u64 {
        match self.head {
            NIL => u64::MAX,
            i => self.slots[i as usize].tick,
        }
    }
}

/// ColumnBM: decides residency, charges simulated I/O, accumulates stats.
///
/// Thread-safe and designed for sharing (`Arc<BufferManager>`): concurrent
/// queries on different blocks proceed on different stripe locks, and the
/// statistics counters are lock-free.
#[derive(Debug)]
pub struct BufferManager {
    disk: DiskModel,
    capacity_bytes: usize,
    /// When set, every miss *sleeps* its simulated disk cost (after all
    /// locks are released), turning the cost model into real per-thread
    /// occupancy. Each miss is slept exactly once, by the thread that
    /// incurred it — which is what makes concurrent-serving latency and
    /// throughput measurements attribute I/O correctly.
    simulate_latency: bool,
    stripes: Vec<Mutex<Stripe>>,
    /// Per-stripe mirror of [`Stripe::oldest_tick`], written only under the
    /// owning stripe's lock but readable without it — eviction picks its
    /// victim stripe from these without touching any lock.
    oldest: Vec<AtomicU64>,
    /// Global LRU clock; every touch draws the next tick.
    tick: AtomicU64,
    /// Total bytes resident across all stripes. Updated while holding the
    /// owning stripe's lock; exact at quiescence (and the eviction loop
    /// only ever re-checks it, never trusts one read).
    resident_bytes: AtomicUsize,
    /// Stripe-lock acquisitions made by the eviction path (test hook for
    /// the no-pool-scan property).
    eviction_locks: AtomicU64,
    // I/O statistics, one atomic per field (sim time in nanoseconds).
    stat_reads: AtomicU64,
    stat_bytes: AtomicU64,
    stat_sim_nanos: AtomicU64,
}

/// Stripe index for a block key: an avalanching multiply over the key's
/// standard hash, folded to the stripe count.
fn stripe_of(key: &(ColumnId, u32)) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % NUM_STRIPES
}

/// Residency key for a block. The index is stored narrowed to `u32`; the
/// narrowing is checked, because a silent `as` cast would alias block
/// `2^32 + k` onto block `k` — distinct blocks sharing one residency entry,
/// and (worse) an eviction of one dropping the cached bytes of the other.
/// At the default multi-megabyte block size a `u32` of blocks is an
/// exabyte-scale column, so overflow is a caller bug, not a data regime.
fn block_key(column: &Column, block_idx: usize) -> (ColumnId, u32) {
    let idx = u32::try_from(block_idx).unwrap_or_else(|_| {
        panic!("block index {block_idx} exceeds the u32 buffer-pool key range")
    });
    (column.id(), idx)
}

impl BufferManager {
    /// Creates a buffer manager with a RAM budget in bytes.
    pub fn new(disk: DiskModel, capacity_bytes: usize) -> Self {
        BufferManager {
            disk,
            capacity_bytes,
            simulate_latency: false,
            stripes: (0..NUM_STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            oldest: (0..NUM_STRIPES).map(|_| AtomicU64::new(u64::MAX)).collect(),
            tick: AtomicU64::new(0),
            resident_bytes: AtomicUsize::new(0),
            eviction_locks: AtomicU64::new(0),
            stat_reads: AtomicU64::new(0),
            stat_bytes: AtomicU64::new(0),
            stat_sim_nanos: AtomicU64::new(0),
        }
    }

    /// Creates a buffer manager in the given experimental mode. `Hot` gets
    /// an unbounded budget; `Cold` gets the budget provided.
    pub fn with_mode(disk: DiskModel, mode: BufferMode, capacity_bytes: usize) -> Self {
        match mode {
            BufferMode::Cold => Self::new(disk, capacity_bytes),
            BufferMode::Hot => Self::new(disk, usize::MAX),
        }
    }

    /// Builder-style switch: every miss additionally *sleeps* its
    /// simulated disk cost, converting the deterministic [`DiskModel`]
    /// accounting into real occupancy of the touching thread. The load
    /// harness uses this so concurrent workers overlap I/O waits the way a
    /// real server overlaps outstanding disk requests — each miss slept
    /// exactly once, by the query that triggered it.
    #[must_use]
    pub fn with_simulated_miss_latency(mut self) -> Self {
        self.simulate_latency = true;
        self
    }

    /// The disk model in use.
    pub fn disk(&self) -> DiskModel {
        self.disk
    }

    /// Declares that block `block_idx` of `column` is about to be read.
    /// Charges simulated disk time if the block is not resident, then marks
    /// it resident (possibly evicting LRU blocks).
    ///
    /// For a disk-backed column (one served from an open segment file) a
    /// miss is also a *real* read: the block is loaded from the file here,
    /// after the stripe lock is released. The [`DiskModel`] accounting stays
    /// as a deterministic overlay on top of that physical read.
    pub fn touch(&self, column: &Column, block_idx: usize) {
        let key = block_key(column, block_idx);
        let bytes = column.block_bytes(block_idx);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let cost = {
            let si = stripe_of(&key);
            let mut st = self.stripes[si].lock();
            if let Some(&slot) = st.resident.get(&key) {
                st.refresh(slot, tick);
                self.oldest[si].store(st.oldest_tick(), Ordering::Relaxed);
                return;
            }
            // Miss: pay the disk.
            let cost = self.disk.read_cost(bytes);
            self.stat_reads.fetch_add(1, Ordering::Relaxed);
            self.stat_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            self.stat_sim_nanos
                .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
            // Admit; the over-budget check happens after the stripe lock is
            // released, because evicting may involve *other* stripes.
            st.insert(key, bytes, tick);
            self.oldest[si].store(st.oldest_tick(), Ordering::Relaxed);
            self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
            cost
        };
        // The physical read behind the miss, with no locks held. (In-memory
        // columns make this a no-op — their data never left RAM.)
        column.ensure_loaded(block_idx);
        if self.resident_bytes.load(Ordering::Relaxed) > self.capacity_bytes {
            self.evict_lru(key);
        }
        // Sleep last, with no locks held: the thread pays its own I/O wait
        // without blocking other queries' pool access.
        if self.simulate_latency && !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }

    /// Evicts least-recently-used blocks until the pool is back under
    /// budget, never evicting `protect` (the block just admitted).
    ///
    /// Victim selection reads the per-stripe oldest-tick mirrors lock-free,
    /// then locks **only the stripe holding the globally oldest block** and
    /// pops its list head — one stripe-lock acquisition per evicted block
    /// on the common path (counted in
    /// [`Self::eviction_lock_acquisitions`]), never two stripe locks at
    /// once, and never a scan of the pool.
    ///
    /// Under concurrency `protect` may well be the globally oldest block
    /// (other threads drew newer ticks while this miss was in flight); its
    /// stripe then yields its second-oldest entry instead, and a stripe
    /// holding *nothing but* `protect` is skipped for the rest of the
    /// round. When nothing but `protect` is left anywhere, an over-sized
    /// block simply stays resident, exactly like the historical
    /// single-block pool behaviour.
    fn evict_lru(&self, protect: (ColumnId, u32)) {
        let mut evicted: Vec<(ColumnId, u32)> = Vec::new();
        'pool: while self.resident_bytes.load(Ordering::Relaxed) > self.capacity_bytes {
            // Stripes that turned out to hold nothing evictable this round
            // (raced empty, or hold only the protected block).
            let mut banned = [false; NUM_STRIPES];
            loop {
                let mut best: Option<(u64, usize)> = None;
                for (si, oldest) in self.oldest.iter().enumerate() {
                    if banned[si] {
                        continue;
                    }
                    let t = oldest.load(Ordering::Relaxed);
                    if t != u64::MAX && best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, si));
                    }
                }
                let Some((_, si)) = best else { break 'pool };
                self.eviction_locks.fetch_add(1, Ordering::Relaxed);
                let mut st = self.stripes[si].lock();
                let Some(slot) = st.oldest_excluding(protect) else {
                    banned[si] = true;
                    continue;
                };
                let (victim, vbytes) = st.remove_slot(slot);
                self.oldest[si].store(st.oldest_tick(), Ordering::Relaxed);
                self.resident_bytes.fetch_sub(vbytes, Ordering::Relaxed);
                evicted.push(victim);
                break;
            }
        }
        // Stripe locks released: evicted disk-backed blocks drop their
        // cached bytes, so re-touching them is a real file read again.
        for (col, idx) in evicted {
            crate::column::release_evicted_block(col, idx);
        }
    }

    /// Pre-loads every block of `column`, charging I/O once per block.
    /// Used to warm the pool for hot-data experiments.
    pub fn warm(&self, column: &Column) {
        for i in 0..column.block_count() {
            self.touch(column, i);
        }
    }

    /// Drops all residency (the start of a cold run) without resetting
    /// accumulated statistics. Disk-backed blocks drop their cached bytes
    /// too, so the next run re-reads them from the segment file.
    pub fn evict_all(&self) {
        let mut evicted: Vec<(ColumnId, u32)> = Vec::new();
        {
            let mut stripes: Vec<MutexGuard<'_, Stripe>> =
                self.stripes.iter().map(|s| s.lock()).collect();
            for (si, st) in stripes.iter_mut().enumerate() {
                evicted.extend(st.resident.keys().copied());
                **st = Stripe::default();
                self.oldest[si].store(u64::MAX, Ordering::Relaxed);
            }
            self.resident_bytes.store(0, Ordering::Relaxed);
        }
        for (col, idx) in evicted {
            crate::column::release_evicted_block(col, idx);
        }
    }

    /// Accumulated I/O statistics.
    ///
    /// Lock-free; under concurrent traffic the three fields are read
    /// independently, so a snapshot may straddle an in-flight miss (e.g.
    /// its read counted but its bytes not yet). Quiescent reads are exact.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.stat_reads.load(Ordering::Relaxed),
            bytes: self.stat_bytes.load(Ordering::Relaxed),
            sim_time: Duration::from_nanos(self.stat_sim_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Resets accumulated statistics (between experimental runs). Safe to
    /// call while queries are in flight: counters restart from zero, and
    /// readers computing deltas against a pre-reset snapshot must saturate
    /// ([`IoStats::delta_since`]) rather than underflow.
    pub fn reset_stats(&self) {
        self.stat_reads.store(0, Ordering::Relaxed);
        self.stat_bytes.store(0, Ordering::Relaxed);
        self.stat_sim_nanos.store(0, Ordering::Relaxed);
    }

    /// Number of currently resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().resident.len()).sum()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Whether a specific block is resident (test hook).
    pub fn is_resident(&self, column: &Column, block_idx: usize) -> bool {
        let key = block_key(column, block_idx);
        self.stripes[stripe_of(&key)]
            .lock()
            .resident
            .contains_key(&key)
    }

    /// Number of stripe-lock acquisitions made by the eviction path (test
    /// hook). The common case is exactly one per evicted block; retries (a
    /// stripe raced empty, or held only the protected block) add one each.
    pub fn eviction_lock_acquisitions(&self) -> u64 {
        self.eviction_locks.load(Ordering::Relaxed)
    }

    /// Internal-consistency check (test hook): the lock-free byte total
    /// must equal the sum of per-stripe byte counts; each stripe's recency
    /// list must agree with its residency map (same membership, ticks
    /// nondecreasing head→tail) and with its published oldest-tick mirror.
    /// Exact at quiescence; takes every stripe lock.
    pub fn assert_consistent(&self) {
        let stripes: Vec<MutexGuard<'_, Stripe>> = self.stripes.iter().map(|s| s.lock()).collect();
        let mut total = 0usize;
        for (i, st) in stripes.iter().enumerate() {
            let sum: usize = st
                .resident
                .values()
                .map(|&slot| st.slots[slot as usize].bytes)
                .sum();
            assert_eq!(st.bytes, sum, "stripe {i} byte count drifted");
            let mut walked = 0usize;
            let mut cur = st.head;
            let mut last_tick = 0u64;
            while cur != NIL {
                let slot = &st.slots[cur as usize];
                assert_eq!(
                    st.resident.get(&slot.key),
                    Some(&cur),
                    "stripe {i} recency list disagrees with residency map"
                );
                assert!(slot.tick >= last_tick, "stripe {i} recency order broken");
                last_tick = slot.tick;
                walked += 1;
                cur = slot.next;
            }
            assert_eq!(walked, st.resident.len(), "stripe {i} list length drifted");
            assert_eq!(
                self.oldest[i].load(Ordering::Relaxed),
                st.oldest_tick(),
                "stripe {i} oldest-tick mirror drifted"
            );
            total += st.bytes;
        }
        assert_eq!(
            self.resident_bytes.load(Ordering::Relaxed),
            total,
            "pool byte total drifted from stripe sum"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use x100_compress::Codec;

    fn column(n: usize, block: usize) -> Column {
        let values: Vec<u32> = (0..n as u32).collect();
        let mut b = crate::column::ColumnBuilder::with_block_size(
            "c",
            Codec::PforDelta { width: 8 },
            block,
        );
        b.extend(&values);
        b.finish()
    }

    #[test]
    fn first_touch_charges_io_second_does_not() {
        let col = column(1024, 256);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm.touch(&col, 0);
        let after_first = bm.stats();
        assert_eq!(after_first.reads, 1);
        bm.touch(&col, 0);
        assert_eq!(bm.stats(), after_first, "hit must be free");
    }

    #[test]
    fn evict_all_makes_next_touch_cold() {
        let col = column(1024, 256);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm.touch(&col, 1);
        bm.evict_all();
        bm.touch(&col, 1);
        assert_eq!(bm.stats().reads, 2);
    }

    #[test]
    fn lru_evicts_oldest_under_pressure() {
        let col = column(4096, 256); // 16 blocks
        let one_block = col.block(0).compressed_bytes();
        // Budget for ~2 blocks.
        let bm = BufferManager::new(DiskModel::raid12(), one_block * 2 + 8);
        bm.touch(&col, 0);
        bm.touch(&col, 1);
        bm.touch(&col, 2); // evicts block 0
        assert!(!bm.is_resident(&col, 0));
        assert!(bm.is_resident(&col, 2));
        // Re-touching block 0 is a miss again.
        let reads_before = bm.stats().reads;
        bm.touch(&col, 0);
        assert_eq!(bm.stats().reads, reads_before + 1);
    }

    #[test]
    fn lru_respects_recency() {
        let col = column(4096, 256);
        let one_block = col.block(0).compressed_bytes();
        let bm = BufferManager::new(DiskModel::raid12(), one_block * 2 + 8);
        bm.touch(&col, 0);
        bm.touch(&col, 1);
        bm.touch(&col, 0); // refresh 0; now 1 is LRU
        bm.touch(&col, 2); // should evict 1, not 0
        assert!(bm.is_resident(&col, 0));
        assert!(!bm.is_resident(&col, 1));
    }

    /// Satellite regression: eviction must not scan the pool. Each evicted
    /// block costs exactly one stripe-lock acquisition on the eviction
    /// path — the victim's stripe, found via the lock-free oldest-tick
    /// mirrors — and staying under budget costs none.
    #[test]
    fn eviction_locks_only_the_victims_stripe() {
        let col = column(4096, 256); // 16 blocks
        let one_block = col.block(0).compressed_bytes();
        let bm = BufferManager::new(DiskModel::raid12(), one_block * 2 + 8);
        bm.touch(&col, 0);
        bm.touch(&col, 1);
        assert_eq!(
            bm.eviction_lock_acquisitions(),
            0,
            "under budget, the eviction path must take no locks at all"
        );
        // Every further admission evicts exactly one block; single-threaded
        // the just-admitted block is never the oldest, so each eviction
        // resolves on its first (and only) stripe lock.
        for b in 2..col.block_count() {
            let before = bm.eviction_lock_acquisitions();
            bm.touch(&col, b);
            assert_eq!(
                bm.eviction_lock_acquisitions(),
                before + 1,
                "evicting for block {b} touched more than the victim's stripe"
            );
            assert!(
                !bm.is_resident(&col, b - 2),
                "block {} must be the LRU victim",
                b - 2
            );
        }
        bm.assert_consistent();
    }

    #[test]
    fn warm_loads_every_block() {
        let col = column(1024, 128);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm.warm(&col);
        assert_eq!(bm.resident_blocks(), col.block_count());
        assert_eq!(bm.stats().reads as usize, col.block_count());
    }

    #[test]
    fn compressed_blocks_cost_less_io_time() {
        let values: Vec<u32> = (0..100_000u32).collect();
        let raw = Column::from_values("raw", Codec::Raw, &values);
        let pfd = Column::from_values("pfd", Codec::PforDelta { width: 8 }, &values);
        let bm_raw = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        let bm_pfd = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm_raw.warm(&raw);
        bm_pfd.warm(&pfd);
        assert!(
            bm_pfd.stats().sim_time < bm_raw.stats().sim_time,
            "compression must reduce simulated I/O time"
        );
    }

    #[test]
    fn reset_stats_clears_counters() {
        let col = column(256, 128);
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        bm.touch(&col, 0);
        bm.reset_stats();
        assert_eq!(bm.stats(), IoStats::default());
        // Residency survives a stats reset.
        assert!(bm.is_resident(&col, 0));
    }

    #[test]
    fn single_threaded_behaviour_consistent_across_many_columns() {
        // Blocks from several columns land in different stripes; the
        // observable accounting must still be the single-pool one.
        let cols: Vec<Column> = (0..8).map(|_| column(2048, 256)).collect();
        let bm = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        for c in &cols {
            bm.warm(c);
        }
        let blocks: usize = cols.iter().map(Column::block_count).sum();
        assert_eq!(bm.resident_blocks(), blocks);
        assert_eq!(bm.stats().reads as usize, blocks);
        bm.assert_consistent();
        // Re-warms are all hits.
        for c in &cols {
            bm.warm(c);
        }
        assert_eq!(bm.stats().reads as usize, blocks);
    }

    /// Satellite stress test (loom-free): many threads hammer `touch`,
    /// `warm`, `evict_all` and `stats` on one pool under real capacity
    /// pressure. At quiescence the byte accounting must be internally
    /// consistent and back under the budget, and nothing may panic.
    #[test]
    fn concurrent_stress_under_capacity_pressure() {
        let cols: Vec<Column> = (0..6).map(|_| column(4096, 256)).collect();
        let one_block = cols[0].block(0).compressed_bytes();
        // Room for ~5 blocks while 6 columns × 16 blocks fight for it.
        let bm = Arc::new(BufferManager::new(DiskModel::raid12(), one_block * 5 + 8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let bm = &bm;
                let cols = &cols;
                s.spawn(move || {
                    for round in 0..60 {
                        let c = &cols[(t + round) % cols.len()];
                        for b in 0..c.block_count() {
                            bm.touch(c, (b + t) % c.block_count());
                        }
                        if round % 13 == 5 && t == 0 {
                            bm.evict_all();
                        }
                        if round % 7 == 0 {
                            // Reading stats mid-flight must never panic.
                            let st = bm.stats();
                            assert!(st.bytes >= st.reads, "blocks are >1 byte");
                        }
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..40 {
                    let _ = bm.resident_blocks();
                    let _ = bm.resident_bytes();
                    std::thread::yield_now();
                }
            });
        });
        bm.assert_consistent();
        assert!(
            bm.resident_bytes() <= one_block * 5 + 8,
            "pool settled over budget: {} > {}",
            bm.resident_bytes(),
            one_block * 5 + 8
        );
        assert!(bm.resident_blocks() >= 1);
    }

    #[test]
    fn simulated_miss_latency_occupies_the_touching_thread() {
        let col = column(1024, 256); // 4 blocks
        let disk = DiskModel {
            seek: std::time::Duration::from_millis(5),
            bandwidth_bytes_per_sec: f64::INFINITY,
        };
        let bm = BufferManager::new(disk, usize::MAX).with_simulated_miss_latency();
        let start = std::time::Instant::now();
        bm.warm(&col); // 4 misses à 5 ms
        let elapsed = start.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(20),
            "4 misses slept only {elapsed:?}"
        );
        // Hits are free: no sleeping on the re-warm.
        let start = std::time::Instant::now();
        bm.warm(&col);
        assert!(start.elapsed() < std::time::Duration::from_millis(5));
    }

    /// Satellite regression: `reset_stats` racing in-flight misses must
    /// never underflow or panic — counters only ever move forward from the
    /// reset point, and delta readers saturate.
    #[test]
    fn concurrent_reset_stats_never_underflows() {
        let col = column(4096, 256);
        let bm = Arc::new(BufferManager::with_mode(
            DiskModel::raid12(),
            BufferMode::Hot,
            0,
        ));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let bm = &bm;
                let col = &col;
                s.spawn(move || {
                    for _ in 0..50 {
                        let before = bm.stats();
                        bm.evict_all();
                        bm.warm(col);
                        // Saturating delta: fine even if another thread
                        // reset the counters between the two snapshots.
                        let delta = bm.stats().delta_since(&before);
                        assert!(delta.reads <= 16 * 50 * 3);
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..200 {
                    bm.reset_stats();
                    std::thread::yield_now();
                }
            });
        });
        let final_stats = bm.stats();
        // Sanity: counters are small and coherent, not wrapped-around huge.
        assert!(final_stats.reads < 1_000_000);
        assert!(final_stats.bytes < u64::MAX / 2);
    }
}
