//! Sorted on-disk posting runs — the external-sort leg of index build.
//!
//! When an IR-side index builder runs out of its posting-memory
//! budget it flushes the whole accumulator as one **run file**: every
//! non-empty term's posting list, in strictly ascending term order, each
//! record carrying its own checksum. `finish()` later k-way merges the runs
//! back into one (term, docid)-ordered posting sequence — the same
//! run/merge discipline the paper's X100 storage layer assumes for
//! out-of-core operation.
//!
//! Layout (little-endian throughout, magic `X1RN`):
//!
//! ```text
//! +----------------------------- header (20 bytes) ------------------------+
//! | magic u32 | version u16 | flags u16 | num_terms u32 | num_postings u64 |
//! +------------------------- then num_terms records ------------------------+
//! | term u32 | count u32 | count × posting u64 | fnv1a-64 checksum u64      |
//! +--------------------------------------------------------------------------+
//! ```
//!
//! A posting is packed `docid << 32 | tf`, exactly the builder's in-memory
//! accumulator word. Every byte of the file is validated on read: the
//! header fields against each other and the record stream, each record
//! against its FNV-1a checksum, term order against strict ascent, and the
//! end of the last record against EOF — so truncations *and* single-bit
//! flips surface as [`RunFileError`]s instead of silently dropped or
//! corrupted postings (the failure-injection suite flips every byte).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic number at the start of every run file (`X1RN`).
pub const RUN_MAGIC: u32 = 0x5831_524E;

/// Run-file format version this build writes and accepts.
pub const RUN_VERSION: u16 = 1;

const HEADER_BYTES: u64 = 20;

/// Errors surfaced while writing or reading a run file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunFileError {
    /// Underlying filesystem error (message-only so the error stays
    /// `Clone`/`PartialEq` for tests).
    Io(String),
    /// The file does not start with [`RUN_MAGIC`].
    BadMagic(u32),
    /// The file's version is not [`RUN_VERSION`].
    BadVersion(u16),
    /// The file ends before the header's record stream does.
    Truncated,
    /// Structural corruption: checksum mismatch, term order violation,
    /// count mismatch, trailing bytes, non-zero flags.
    Corrupt(&'static str),
}

impl std::fmt::Display for RunFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFileError::Io(e) => write!(f, "run file I/O error: {e}"),
            RunFileError::BadMagic(m) => write!(f, "bad run-file magic {m:#010x}"),
            RunFileError::BadVersion(v) => write!(f, "unsupported run-file version {v}"),
            RunFileError::Truncated => f.write_str("run file truncated"),
            RunFileError::Corrupt(what) => write!(f, "corrupt run file: {what}"),
        }
    }
}

impl std::error::Error for RunFileError {}

impl From<std::io::Error> for RunFileError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            RunFileError::Truncated
        } else {
            RunFileError::Io(e.to_string())
        }
    }
}

/// Incremental FNV-1a (64-bit) over a record's serialized bytes. Shared
/// with the segment format ([`crate::segment`]), which uses the same
/// checksum discipline per section.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Metadata of a completed run file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Where the run lives on disk.
    pub path: PathBuf,
    /// Number of term records.
    pub num_terms: u32,
    /// Total postings across all records.
    pub num_postings: u64,
    /// Serialized size in bytes (what a sequential read transfers).
    pub bytes: u64,
}

/// Writes one run file: term records pushed in strictly ascending term
/// order, header back-patched with the totals on [`finish`](Self::finish).
#[derive(Debug)]
pub struct RunFileWriter {
    file: BufWriter<File>,
    path: PathBuf,
    num_terms: u32,
    num_postings: u64,
    bytes: u64,
    last_term: Option<u32>,
}

impl RunFileWriter {
    /// Creates the file and writes a placeholder header.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, RunFileError> {
        let path = path.as_ref().to_path_buf();
        let mut file = BufWriter::new(File::create(&path)?);
        // Placeholder header; finish() seeks back and fills the totals.
        file.write_all(&[0u8; HEADER_BYTES as usize])?;
        Ok(RunFileWriter {
            file,
            path,
            num_terms: 0,
            num_postings: 0,
            bytes: HEADER_BYTES,
            last_term: None,
        })
    }

    /// Appends one term's posting list (packed `docid << 32 | tf` words).
    ///
    /// # Panics
    /// Panics if `postings` is empty or `term` does not strictly exceed the
    /// previously written term — both are writer-side contract violations,
    /// not I/O conditions.
    pub fn push_term(&mut self, term: u32, postings: &[u64]) -> Result<(), RunFileError> {
        assert!(!postings.is_empty(), "empty posting list in run file");
        if let Some(prev) = self.last_term {
            assert!(term > prev, "run-file terms must strictly ascend");
        }
        self.last_term = Some(term);
        let mut sum = Fnv1a::new();
        let mut put = |file: &mut BufWriter<File>, bytes: &[u8]| -> Result<(), RunFileError> {
            sum.update(bytes);
            file.write_all(bytes)?;
            Ok(())
        };
        put(&mut self.file, &term.to_le_bytes())?;
        put(&mut self.file, &(postings.len() as u32).to_le_bytes())?;
        for &p in postings {
            put(&mut self.file, &p.to_le_bytes())?;
        }
        self.file.write_all(&sum.finish().to_le_bytes())?;
        self.num_terms += 1;
        self.num_postings += postings.len() as u64;
        self.bytes += 4 + 4 + 8 * postings.len() as u64 + 8;
        Ok(())
    }

    /// Back-patches the header with the final totals and flushes buffered
    /// bytes to the OS (no fsync — run files are transient spill state
    /// re-read within the same build, not crash-durable storage).
    pub fn finish(mut self) -> Result<RunMeta, RunFileError> {
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&RUN_MAGIC.to_le_bytes())?;
        self.file.write_all(&RUN_VERSION.to_le_bytes())?;
        self.file.write_all(&0u16.to_le_bytes())?; // flags, must be zero
        self.file.write_all(&self.num_terms.to_le_bytes())?;
        self.file.write_all(&self.num_postings.to_le_bytes())?;
        self.file.flush()?;
        Ok(RunMeta {
            path: self.path,
            num_terms: self.num_terms,
            num_postings: self.num_postings,
            bytes: self.bytes,
        })
    }
}

/// A source of `(term, postings)` segments in ascending term order — the
/// unit the k-way merge consumes. Implemented by [`RunFileReader`] (disk)
/// and [`MemRun`] (tests and oracles).
pub trait RunSource {
    /// The next term segment, or `Ok(None)` when the source is exhausted.
    /// Exhaustion is also where end-of-stream validation (totals, EOF)
    /// happens, so a source must be drained to be fully verified.
    fn next_segment(&mut self) -> Result<Option<(u32, Vec<u64>)>, RunFileError>;
}

/// Streaming, validating reader over one run file.
#[derive(Debug)]
pub struct RunFileReader {
    file: BufReader<File>,
    num_terms: u32,
    num_postings: u64,
    terms_read: u32,
    postings_read: u64,
    last_term: Option<u32>,
}

impl RunFileReader {
    /// Opens the file and validates the header, including that the header
    /// totals account for the file's exact byte length — so multi-byte
    /// header corruption can neither smuggle in oversized allocation
    /// requests nor hide truncation until mid-stream.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, RunFileError> {
        let file = File::open(path.as_ref())?;
        let file_len = file.metadata()?.len();
        let mut file = BufReader::new(file);
        let magic = read_u32(&mut file)?;
        if magic != RUN_MAGIC {
            return Err(RunFileError::BadMagic(magic));
        }
        let version = read_u16(&mut file)?;
        if version != RUN_VERSION {
            return Err(RunFileError::BadVersion(version));
        }
        let flags = read_u16(&mut file)?;
        if flags != 0 {
            return Err(RunFileError::Corrupt("non-zero header flags"));
        }
        let num_terms = read_u32(&mut file)?;
        let num_postings = read_u64(&mut file)?;
        // Every record is term(4) + count(4) + checksum(8) + 8 bytes per
        // posting, so the header pins the file length exactly.
        let expected = u64::from(num_terms)
            .checked_mul(16)
            .and_then(|records| num_postings.checked_mul(8).map(|p| (records, p)))
            .and_then(|(records, p)| records.checked_add(p))
            .and_then(|body| body.checked_add(HEADER_BYTES));
        if expected != Some(file_len) {
            return Err(RunFileError::Corrupt(
                "header totals disagree with file length",
            ));
        }
        Ok(RunFileReader {
            file,
            num_terms,
            num_postings,
            terms_read: 0,
            postings_read: 0,
            last_term: None,
        })
    }

    /// Term records the header promises.
    pub fn num_terms(&self) -> u32 {
        self.num_terms
    }

    /// Total postings the header promises.
    pub fn num_postings(&self) -> u64 {
        self.num_postings
    }
}

impl RunSource for RunFileReader {
    fn next_segment(&mut self) -> Result<Option<(u32, Vec<u64>)>, RunFileError> {
        if self.terms_read == self.num_terms {
            // End-of-stream validation: totals must reconcile and the file
            // must end exactly here.
            if self.postings_read != self.num_postings {
                return Err(RunFileError::Corrupt("posting total does not match header"));
            }
            let mut probe = [0u8; 1];
            match self.file.read(&mut probe)? {
                0 => return Ok(None),
                _ => return Err(RunFileError::Corrupt("trailing bytes after last record")),
            }
        }
        let mut sum = Fnv1a::new();
        let term_bytes = read_array::<4>(&mut self.file)?;
        sum.update(&term_bytes);
        let term = u32::from_le_bytes(term_bytes);
        if let Some(prev) = self.last_term {
            if term <= prev {
                return Err(RunFileError::Corrupt("run terms out of order"));
            }
        }
        let count_bytes = read_array::<4>(&mut self.file)?;
        sum.update(&count_bytes);
        let count = u32::from_le_bytes(count_bytes) as usize;
        if count == 0 {
            return Err(RunFileError::Corrupt("empty posting list record"));
        }
        if count as u64 > self.num_postings.saturating_sub(self.postings_read) {
            return Err(RunFileError::Corrupt("record exceeds header posting total"));
        }
        let mut postings = Vec::with_capacity(count);
        for _ in 0..count {
            let p = read_array::<8>(&mut self.file)?;
            sum.update(&p);
            postings.push(u64::from_le_bytes(p));
        }
        let stored = u64::from_le_bytes(read_array::<8>(&mut self.file)?);
        if stored != sum.finish() {
            return Err(RunFileError::Corrupt("record checksum mismatch"));
        }
        self.terms_read += 1;
        self.postings_read += count as u64;
        self.last_term = Some(term);
        Ok(Some((term, postings)))
    }
}

/// An in-memory run: the same segment stream a [`RunFileReader`] yields,
/// without the disk. Used by the merge property tests and as a reference
/// oracle; segments are drained front to back.
#[derive(Debug, Clone, Default)]
pub struct MemRun {
    segments: std::collections::VecDeque<(u32, Vec<u64>)>,
}

impl MemRun {
    /// A run over `(term, postings)` segments (must already be in
    /// ascending term order to mirror the on-disk invariant).
    pub fn new(segments: Vec<(u32, Vec<u64>)>) -> Self {
        MemRun {
            segments: segments.into(),
        }
    }
}

impl RunSource for MemRun {
    fn next_segment(&mut self) -> Result<Option<(u32, Vec<u64>)>, RunFileError> {
        Ok(self.segments.pop_front())
    }
}

fn read_array<const N: usize>(r: &mut impl Read) -> Result<[u8; N], RunFileError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u16(r: &mut impl Read) -> Result<u16, RunFileError> {
    Ok(u16::from_le_bytes(read_array::<2>(r)?))
}

fn read_u32(r: &mut impl Read) -> Result<u32, RunFileError> {
    Ok(u32::from_le_bytes(read_array::<4>(r)?))
}

fn read_u64(r: &mut impl Read) -> Result<u64, RunFileError> {
    Ok(u64::from_le_bytes(read_array::<8>(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "x100-runfile-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_segments() -> Vec<(u32, Vec<u64>)> {
        vec![
            (0, vec![(1 << 32) | 3, (2 << 32) | 1]),
            (7, vec![(5 << 32) | 2]),
            (9, (0..100u64).map(|d| (d << 32) | 1).collect()),
        ]
    }

    fn write_sample(path: &Path) -> RunMeta {
        let mut w = RunFileWriter::create(path).unwrap();
        for (term, postings) in sample_segments() {
            w.push_term(term, &postings).unwrap();
        }
        w.finish().unwrap()
    }

    fn drain(path: &Path) -> Result<Vec<(u32, Vec<u64>)>, RunFileError> {
        let mut r = RunFileReader::open(path)?;
        let mut out = Vec::new();
        while let Some(seg) = r.next_segment()? {
            out.push(seg);
        }
        Ok(out)
    }

    #[test]
    fn roundtrip() {
        let path = temp_path("roundtrip");
        let meta = write_sample(&path);
        assert_eq!(meta.num_terms, 3);
        assert_eq!(meta.num_postings, 103);
        assert_eq!(meta.bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(drain(&path).unwrap(), sample_segments());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_run_roundtrips() {
        let path = temp_path("empty");
        let meta = RunFileWriter::create(&path).unwrap().finish().unwrap();
        assert_eq!(meta.num_terms, 0);
        assert_eq!(drain(&path).unwrap(), Vec::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_errors() {
        let path = temp_path("trunc");
        write_sample(&path);
        let bytes = std::fs::read(&path).unwrap();
        let cut_path = temp_path("trunc-cut");
        for cut in 0..bytes.len() {
            std::fs::write(&cut_path, &bytes[..cut]).unwrap();
            assert!(drain(&cut_path).is_err(), "truncation at {cut} accepted");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&cut_path).ok();
    }

    #[test]
    fn every_single_bit_flip_errors() {
        let path = temp_path("flip");
        write_sample(&path);
        let bytes = std::fs::read(&path).unwrap();
        let flip_path = temp_path("flip-mut");
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            std::fs::write(&flip_path, &corrupt).unwrap();
            assert!(drain(&flip_path).is_err(), "bit flip at byte {i} accepted");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&flip_path).ok();
    }

    #[test]
    fn trailing_garbage_errors() {
        let path = temp_path("trailing");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        // Caught already at open: the header totals pin the exact length.
        assert_eq!(
            drain(&path),
            Err(RunFileError::Corrupt(
                "header totals disagree with file length"
            ))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_header_counts_rejected_without_allocation() {
        // Corrupt num_postings *and* a record count coherently huge: the
        // open-time length reconciliation must reject the file before any
        // count-sized allocation can happen.
        let path = temp_path("huge-counts");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes()); // num_postings
        bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes()); // first count
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            drain(&path),
            Err(RunFileError::Corrupt(
                "header totals disagree with file length"
            ))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version_are_specific() {
        let path = temp_path("magic");
        write_sample(&path);
        let good = std::fs::read(&path).unwrap();
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(drain(&path), Err(RunFileError::BadMagic(_))));
        let mut bad = good.clone();
        bad[4] = 0xEE;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(drain(&path), Err(RunFileError::BadVersion(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("missing");
        assert!(matches!(
            RunFileReader::open(&path),
            Err(RunFileError::Io(_))
        ));
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn descending_terms_rejected_at_write() {
        let path = temp_path("descend");
        let mut w = RunFileWriter::create(&path).unwrap();
        w.push_term(5, &[1]).unwrap();
        let _ = w.push_term(5, &[2]);
    }

    #[test]
    fn mem_run_drains_in_order() {
        let mut m = MemRun::new(sample_segments());
        let mut got = Vec::new();
        while let Some(seg) = m.next_segment().unwrap() {
            got.push(seg);
        }
        assert_eq!(got, sample_segments());
    }

    #[test]
    fn error_display_mentions_cause() {
        assert!(RunFileError::Truncated.to_string().contains("truncated"));
        assert!(RunFileError::BadMagic(7).to_string().contains("magic"));
        assert!(RunFileError::Corrupt("checksum mismatch")
            .to_string()
            .contains("checksum"));
    }
}
