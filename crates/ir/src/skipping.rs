//! Skipping-based conjunctive list merging.
//!
//! §2.1 motivates the entry points of the compressed block format with
//! inverted-list merging: "An entry point section holds for every 128 values
//! the offset to the next exception point ... This allows fine-granularity
//! access and skipping, which is especially useful during merging of
//! inverted-lists."
//!
//! The relational `MergeJoin` plan reads both posting lists in full. When
//! one list is much shorter than the other (a rare term ANDed with a common
//! one — precisely the queries the two-pass strategy sends down the
//! conjunctive path), most of the long list's decoded values are discarded.
//! This module implements the classic *leapfrog* intersection over
//! [`PostingCursor`]s that seek by docid: galloping probe over entry-point-
//! aligned windows, decoding only the 128-value windows actually touched.
//!
//! The `skipping` Criterion bench and the `bool_and_skipping_*` tests
//! compare this path against the full-scan merge join; the two must agree
//! exactly on results.

use std::ops::Range;

use x100_compress::ENTRY_POINT_STRIDE;
use x100_storage::{BufferManager, StorageError};

use crate::index::InvertedIndex;

/// A by-docid seekable cursor over one term's posting list.
///
/// Positions are relative to the term's TD range; decoding happens one
/// entry-point-aligned window at a time through the buffer manager, so
/// skipped windows are neither decompressed nor charged beyond their
/// block's residency.
pub struct PostingCursor<'a> {
    index: &'a InvertedIndex,
    buffers: &'a BufferManager,
    /// Absolute TD row range of this posting list.
    range: Range<usize>,
    /// Cursor position, absolute TD row.
    pos: usize,
    /// Decoded docid window covering `[win_start, win_start + window.len())`.
    window: Vec<u32>,
    win_start: usize,
    /// The block the cursor currently holds (pins): charged once on entry,
    /// not on every window refill within it.
    pinned_block: Option<usize>,
}

impl<'a> PostingCursor<'a> {
    /// Opens a cursor over `term`'s posting list.
    pub fn new(index: &'a InvertedIndex, buffers: &'a BufferManager, term: u32) -> Self {
        let range = index.term_range(term);
        PostingCursor {
            index,
            buffers,
            pos: range.start,
            range,
            window: Vec::new(),
            win_start: usize::MAX,
            pinned_block: None,
        }
    }

    /// Number of postings in the list.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Whether the cursor is past the end of the list.
    pub fn is_done(&self) -> bool {
        self.pos >= self.range.end
    }

    /// The docid at the current position.
    ///
    /// # Errors
    /// Propagates storage failures; `is_done()` must be false.
    pub fn current(&mut self) -> Result<u32, StorageError> {
        debug_assert!(!self.is_done());
        let pos = self.pos;
        self.docid_at(pos)
    }

    /// Docid at an absolute TD row, decoding (and caching) its 128-aligned
    /// window.
    fn docid_at(&mut self, pos: usize) -> Result<u32, StorageError> {
        let win_end = self.win_start.saturating_add(self.window.len());
        if pos < self.win_start || pos >= win_end {
            let aligned = pos - pos % ENTRY_POINT_STRIDE;
            let column = self.index.td().column("docid")?;
            // Touch the owning block so buffer-manager accounting matches
            // what a real read would charge — once per block entry; while
            // the cursor walks windows of one block it pins it.
            let block_idx = aligned / column.block_size();
            if self.pinned_block != Some(block_idx) {
                self.buffers.touch(column, block_idx);
                self.pinned_block = Some(block_idx);
            }
            let len = ENTRY_POINT_STRIDE.min(column.len() - aligned);
            column.read_range(aligned, len, &mut self.window)?;
            self.win_start = aligned;
        }
        Ok(self.window[pos - self.win_start])
    }

    /// Advances the cursor to the first posting with `docid >= target`,
    /// returning that docid (or `None` if the list is exhausted). Uses a
    /// galloping probe over window-aligned positions, then binary search
    /// inside the final window span — O(log distance) windows touched.
    pub fn seek_docid(&mut self, target: u32) -> Result<Option<u32>, StorageError> {
        if self.is_done() {
            return Ok(None);
        }
        if self.docid_at(self.pos)? >= target {
            return self.current().map(Some);
        }
        // Gallop: find a probe position whose docid is >= target.
        let mut step = ENTRY_POINT_STRIDE;
        let mut lo = self.pos; // docid_at(lo) < target
        let mut hi = loop {
            let probe = lo + step;
            if probe >= self.range.end {
                break self.range.end;
            }
            if self.docid_at(probe)? >= target {
                break probe;
            }
            lo = probe;
            step *= 2;
        };
        // Binary search in (lo, hi]: first position with docid >= target.
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if mid == self.range.end || self.docid_at(mid)? >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        self.pos = hi;
        if self.is_done() {
            Ok(None)
        } else {
            self.current().map(Some)
        }
    }

    /// Steps past the current posting.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// The current absolute TD row (to fetch aligned payload columns).
    pub fn td_row(&self) -> usize {
        self.pos
    }
}

/// Leapfrog intersection of the given terms' posting lists, returning at
/// most `limit` docids (in increasing order) with their TD rows per term.
///
/// Equivalent to the relational `MergeJoin` fold but touching only the
/// windows the galloping seeks land on. Terms with empty lists yield an
/// empty result immediately (AND semantics).
pub fn intersect_skipping(
    index: &InvertedIndex,
    buffers: &BufferManager,
    terms: &[u32],
    limit: usize,
) -> Result<Vec<(u32, Vec<usize>)>, StorageError> {
    if terms.is_empty() || limit == 0 {
        return Ok(Vec::new());
    }
    let mut cursors: Vec<PostingCursor> = terms
        .iter()
        .map(|&t| PostingCursor::new(index, buffers, t))
        .collect();
    if cursors.iter().any(PostingCursor::is_empty) {
        return Ok(Vec::new());
    }
    // Drive from the shortest list: fewest candidates to verify.
    cursors.sort_by_key(PostingCursor::len);
    // Remember the permutation so TD rows come back in `terms` order.
    let mut order: Vec<usize> = (0..terms.len()).collect();
    order.sort_by_key(|&i| index.term_range(terms[i]).len());

    let mut out = Vec::new();
    'outer: while out.len() < limit {
        let (driver, rest) = cursors.split_first_mut().expect("non-empty");
        if driver.is_done() {
            break;
        }
        let mut candidate = driver.current()?;
        // Ask every other list to catch up; restart on overshoot.
        let mut verified;
        loop {
            verified = true;
            for c in rest.iter_mut() {
                match c.seek_docid(candidate)? {
                    Some(d) if d == candidate => {}
                    Some(d) => {
                        // Overshoot: the driver must catch up to d.
                        match driver.seek_docid(d)? {
                            Some(nd) => {
                                candidate = nd;
                                verified = false;
                                break;
                            }
                            None => break 'outer,
                        }
                    }
                    None => break 'outer,
                }
            }
            if verified {
                break;
            }
        }
        // All cursors sit on `candidate`; record TD rows in `terms` order.
        let mut rows = vec![0usize; terms.len()];
        for (slot, c) in cursors.iter().enumerate() {
            rows[order[slot]] = c.td_row();
        }
        out.push((candidate, rows));
        cursors[0].advance();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{QueryEngine, SearchStrategy};
    use crate::index::IndexConfig;
    use x100_corpus::{CollectionConfig, SyntheticCollection};
    use x100_storage::{BufferMode, DiskModel};

    fn setup() -> (SyntheticCollection, InvertedIndex, BufferManager) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let bm = BufferManager::with_mode(DiskModel::instant(), BufferMode::Hot, 0);
        (c, idx, bm)
    }

    #[test]
    fn cursor_walks_whole_list_in_order() {
        let (_, idx, bm) = setup();
        let term = 10u32;
        let mut cur = PostingCursor::new(&idx, &bm, term);
        let mut seen = Vec::new();
        while !cur.is_done() {
            seen.push(cur.current().unwrap());
            cur.advance();
        }
        let docids = idx.td().column("docid").unwrap().read_all();
        let expect: Vec<u32> = docids[idx.term_range(term)].to_vec();
        assert_eq!(seen, expect);
    }

    #[test]
    fn seek_lands_on_first_geq() {
        let (_, idx, bm) = setup();
        let term = 10u32;
        let docids = idx.td().column("docid").unwrap().read_all();
        let list: Vec<u32> = docids[idx.term_range(term)].to_vec();
        assert!(list.len() > 4, "term 10 should be common in the fixture");
        for probe in [0u32, list[1], list[1] + 1, *list.last().unwrap(), u32::MAX] {
            let mut cur = PostingCursor::new(&idx, &bm, term);
            let got = cur.seek_docid(probe).unwrap();
            let expect = list.iter().copied().find(|&d| d >= probe);
            assert_eq!(got, expect, "probe {probe}");
        }
    }

    #[test]
    fn skipping_intersection_matches_merge_join_plan() {
        let (c, idx, bm) = setup();
        let engine = QueryEngine::new(&idx);
        for q in &c.eval_queries {
            let via_join: Vec<u32> = engine
                .search(&q.terms, SearchStrategy::BoolAnd, c.docs.len())
                .unwrap()
                .results
                .iter()
                .map(|r| r.docid)
                .collect();
            let via_skip: Vec<u32> = intersect_skipping(&idx, &bm, &q.terms, c.docs.len())
                .unwrap()
                .into_iter()
                .map(|(d, _)| d)
                .collect();
            assert_eq!(via_skip, via_join, "terms {:?}", q.terms);
        }
    }

    #[test]
    fn td_rows_point_at_the_right_postings() {
        let (c, idx, bm) = setup();
        let docids = idx.td().column("docid").unwrap().read_all();
        let q = &c.eval_queries[0];
        for (docid, rows) in intersect_skipping(&idx, &bm, &q.terms, 50).unwrap() {
            for (ti, &row) in rows.iter().enumerate() {
                assert_eq!(docids[row], docid, "term {} row {row}", q.terms[ti]);
                assert!(idx.term_range(q.terms[ti]).contains(&row));
            }
        }
    }

    #[test]
    fn limit_truncates() {
        let (c, idx, bm) = setup();
        let q = &c.eval_queries[0];
        let all = intersect_skipping(&idx, &bm, &q.terms, usize::MAX).unwrap();
        let some = intersect_skipping(&idx, &bm, &q.terms, 3).unwrap();
        assert_eq!(&all[..some.len()], &some[..]);
        assert!(some.len() <= 3);
    }

    #[test]
    fn empty_and_unknown_terms_short_circuit() {
        let (_, idx, bm) = setup();
        assert!(intersect_skipping(&idx, &bm, &[], 10).unwrap().is_empty());
        assert!(intersect_skipping(&idx, &bm, &[999_999], 10)
            .unwrap()
            .is_empty());
        assert!(intersect_skipping(&idx, &bm, &[10, 999_999], 10)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rare_common_intersection_touches_fewer_blocks_than_full_scan() {
        // A rare term ANDed with a common term: skipping should charge the
        // buffer manager for (far) fewer reads than scanning the common list.
        let c = SyntheticCollection::generate(&CollectionConfig::small());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        // Find a rare and a common term.
        let common = (0..c.vocab.len() as u32)
            .max_by_key(|&t| idx.doc_freq(t))
            .unwrap();
        let rare = (0..c.vocab.len() as u32)
            .filter(|&t| idx.doc_freq(t) >= 2)
            .min_by_key(|&t| idx.doc_freq(t))
            .unwrap();

        let bm_skip = BufferManager::with_mode(DiskModel::raid12(), BufferMode::Hot, 0);
        let skip = intersect_skipping(&idx, &bm_skip, &[rare, common], usize::MAX).unwrap();

        let engine = QueryEngine::new(&idx);
        let joined = engine
            .search(&[rare, common], SearchStrategy::BoolAnd, c.docs.len())
            .unwrap();
        let join_docids: Vec<u32> = joined.results.iter().map(|r| r.docid).collect();
        let skip_docids: Vec<u32> = skip.iter().map(|&(d, _)| d).collect();
        assert_eq!(skip_docids, join_docids);
        // The win shows up as decoded-window work rather than block count on
        // this small index; assert at least no *more* I/O than the full scan.
        assert!(bm_skip.stats().bytes <= joined.io.bytes.max(1) * 2);
    }
}

#[cfg(test)]
mod engine_integration_tests {
    use crate::engine::{QueryEngine, SearchStrategy};
    use crate::index::{IndexConfig, InvertedIndex};
    use x100_corpus::{CollectionConfig, SyntheticCollection};

    /// The skipping conjunctive path must return exactly what the two-pass
    /// strategy's first (merge-join) pass returns whenever that pass fills
    /// the quota.
    #[test]
    fn skipping_path_matches_relational_first_pass() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let engine = QueryEngine::new(&idx);
        let mut compared = 0;
        for q in &c.eval_queries {
            let relational = engine
                .search(&q.terms, SearchStrategy::Bm25TwoPass, 10)
                .unwrap();
            if relational.passes != 1 {
                continue; // fell through to the outer join; different set
            }
            let skipping = engine.search_conjunctive_skipping(&q.terms, 10).unwrap();
            let a: Vec<(u32, String)> = relational
                .results
                .iter()
                .map(|r| (r.docid, r.name.clone()))
                .collect();
            let b: Vec<(u32, String)> = skipping
                .results
                .iter()
                .map(|r| (r.docid, r.name.clone()))
                .collect();
            assert_eq!(a, b, "terms {:?}", q.terms);
            for (x, y) in relational.results.iter().zip(&skipping.results) {
                assert!(
                    (x.score - y.score).abs() < 1e-3,
                    "{} vs {}",
                    x.score,
                    y.score
                );
            }
            compared += 1;
        }
        assert!(
            compared > 0,
            "fixture must exercise at least one 1-pass query"
        );
    }

    #[test]
    fn skipping_path_handles_unknown_and_empty_queries() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let idx = InvertedIndex::build(&c, &IndexConfig::compressed());
        let engine = QueryEngine::new(&idx);
        assert!(engine
            .search_conjunctive_skipping(&[], 10)
            .unwrap()
            .results
            .is_empty());
        assert!(engine
            .search_conjunctive_skipping(&[9_999_999], 10)
            .unwrap()
            .results
            .is_empty());
    }
}
