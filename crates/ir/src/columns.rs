//! Streaming columnar finish — postings flow straight into compressed
//! column blocks.
//!
//! The builders' `finish` paths used to materialize the merged `docid`/`tf`
//! columns as plain `Vec<u32>`s before compressing, so the finish-side peak
//! grew with total postings — the opposite of what the paper's block-at-a-
//! time storage layer is for. [`IndexColumnsWriter`] closes that gap: the
//! k-way run merge ([`crate::spill`]) and the in-memory term-list drain
//! ([`crate::StreamingIndexBuilder`]) feed it **one term's postings at a
//! time**, and it pushes values into [`x100_storage::ColumnBuilder`]s that
//! compress and seal a block as soon as one fills. At no point does an
//! uncompressed column exist; the writer's uncompressed residency is two
//! pending blocks, tracked by [`IndexColumnsWriter::peak_buffered_bytes`] and
//! reported through `SpillStats::finish_peak_bytes`.
//!
//! The produced blocks are **bit-identical** to the old materialize-then-
//! compress path: a [`ColumnBuilder`] fed value-by-value seals exactly the
//! same blocks as one fed a whole column (pinned by the differential suite
//! in `tests/spill_vs_memory.rs`).

use x100_compress::{Codec, ENTRY_POINT_STRIDE};
use x100_storage::{Column, ColumnBuilder};

use crate::index::IndexConfig;

/// Flat `u32` slots per block-max stride entry: `[max tf, min doc length,
/// max materialized score payload, max docid]`. The score slot is filled
/// by the materialization pass in [`crate::InvertedIndex::from_columns`]
/// (f32 score bits or the max Q8 code) and stays 0 for unmaterialized
/// indexes. The max-docid slot lets the pruned path locate a seek
/// destination stride without decoding any posting block: docids ascend
/// within a term, so for a stride fully inside one term's range the
/// stride max *is* the term's last docid there (and for straddling
/// strides it can only overstate, which costs one extra probe decode,
/// never a missed posting).
pub(crate) const BLOCK_MAX_SLOTS: usize = 4;

/// The posting-column codecs an [`IndexConfig`] selects: `docid` as
/// PFOR-DELTA and `tf` as PFOR (both 8-bit) when compressing, raw otherwise.
pub(crate) fn posting_codecs(config: &IndexConfig) -> (Codec, Codec) {
    if config.compress {
        (Codec::PforDelta { width: 8 }, Codec::Pfor { width: 8 })
    } else {
        (Codec::Raw, Codec::Raw)
    }
}

/// The finished TD posting columns plus the T-table statistics accumulated
/// while streaming: everything [`crate::InvertedIndex`] needs beyond the
/// D-table metadata.
#[derive(Debug)]
pub struct IndexColumns {
    /// Compressed `docid` column, (term, docid)-ordered.
    pub docid: Column,
    /// Compressed `tf` column, aligned with `docid`.
    pub tf: Column,
    /// Per-term document frequencies (`ftd`).
    pub doc_freqs: Vec<u32>,
    /// `offsets[t]..offsets[t + 1]` is term `t`'s row range.
    pub offsets: Vec<usize>,
    /// Per-stride block-max metadata for dynamic pruning:
    /// `BLOCK_MAX_SLOTS` `u32`s per 128-value posting stride — the max
    /// tf, min doc length and max docid over *all* postings in the stride
    /// (a superset of any one term's, so the derived impact bound is
    /// always sound). `ceil(num_postings / 128) * BLOCK_MAX_SLOTS`
    /// entries; the score slot is filled later by the materialization
    /// pass.
    pub block_max: Vec<u32>,
}

/// Builds the TD posting columns incrementally, one term at a time.
///
/// Backed by block-at-a-time [`ColumnBuilder`]s: each pushed posting lands
/// in a pending block that compresses and seals the moment it reaches the
/// configured block size, so the writer never holds more than two pending
/// blocks of uncompressed values regardless of collection size.
#[derive(Debug)]
pub struct IndexColumnsWriter {
    docid: ColumnBuilder,
    tf: ColumnBuilder,
    doc_freqs: Vec<u32>,
    offsets: Vec<usize>,
    /// Streaming per-stride accumulator: `[max tf, min doc length, 0,
    /// max docid]` entries, one per 128-value stride, extended lazily as
    /// rows arrive — O(num_postings / 128) on top of the pending blocks,
    /// never a re-materialized posting column.
    block_max: Vec<u32>,
    /// Global posting rows pushed so far (drives stride bucketing).
    rows_pushed: usize,
    /// Next term slot whose offset gap is still open.
    next_term: usize,
    num_terms: usize,
    block_size: usize,
    peak_buffered: usize,
}

impl IndexColumnsWriter {
    /// A writer over a vocabulary of `num_terms` term ids, with the codecs
    /// and block size the configuration selects.
    pub fn new(config: &IndexConfig, num_terms: usize) -> Self {
        let (docid_codec, tf_codec) = posting_codecs(config);
        IndexColumnsWriter {
            docid: ColumnBuilder::with_block_size("docid", docid_codec, config.block_size),
            tf: ColumnBuilder::with_block_size("tf", tf_codec, config.block_size),
            doc_freqs: vec![0; num_terms],
            offsets: vec![0; num_terms + 1],
            block_max: Vec::new(),
            rows_pushed: 0,
            next_term: 0,
            num_terms,
            block_size: config.block_size,
            peak_buffered: 0,
        }
    }

    /// Appends one term's merged postings (packed `docid << 32 | tf`,
    /// ascending by docid). Terms must arrive in strictly ascending order;
    /// skipped term ids become empty posting lists. `doc_lens` maps docids
    /// to document lengths and feeds the per-stride block-max accumulator
    /// (min doc length maximizes the BM25 impact bound).
    ///
    /// # Panics
    /// Panics if `term` is out of range for the vocabulary, does not
    /// strictly exceed the previously pushed term, or references a docid
    /// beyond `doc_lens` — callers (the k-way merge, the in-memory term
    /// drain) validate their streams first, so a violation here is a bug,
    /// not bad input.
    pub fn push_term(&mut self, term: u32, postings: &[u64], doc_lens: &[i32]) {
        let slot = term as usize;
        assert!(
            slot < self.num_terms,
            "term id {term} out of range for vocabulary of {}",
            self.num_terms
        );
        assert!(
            slot >= self.next_term,
            "term {term} arrived out of order (next expected ≥ {})",
            self.next_term
        );
        // Close the offset gap over absent (empty) terms.
        for t in self.next_term..=slot {
            self.offsets[t + 1] = self.offsets[t];
        }
        self.next_term = slot + 1;
        self.doc_freqs[slot] = postings.len() as u32;
        self.offsets[slot + 1] = self.offsets[slot] + postings.len();
        // Account the *intra-term* pending high-water before pushing (so
        // the hot loop below stays branch-free): both builders fill in
        // lockstep, climbing from the current pending level until a block
        // seals at `block_size` values — whichever comes first.
        let intra_peak = (self.docid.pending_len() + postings.len()).min(self.block_size);
        self.peak_buffered = self.peak_buffered.max(intra_peak * 8); // 2 cols × 4 B
        for &packed in postings {
            // Both halves are exact: the packing discipline stores docid in
            // the upper and tf in the lower 32 bits.
            let docid = u32::try_from(packed >> 32).expect("upper packed half fits u32");
            let tf = packed as u32;
            self.docid.push(docid);
            self.tf.push(tf);
            // Block-max accumulation rides the same pass: open a fresh
            // stride entry on the 128-row boundary, then fold this posting
            // into it. Strides span term boundaries on purpose — the max
            // over the whole stride dominates the max over any one term's
            // rows in it, so the bound stays sound with no per-term
            // directory to keep resident.
            let entry = (self.rows_pushed / ENTRY_POINT_STRIDE) * BLOCK_MAX_SLOTS;
            if entry == self.block_max.len() {
                self.block_max.extend_from_slice(&[0, u32::MAX, 0, 0]);
            }
            let len = doc_lens[docid as usize] as u32;
            self.block_max[entry] = self.block_max[entry].max(tf);
            self.block_max[entry + 1] = self.block_max[entry + 1].min(len);
            self.block_max[entry + 3] = self.block_max[entry + 3].max(docid);
            self.rows_pushed += 1;
        }
    }

    /// High-water mark, across the writer's lifetime, of uncompressed
    /// bytes pending in the two column builders (4 bytes per value per
    /// column) — the writer's entire uncompressed residency, used for
    /// finish-side peak accounting. Tracked at intra-term granularity: a
    /// long posting list that fills and seals a block mid-term still
    /// registers the full-block moment.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.peak_buffered
    }

    /// Seals the pending blocks and returns the finished columns.
    pub fn finish(mut self) -> IndexColumns {
        for t in self.next_term..self.num_terms {
            self.offsets[t + 1] = self.offsets[t];
        }
        IndexColumns {
            docid: self.docid.finish(),
            tf: self.tf.finish(),
            doc_freqs: self.doc_freqs,
            offsets: self.offsets,
            block_max: self.block_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack(docid: u32, tf: u32) -> u64 {
        (u64::from(docid) << 32) | u64::from(tf)
    }

    #[test]
    fn writer_matches_whole_column_compression() {
        let config = IndexConfig::compressed();
        let lens = vec![9i32, 5, 11, 3, 8, 6, 4, 7];
        let mut w = IndexColumnsWriter::new(&config, 5);
        w.push_term(0, &[pack(1, 2), pack(7, 1)], &lens);
        w.push_term(3, &[pack(2, 4)], &lens); // terms 1, 2 absent
        let cols = w.finish();
        assert_eq!(cols.docid.read_all(), vec![1, 7, 2]);
        assert_eq!(cols.tf.read_all(), vec![2, 1, 4]);
        assert_eq!(cols.doc_freqs, vec![2, 0, 0, 1, 0]);
        assert_eq!(cols.offsets, vec![0, 2, 2, 2, 3, 3]);
        // One stride covers all three rows: max tf 4, min len over docids
        // {1, 7, 2} = 5, score slot untouched, max docid 7.
        assert_eq!(cols.block_max, vec![4, 5, 0, 7]);
        // Same blocks as compressing the materialized columns in one go.
        let (dc, tc) = posting_codecs(&config);
        let whole = Column::from_values("docid", dc, &[1, 7, 2]);
        assert_eq!(cols.docid.block(0), whole.block(0));
        let whole_tf = Column::from_values("tf", tc, &[2, 1, 4]);
        assert_eq!(cols.tf.block(0), whole_tf.block(0));
    }

    #[test]
    fn empty_writer_finishes_to_empty_columns() {
        let w = IndexColumnsWriter::new(&IndexConfig::compressed(), 3);
        assert_eq!(w.peak_buffered_bytes(), 0);
        let cols = w.finish();
        assert!(cols.docid.is_empty());
        assert_eq!(cols.offsets, vec![0; 4]);
        assert_eq!(cols.doc_freqs, vec![0; 3]);
        assert!(cols.block_max.is_empty());
    }

    #[test]
    fn peak_buffered_registers_the_full_block_moment() {
        let mut config = IndexConfig::compressed();
        config.block_size = 128;
        let mut w = IndexColumnsWriter::new(&config, 2);
        // One long list that fills and seals a block mid-term: the peak is
        // the full-block moment (128 values × 2 columns × 4 bytes), even
        // though only 72 values per column are pending once it returns.
        let postings: Vec<u64> = (0..200u32).map(|d| pack(d, 1)).collect();
        let lens = vec![7i32; 200];
        w.push_term(0, &postings, &lens);
        assert_eq!(w.peak_buffered_bytes(), 128 * 4 * 2);
        // A later small term cannot lower the high-water mark.
        w.push_term(1, &[pack(0, 1)], &lens);
        assert_eq!(w.peak_buffered_bytes(), 128 * 4 * 2);
        let cols = w.finish();
        assert_eq!(cols.docid.block_count(), 2);
        assert_eq!(cols.docid.read_all().len(), 201);
        // 201 rows → two strides of block-max entries.
        assert_eq!(cols.block_max.len(), 2 * BLOCK_MAX_SLOTS);
        assert_eq!(cols.block_max[0], 1);
        assert_eq!(cols.block_max[1], 7);
        // First stride's rows are term 0's docids 0..=127; the second
        // stride mixes term 0's 128..=199 with term 1's docid 0.
        assert_eq!(cols.block_max[3], 127);
        assert_eq!(cols.block_max[BLOCK_MAX_SLOTS + 3], 199);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn non_ascending_terms_rejected() {
        let mut w = IndexColumnsWriter::new(&IndexConfig::compressed(), 5);
        w.push_term(2, &[pack(0, 1)], &[3, 3]);
        w.push_term(2, &[pack(1, 1)], &[3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_vocab_term_rejected() {
        let mut w = IndexColumnsWriter::new(&IndexConfig::compressed(), 2);
        w.push_term(2, &[pack(0, 1)], &[3]);
    }
}
