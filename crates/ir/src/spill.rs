//! Spill-to-disk index construction under an explicit memory budget.
//!
//! [`crate::StreamingIndexBuilder`] accumulates every posting in RAM, which
//! caps the reachable collection size at available memory. The paper indexes
//! the 25 M-document GOV2 corpus on hardware where that is impossible, so
//! the build side needs the classic external-sort discipline:
//!
//! 1. accumulate postings until a **budget** (bytes of packed postings) is
//!    about to be exceeded;
//! 2. flush the whole accumulator as one sorted, term-ordered **run file**
//!    ([`x100_storage::runfile`]) and start over;
//! 3. on [`finish`](SpillingIndexBuilder::finish), **k-way merge** the runs
//!    back into one (term, docid)-ordered posting stream, fed term by term
//!    into a [`crate::IndexColumnsWriter`] that compresses column blocks as
//!    they fill — the merged `docid`/`tf` columns are **never materialized
//!    uncompressed**, so the finish-side peak is the merge's live segments
//!    plus the largest posting list plus two pending blocks
//!    ([`SpillStats::finish_peak_bytes`]), not the total posting volume.
//!
//! Peak posting-accumulator memory is bounded by the budget (plus one
//! document, when a single document alone exceeds it); run-file I/O is
//! charged to a [`DiskModel`] and reported in [`SpillStats`]. The
//! differential test-suite (`tests/spill_vs_memory.rs`) pins builder
//! equivalence across budgets down to the pathological
//! spill-after-every-document case — including per-block bit-identity
//! against the materialize-then-compress reference — and the merge is
//! property-tested against a collect-and-sort oracle on adversarial run
//! shapes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use x100_corpus::{CollectionStream, CollectionTail, Document};
use x100_storage::runfile::{RunFileReader, RunFileWriter, RunMeta, RunSource};
use x100_storage::{DiskModel, IoStats, RunFileError};

use crate::builder::StreamingIndexBuilder;
use crate::columns::IndexColumnsWriter;
use crate::index::{IndexConfig, InvertedIndex};

/// Error surfaced by the spill path: run-file corruption/IO, or a run whose
/// contents disagree with the vocabulary being finished against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// Run-file level failure (I/O, truncation, checksum, ordering).
    Run(RunFileError),
    /// A merged run contained a term id outside the build vocabulary.
    TermOutOfVocab {
        /// The offending term id.
        term: u32,
        /// The vocabulary size the builder was constructed with.
        num_terms: usize,
    },
    /// A term id too large for the run-file format's 32-bit term field.
    /// Surfaced instead of silently truncating when a vocabulary exceeds
    /// `u32::MAX` ids.
    TermIdOverflow {
        /// The offending term slot.
        term: usize,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Run(e) => write!(f, "spill run error: {e}"),
            SpillError::TermOutOfVocab { term, num_terms } => {
                write!(
                    f,
                    "run term {term} out of range for vocabulary of {num_terms}"
                )
            }
            SpillError::TermIdOverflow { term } => {
                write!(f, "term id {term} exceeds the run-file format's u32 range")
            }
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Run(e) => Some(e),
            SpillError::TermOutOfVocab { .. } | SpillError::TermIdOverflow { .. } => None,
        }
    }
}

impl From<RunFileError> for SpillError {
    fn from(e: RunFileError) -> Self {
        SpillError::Run(e)
    }
}

/// Configuration of the spill path: the posting-memory budget, where run
/// files live, and the disk model their I/O is charged to.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Budget in bytes of packed postings (8 bytes per posting) the
    /// accumulator may hold before flushing a run. Document metadata
    /// (names, lengths) and the final merged index are *not* covered —
    /// the budget bounds the build-side intermediate, which is what grows
    /// with collection size ahead of everything else.
    pub budget_bytes: usize,
    /// Parent directory for run storage; `None` uses the system temp dir.
    /// Each builder creates its own uniquely named subdirectory beneath
    /// it (removed again on drop), so many builders may safely share one
    /// parent.
    pub dir: Option<PathBuf>,
    /// Disk model run-file writes and merge reads are charged to.
    pub disk: DiskModel,
}

impl SpillConfig {
    /// A spill configuration with the given posting budget, temp-dir run
    /// storage and the default [`DiskModel::raid12`] cost model.
    pub fn with_budget(budget_bytes: usize) -> Self {
        SpillConfig {
            budget_bytes,
            dir: None,
            disk: DiskModel::raid12(),
        }
    }

    /// An effectively unbounded budget: the builder never spills and
    /// behaves exactly like [`crate::StreamingIndexBuilder`].
    pub fn unbounded() -> Self {
        SpillConfig::with_budget(usize::MAX)
    }
}

/// What the spill path did: run counts, I/O volume and the accumulator's
/// high-water mark.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Number of run files written (0 = never exceeded the budget).
    pub runs: usize,
    /// Postings that went through run files.
    pub spilled_postings: u64,
    /// Peak bytes of packed postings resident in the accumulator.
    pub peak_accum_bytes: usize,
    /// Peak bytes of finish-phase intermediates: the merge's live posting
    /// residency (one in-flight decoded segment per run source plus the
    /// merged-term buffer, see [`MergeStats`]) plus the columnar writer's
    /// pending uncompressed blocks — and, on the never-spilled path, the
    /// resident accumulator being drained. The streaming columnar finish
    /// keeps this O(sources + block + largest posting list) instead of
    /// O(total postings).
    pub finish_peak_bytes: usize,
    /// Simulated write accounting: one request per run flushed, costed via
    /// [`DiskModel::write_cost`].
    pub write_io: IoStats,
    /// Simulated read accounting: one request per run read back at merge,
    /// costed via [`DiskModel::read_cost`].
    pub read_io: IoStats,
}

impl SpillStats {
    /// Total spill traffic, both directions combined.
    pub fn total_io(&self) -> IoStats {
        let mut io = self.write_io;
        io.merge(&self.read_io);
        io
    }
}

/// Builds an [`InvertedIndex`] from documents pushed in docid order while
/// keeping posting-accumulator memory under [`SpillConfig::budget_bytes`].
///
/// Drop-in sibling of [`crate::StreamingIndexBuilder`]: same push
/// discipline, same resulting index (the differential suite asserts
/// bit-equality of every column), but `push_doc` is fallible (a flush may
/// hit the filesystem) and [`finish`](Self::finish) returns the
/// [`SpillStats`] alongside the index.
///
/// ```
/// use x100_corpus::{CollectionConfig, SyntheticCollection};
/// use x100_ir::{IndexConfig, SpillConfig, SpillingIndexBuilder};
///
/// let c = SyntheticCollection::generate(&CollectionConfig::tiny());
/// let mut b = SpillingIndexBuilder::new(
///     c.vocab.len(),
///     &IndexConfig::default(),
///     SpillConfig::with_budget(16 * 1024),
/// );
/// for doc in &c.docs {
///     b.push_doc(&doc.name, &doc.terms, doc.len).unwrap();
/// }
/// let (index, stats) = b.finish(&c.vocab).unwrap();
/// assert!(stats.runs > 0); // tiny already overflows a 16 KiB budget
/// assert!(stats.peak_accum_bytes <= 16 * 1024);
/// assert_eq!(index.num_postings(), c.docs.iter().map(|d| d.terms.len()).sum::<usize>());
/// ```
#[derive(Debug)]
pub struct SpillingIndexBuilder {
    /// The in-memory accumulator between flushes: the spill builder *is*
    /// a [`StreamingIndexBuilder`], so the two paths share one push and
    /// one never-spilled finish and cannot drift apart.
    inner: StreamingIndexBuilder,
    spill: SpillConfig,
    num_terms: usize,
    /// Bytes of packed postings currently resident in `inner`.
    mem_bytes: usize,
    peak_bytes: usize,
    runs: Vec<RunMeta>,
    guard: RunDirGuard,
    write_io: IoStats,
    read_io: IoStats,
    spilled_postings: u64,
}

/// Best-effort on-drop removal of a builder's run files and its private
/// run directory. A separate guard (instead of `Drop` on the builder)
/// keeps the builder's fields movable in `finish` while still covering
/// every exit path: success, merge errors, and abandoned builders alike.
#[derive(Debug, Default)]
struct RunDirGuard {
    paths: Vec<PathBuf>,
    dir: Option<PathBuf>,
}

impl Drop for RunDirGuard {
    fn drop(&mut self) {
        for p in &self.paths {
            std::fs::remove_file(p).ok();
        }
        if let Some(dir) = &self.dir {
            std::fs::remove_dir(dir).ok();
        }
    }
}

impl SpillingIndexBuilder {
    /// A budgeted builder over a vocabulary of `num_terms` term ids.
    pub fn new(num_terms: usize, config: &IndexConfig, spill: SpillConfig) -> Self {
        SpillingIndexBuilder {
            inner: StreamingIndexBuilder::new(num_terms, config),
            spill,
            num_terms,
            mem_bytes: 0,
            peak_bytes: 0,
            runs: Vec::new(),
            guard: RunDirGuard::default(),
            write_io: IoStats::default(),
            read_io: IoStats::default(),
            spilled_postings: 0,
        }
    }

    /// Documents accepted so far (= the next docid to be assigned).
    pub fn num_docs(&self) -> usize {
        self.inner.num_docs()
    }

    /// Postings accepted so far, resident and spilled together.
    pub fn num_postings(&self) -> u64 {
        self.mem_bytes as u64 / 8 + self.spilled_postings
    }

    /// Run files flushed so far.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Paths of the run files flushed so far (the failure-injection suite
    /// corrupts these between pushes and `finish`).
    pub fn run_paths(&self) -> Vec<PathBuf> {
        self.runs.iter().map(|r| r.path.clone()).collect()
    }

    /// High-water mark of packed-posting bytes resident in the accumulator.
    pub fn peak_accum_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Packed-posting bytes currently resident in the accumulator (the
    /// unspilled tail). Drivers finishing several builders in sequence use
    /// this to account for the accumulators still waiting while another
    /// builder's finish phase runs.
    pub fn resident_accum_bytes(&self) -> usize {
        self.mem_bytes
    }

    /// Accepts the next document and returns its assigned dense docid,
    /// flushing a run first whenever accepting it would exceed the budget.
    ///
    /// `terms` must be sorted by term id, as [`Document::terms`]
    /// guarantees.
    ///
    /// # Panics
    /// Panics if a term id is out of range for the builder's vocabulary.
    pub fn push_doc(
        &mut self,
        name: &str,
        terms: &[(u32, u32)],
        len: u32,
    ) -> Result<u32, SpillError> {
        let doc_bytes = terms.len() * 8;
        if self.mem_bytes > 0 && self.mem_bytes + doc_bytes > self.spill.budget_bytes {
            self.spill_run()?;
        }
        let docid = self.inner.push_doc(name, terms, len);
        self.mem_bytes += doc_bytes;
        self.peak_bytes = self.peak_bytes.max(self.mem_bytes);
        Ok(docid)
    }

    /// Accepts a chunk of documents in order.
    pub fn push_docs<'a>(
        &mut self,
        docs: impl IntoIterator<Item = &'a Document>,
    ) -> Result<(), SpillError> {
        for doc in docs {
            self.push_doc(&doc.name, &doc.terms, doc.len)?;
        }
        Ok(())
    }

    /// Flushes the current accumulator as one sorted run file.
    fn spill_run(&mut self) -> Result<(), SpillError> {
        let dir = match &self.guard.dir {
            Some(d) => d.clone(),
            None => {
                // Each builder spills into its own uniquely named
                // subdirectory, so builders may share a `SpillConfig::dir`
                // parent without colliding on run names or removing each
                // other's files.
                let d = self
                    .spill
                    .dir
                    .clone()
                    .unwrap_or_else(std::env::temp_dir)
                    .join(unique_dir_name());
                std::fs::create_dir_all(&d).map_err(RunFileError::from)?;
                self.guard.dir = Some(d.clone());
                d
            }
        };
        let path = dir.join(format!("run-{:05}.x1rn", self.runs.len()));
        let mut writer = RunFileWriter::create(&path)?;
        // Register with the drop guard up front so a partially written
        // run is cleaned up even when this flush errors out.
        self.guard.paths.push(path);
        // Draining the term lists releases the accumulator's memory —
        // the whole point — while document metadata stays in `inner`.
        let lists = self.inner.take_term_lists();
        for (term, list) in lists.iter().enumerate() {
            if !list.is_empty() {
                let term_id =
                    u32::try_from(term).map_err(|_| SpillError::TermIdOverflow { term })?;
                writer.push_term(term_id, list)?;
            }
        }
        let meta = writer.finish()?;
        self.write_io.record(
            meta.bytes as usize,
            self.spill.disk.write_cost(meta.bytes as usize),
        );
        self.spilled_postings += meta.num_postings;
        self.runs.push(meta);
        self.mem_bytes = 0;
        Ok(())
    }

    /// Assembles the index, merging any on-disk runs, and returns it with
    /// the spill statistics.
    ///
    /// Run files (and the builder's private run directory) are removed by
    /// an internal drop guard — `finish` consumes the builder, so cleanup
    /// happens on every exit path: success, merge errors, and abandoned
    /// builders that never reach `finish` alike.
    ///
    /// # Panics
    /// Panics if `vocab` does not cover the builder's vocabulary size.
    pub fn finish(mut self, vocab: &[String]) -> Result<(InvertedIndex, SpillStats), SpillError> {
        assert_eq!(
            vocab.len(),
            self.num_terms,
            "vocabulary size does not match the builder's term count"
        );
        if self.runs.is_empty() {
            // Never spilled: the accumulator *is* the in-memory builder,
            // whose finish drains term lists straight into the columnar
            // writer and reports the drain's peak.
            let mut stats = self.stats();
            let (index, finish_peak) = self.inner.finish_with_peak(vocab);
            stats.finish_peak_bytes = finish_peak;
            return Ok((index, stats));
        }
        if self.mem_bytes > 0 {
            // Uniform merge path: the resident tail becomes the final run.
            self.spill_run()?;
        }

        // Stream the k-way merge straight into compressed column blocks:
        // each merged term is written and dropped before the next arrives,
        // so the finish-side peak is the live term buffer plus the writer's
        // pending blocks — never whole uncompressed columns.
        let num_terms = self.num_terms;
        let mut writer = IndexColumnsWriter::new(self.inner.config(), num_terms);
        let mut sources = Vec::with_capacity(self.runs.len());
        for run in &self.runs {
            sources.push(RunFileReader::open(&run.path)?);
        }
        let doc_lens = self.inner.doc_lens();
        let merge_stats = merge_run_sources(sources, |term, merged| {
            if term as usize >= num_terms {
                return Err(SpillError::TermOutOfVocab { term, num_terms });
            }
            writer.push_term(term, merged, doc_lens);
            Ok(())
        })?;
        // Peak residency of the merge (in-flight segments + merged buffer)
        // plus the writer's pending-block high-water. Summing the two maxima
        // slightly overcounts the true joint peak — conservative is the
        // right direction for a budget guarantee.
        let finish_peak = merge_stats.peak_live_bytes + writer.peak_buffered_bytes();
        // Charge the merge's sequential read-back of every run.
        for run in &self.runs {
            self.read_io.record(
                run.bytes as usize,
                self.spill.disk.read_cost(run.bytes as usize),
            );
        }

        let mut stats = self.stats();
        stats.finish_peak_bytes = finish_peak;
        let cols = writer.finish();
        let (config, doc_names, doc_lens) = self.inner.into_parts();
        Ok((
            InvertedIndex::from_columns(config, vocab, doc_names, doc_lens, cols),
            stats,
        ))
    }

    fn stats(&self) -> SpillStats {
        SpillStats {
            runs: self.runs.len(),
            spilled_postings: self.spilled_postings,
            peak_accum_bytes: self.peak_bytes,
            finish_peak_bytes: 0,
            write_io: self.write_io,
            read_io: self.read_io,
        }
    }
}

/// What a [`merge_run_sources`] call held live, for finish-phase peak
/// accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Peak bytes of posting data resident inside the merge at any
    /// instant: the in-flight decoded segments (one per source, awaiting
    /// their turn in the heap) **plus** the merged-term buffer. The
    /// writer's pending blocks are accounted separately by the caller.
    pub peak_live_bytes: usize,
}

/// K-way merges run sources into one ascending-term segment stream.
///
/// Sources are consumed segment by segment through a min-heap keyed on
/// `(term, source index)`; all segments sharing the minimal term are
/// concatenated in source order and sorted by packed posting word (docid
/// major, tf minor), so the output is correct even for adversarial runs
/// whose docid ranges interleave. `on_term` receives each merged term
/// exactly once, in strictly ascending term order; the slice it borrows is
/// **one buffer reused across terms** (it grows to the largest posting list
/// and stays there), so per-term consumers on the merge hot path never
/// trigger an allocation here. Returns [`MergeStats`] with the merge's
/// peak live posting residency (in-flight segments + merged buffer).
///
/// Errors from the sources (corrupt run files) and from `on_term`
/// propagate; a source that yields non-ascending terms is reported as
/// corrupt rather than silently mis-merged.
pub fn merge_run_sources<S: RunSource>(
    mut sources: Vec<S>,
    mut on_term: impl FnMut(u32, &[u64]) -> Result<(), SpillError>,
) -> Result<MergeStats, SpillError> {
    let mut pending: Vec<Option<(u32, Vec<u64>)>> = Vec::with_capacity(sources.len());
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    // Bytes of decoded postings sitting in `pending`, maintained
    // incrementally; its high-water (together with the merged buffer) is
    // what the finish-phase budget accounting needs.
    let mut pending_bytes = 0usize;
    for (i, src) in sources.iter_mut().enumerate() {
        let seg = src.next_segment()?;
        if let Some((term, postings)) = &seg {
            heap.push(Reverse((*term, i)));
            pending_bytes += postings.len() * 8;
        }
        pending.push(seg);
    }
    let mut stats = MergeStats {
        peak_live_bytes: pending_bytes,
    };
    // Reused across terms: cleared (not shrunk) each round.
    let mut merged: Vec<u64> = Vec::new();
    while let Some(Reverse((term, _))) = heap.peek().copied() {
        merged.clear();
        while let Some(Reverse((t, i))) = heap.peek().copied() {
            if t != term {
                break;
            }
            heap.pop();
            let (_, postings) = pending[i].take().expect("heap entry without segment");
            pending_bytes -= postings.len() * 8;
            merged.extend_from_slice(&postings);
            let seg = sources[i].next_segment()?;
            if let Some((next_term, postings)) = &seg {
                // Enforce strict per-source ascent here (equal terms
                // included): with every source ascending, the heap order
                // makes the emitted stream ascend by construction.
                if *next_term <= term {
                    return Err(SpillError::Run(RunFileError::Corrupt(
                        "merge sources yielded terms out of order",
                    )));
                }
                heap.push(Reverse((*next_term, i)));
                pending_bytes += postings.len() * 8;
            }
            pending[i] = seg;
        }
        stats.peak_live_bytes = stats.peak_live_bytes.max(pending_bytes + merged.len() * 8);
        // Spill-path runs are docid-disjoint and already ordered, making
        // this near-linear; adversarial sources get full correctness.
        merged.sort_unstable();
        on_term(term, &merged)?;
    }
    Ok(stats)
}

/// Builds an index from a [`CollectionStream`] under a posting-memory
/// budget: the budgeted sibling of [`crate::build_index_streaming`].
/// Returns the index, the workload tail and the spill statistics.
pub fn build_index_streaming_spill(
    mut stream: CollectionStream,
    index_config: &IndexConfig,
    chunk_size: usize,
    spill: SpillConfig,
) -> Result<(InvertedIndex, CollectionTail, SpillStats), SpillError> {
    let vocab = stream.vocab();
    let mut builder = SpillingIndexBuilder::new(vocab.len(), index_config, spill);
    let mut chunk = Vec::new();
    while stream.next_chunk_into(chunk_size, &mut chunk) > 0 {
        builder.push_docs(&chunk)?;
    }
    let tail = stream.finish();
    let (index, stats) = builder.finish(&vocab)?;
    Ok((index, tail, stats))
}

/// A process-unique run-directory name.
fn unique_dir_name() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!(
        "x100-spill-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use x100_corpus::{CollectionConfig, SyntheticCollection};
    use x100_storage::MemRun;

    fn build_spilling(budget: usize) -> (SyntheticCollection, InvertedIndex, SpillStats) {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let mut b = SpillingIndexBuilder::new(
            c.vocab.len(),
            &IndexConfig::compressed(),
            SpillConfig::with_budget(budget),
        );
        b.push_docs(&c.docs).unwrap();
        let (idx, stats) = b.finish(&c.vocab).unwrap();
        (c, idx, stats)
    }

    #[test]
    fn unbounded_budget_never_spills() {
        let (c, idx, stats) = build_spilling(usize::MAX);
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.spilled_postings, 0);
        assert_eq!(stats.total_io(), IoStats::default());
        let batch = InvertedIndex::build(&c, &IndexConfig::compressed());
        assert_eq!(idx.num_postings(), batch.num_postings());
        assert_eq!(
            idx.td().column("docid").unwrap().read_all(),
            batch.td().column("docid").unwrap().read_all()
        );
    }

    #[test]
    fn tight_budget_spills_and_matches_batch() {
        let (c, idx, stats) = build_spilling(8 * 1024);
        assert!(stats.runs > 1, "expected multiple runs, got {}", stats.runs);
        assert!(stats.peak_accum_bytes <= 8 * 1024);
        // The streamed finish never materializes whole columns: its peak is
        // bounded by the pending column blocks plus the largest merged term
        // list, far below the total posting volume.
        assert!(stats.finish_peak_bytes > 0);
        assert!(
            stats.finish_peak_bytes <= idx.num_postings() * 8 + 16 * 1024,
            "finish peak {} for {} postings",
            stats.finish_peak_bytes,
            idx.num_postings()
        );
        assert_eq!(stats.write_io.reads, stats.runs as u64);
        assert_eq!(stats.read_io.reads, stats.runs as u64); // every run read back
        assert_eq!(stats.write_io.bytes, stats.read_io.bytes);
        assert!(stats.total_io().sim_time > std::time::Duration::ZERO);
        let batch = InvertedIndex::build(&c, &IndexConfig::compressed());
        assert_eq!(
            idx.td().column("docid").unwrap().read_all(),
            batch.td().column("docid").unwrap().read_all()
        );
        assert_eq!(
            idx.td().column("tf").unwrap().read_all(),
            batch.td().column("tf").unwrap().read_all()
        );
        assert_eq!(idx.doc_lens(), batch.doc_lens());
    }

    #[test]
    fn run_files_are_cleaned_up() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let mut b = SpillingIndexBuilder::new(
            c.vocab.len(),
            &IndexConfig::compressed(),
            SpillConfig::with_budget(4 * 1024),
        );
        b.push_docs(&c.docs).unwrap();
        let paths = b.run_paths();
        assert!(!paths.is_empty());
        assert!(paths.iter().all(|p| p.exists()));
        let dir = paths[0].parent().unwrap().to_path_buf();
        let _ = b.finish(&c.vocab).unwrap();
        assert!(paths.iter().all(|p| !p.exists()));
        assert!(!dir.exists());
    }

    #[test]
    fn merge_handles_empty_and_disjoint_sources() {
        let a = MemRun::new(vec![(1, vec![10]), (5, vec![11, 12])]);
        let b = MemRun::new(vec![]);
        let c = MemRun::new(vec![(0, vec![7]), (5, vec![2])]);
        let mut got = Vec::new();
        merge_run_sources(vec![a, b, c], |t, p| {
            got.push((t, p.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(got, vec![(0, vec![7]), (1, vec![10]), (5, vec![2, 11, 12])]);
    }

    #[test]
    fn merge_rejects_out_of_order_source() {
        let bad = MemRun::new(vec![(5, vec![1]), (3, vec![2])]);
        let err = merge_run_sources(vec![bad], |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, SpillError::Run(RunFileError::Corrupt(_))));
        // Equal terms from one source are just as corrupt as descending.
        let dup = MemRun::new(vec![(5, vec![1]), (5, vec![2])]);
        let err = merge_run_sources(vec![dup], |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, SpillError::Run(RunFileError::Corrupt(_))));
    }

    #[test]
    fn builders_sharing_a_parent_dir_do_not_collide() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let parent = std::env::temp_dir().join(format!("x100-shared-{}", std::process::id()));
        let spill_cfg = SpillConfig {
            budget_bytes: 8 * 1024,
            dir: Some(parent.clone()),
            disk: DiskModel::raid12(),
        };
        let mut a =
            SpillingIndexBuilder::new(c.vocab.len(), &IndexConfig::compressed(), spill_cfg.clone());
        let mut b = SpillingIndexBuilder::new(c.vocab.len(), &IndexConfig::compressed(), spill_cfg);
        // Interleave pushes so both builders spill into the shared parent
        // concurrently; private subdirectories must keep them apart.
        for doc in &c.docs {
            a.push_doc(&doc.name, &doc.terms, doc.len).unwrap();
            b.push_doc(&doc.name, &doc.terms, doc.len).unwrap();
        }
        assert!(a.num_runs() > 1 && b.num_runs() > 1);
        assert_ne!(a.run_paths()[0], b.run_paths()[0]);
        let batch = InvertedIndex::build(&c, &IndexConfig::compressed());
        let (ia, _) = a.finish(&c.vocab).unwrap();
        let (ib, _) = b.finish(&c.vocab).unwrap();
        for idx in [&ia, &ib] {
            assert_eq!(
                idx.td().column("docid").unwrap().read_all(),
                batch.td().column("docid").unwrap().read_all()
            );
        }
        std::fs::remove_dir(&parent).ok(); // subdirs already gone
    }

    #[test]
    fn abandoned_builder_cleans_up_on_drop() {
        let c = SyntheticCollection::generate(&CollectionConfig::tiny());
        let mut b = SpillingIndexBuilder::new(
            c.vocab.len(),
            &IndexConfig::compressed(),
            SpillConfig::with_budget(4 * 1024),
        );
        b.push_docs(&c.docs).unwrap();
        let paths = b.run_paths();
        assert!(!paths.is_empty() && paths.iter().all(|p| p.exists()));
        let dir = paths[0].parent().unwrap().to_path_buf();
        drop(b); // never finished
        assert!(paths.iter().all(|p| !p.exists()));
        assert!(!dir.exists());
    }

    #[test]
    fn finish_rejects_out_of_vocab_terms() {
        let src = MemRun::new(vec![(9, vec![1])]);
        let err = merge_run_sources(vec![src], |term, _| {
            if term as usize >= 3 {
                return Err(SpillError::TermOutOfVocab { term, num_terms: 3 });
            }
            Ok(())
        })
        .unwrap_err();
        assert_eq!(
            err,
            SpillError::TermOutOfVocab {
                term: 9,
                num_terms: 3
            }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn streaming_spill_build_matches_unbudgeted() {
        let cfg = CollectionConfig::tiny();
        let (plain, plain_tail) = crate::builder::build_index_streaming(
            CollectionStream::new(&cfg),
            &IndexConfig::compressed(),
            64,
        );
        let (spilled, tail, stats) = build_index_streaming_spill(
            CollectionStream::new(&cfg),
            &IndexConfig::compressed(),
            64,
            SpillConfig::with_budget(16 * 1024),
        )
        .unwrap();
        assert!(stats.runs > 0);
        assert_eq!(tail.efficiency_log, plain_tail.efficiency_log);
        assert_eq!(spilled.num_postings(), plain.num_postings());
        assert_eq!(
            spilled.td().column("docid").unwrap().read_all(),
            plain.td().column("docid").unwrap().read_all()
        );
    }

    #[test]
    fn empty_builder_finishes_without_disk() {
        let b = SpillingIndexBuilder::new(4, &IndexConfig::default(), SpillConfig::with_budget(1));
        let vocab: Vec<String> = (0..4).map(|t| format!("term{t}")).collect();
        let (idx, stats) = b.finish(&vocab).unwrap();
        assert_eq!(idx.num_postings(), 0);
        assert_eq!(stats.runs, 0);
        assert_eq!(stats.finish_peak_bytes, 0);
    }

    #[test]
    fn term_id_overflow_is_a_typed_error() {
        // A vocabulary slot past u32::MAX cannot be represented in the
        // run-file format's 32-bit term field; the spill path surfaces a
        // typed error instead of the silent `as u32` truncation it used to
        // perform. (Constructing 2^32 real term lists is impractical, so
        // pin the error type and message directly.)
        let err = SpillError::TermIdOverflow {
            term: u32::MAX as usize + 1,
        };
        assert!(err.to_string().contains("u32 range"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
